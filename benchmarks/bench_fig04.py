"""Bench Figure 4: block intervals between relocations."""

from repro.experiments.registry import run_experiment


def test_bench_fig04(benchmark, result):
    report = benchmark(run_experiment, "fig04", result)
    rows = {r.label: r for r in report.rows}
    day = rows["within a day"].measured
    week = rows["within a week"].measured
    month = rows["within a month"].measured
    # Paper anchors: 17.9 % / 35.8 % / 63.2 % — check the CDF's shape:
    # strictly increasing, a real same-day mode, most mass by a month.
    # (The compressed small-scenario timeline censors the long tail
    # harder than the paper's 22-month window did.)
    assert 0.08 < day < week < month <= 1.0
    assert day < 0.5
    assert month > 0.45
