"""Ablation: coverage-model parameter sweep (§8.2.1 design choices).

Sweeps the HIP-15 disk radius and the witness-distance cutoff, verifying
the monotonicities the paper's modelling arc relies on: bigger disks and
looser cutoffs always report more coverage, so the *choice* of 300 m and
25 km is doing real work.
"""

import pytest

from repro.chain.transactions import PocReceipts
from repro.core.coverage import DiskModel, HullModel, build_witness_geometry
from repro.geo.hexgrid import HexCell
from repro.geo.landmass import CONTIGUOUS_US
from repro.rng import RngHub


def _locate(token):
    point = HexCell.from_token(token).center()
    return None if point.is_null_island() else point


def _sweep(result):
    rng = RngHub(99).stream("ablation")
    hotspots = [
        h.asserted_location for h in result.world.online_hotspots()
        if h.asserted_location is not None
        and CONTIGUOUS_US.contains(h.asserted_location)
    ]
    receipts = [t for _, t in result.chain.iter_transactions(PocReceipts)]
    geometries = build_witness_geometry(receipts, _locate)

    disk_fracs = {
        radius: DiskModel(hotspots, radius_km=radius)
        .landmass_fraction(CONTIGUOUS_US, rng).landmass_fraction
        for radius in (0.15, 0.3, 0.6)
    }
    hull_fracs = {
        cutoff: HullModel(geometries, max_witness_km=cutoff)
        .landmass_fraction(CONTIGUOUS_US, rng).landmass_fraction
        for cutoff in (10.0, 25.0, 50.0)
    }
    return disk_fracs, hull_fracs


def test_bench_ablation_coverage(benchmark, result):
    disk_fracs, hull_fracs = benchmark.pedantic(
        _sweep, args=(result,), rounds=1, iterations=1
    )
    # Disk coverage is monotone in radius and roughly quadratic.
    assert disk_fracs[0.15] < disk_fracs[0.3] < disk_fracs[0.6]
    assert disk_fracs[0.6] / disk_fracs[0.15] == pytest.approx(16.0, rel=0.6)
    # Hull coverage is monotone in the cutoff: the 25 km choice sits
    # between a too-tight 10 km and an implausible 50 km.
    assert hull_fracs[10.0] <= hull_fracs[25.0] <= hull_fracs[50.0]
