"""Bench Figure 3: move-distance CDF and long-distance flows."""

from repro.experiments.registry import run_experiment


def test_bench_fig03(benchmark, result):
    report = benchmark(run_experiment, "fig03", result)
    rows = {r.label: r for r in report.rows}
    # Bimodal: short hops dominate, a real >500 km flow exists.
    assert rows["moves ≤50 km (short mode)"].measured > 0.6
    assert rows["moves >500 km"].measured > 0
    # (0,0) artifacts exist and are mostly first-time asserts (paper:
    # 89 %; the small scenario has only a handful of samples).
    assert rows["(0,0) first-time fraction"].measured > 0.5
    # Nobody remains parked at null island.
    assert rows["hotspots still at (0,0) after moving there"].measured == 0
