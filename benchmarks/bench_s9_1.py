"""Bench §9.1: the Spectrum terms-of-service exposure."""

from repro.experiments.registry import run_experiment


def test_bench_s9_1(benchmark, result):
    report = benchmark(run_experiment, "s9_1", result)
    rows = {r.label: r for r in report.rows}
    at_risk = rows["US hotspots on Spectrum (fraction)"].measured
    # Paper: "at least 17 % of the US hotspots would fall offline".
    assert at_risk > 0.10
    # Every Spectrum hotspot is detectable via the unique port.
    assert rows["detectable on port 44158"].measured > 0
