"""Bench Figure 8: packet transfers, routers, and the HIP 10 spike."""

from repro.experiments.registry import run_experiment


def test_bench_fig08(benchmark, result):
    report = benchmark(run_experiment, "fig08", result)
    rows = {r.label: r for r in report.rows}
    # The Console monopolises routing (paper: 81.18 %).
    assert rows["Console share of channel txns"].measured > 0.7
    assert rows["registered OUIs"].measured == 10
    # The arbitrage spike dwarfs contemporary organic traffic and decays
    # after HIP 10 (the crossover the paper's Fig. 8 shows).
    assert rows["spam spike multiplier over baseline"].measured > 4.0
    assert rows["spike decayed by day"].measured >= result.config.hip10_day
