"""Bench Table 1: top backhaul ISPs."""

from repro.experiments.registry import run_experiment


def test_bench_table1(benchmark, result):
    report = benchmark(run_experiment, "table1", result)
    ranking = report.series["full_ranking"]
    orgs = [org for org, _ in ranking]
    counts = [count for _, count in ranking]
    # Spectrum leads (paper's #1) and counts decrease down the table.
    assert orgs[0] == "Spectrum"
    assert counts == sorted(counts, reverse=True)
    # The paper's big-three all appear in the head.
    assert {"Spectrum", "Comcast", "Verizon"} <= set(orgs[:6])
