"""Bench Figure 10: relay prevalence and load."""

from repro.experiments.registry import run_experiment


def test_bench_fig10(benchmark, result):
    report = benchmark(run_experiment, "fig10", result)
    rows = {r.label: r for r in report.rows}
    # Paper: 55.48 % of listening peers are relayed.
    assert 0.4 < rows["relayed fraction of listening peers"].measured < 0.7
    # Fig 10 shape: most relays carry few peers, one carries many.
    assert rows["relays carrying ≤2 peers"].measured > 0.5
    assert rows["max peers on one relay"].measured >= 5
