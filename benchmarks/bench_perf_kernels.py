"""Perf-kernel benchmarks: vectorised paths vs their scalar references.

Times the batch geodesy kernel, the numpy-backed spatial index, the
batched coverage Monte Carlo and a full PoC simulation day, and records
vectorised-vs-scalar speedups in ``BENCH_perf.json`` (repo root) so the
perf trajectory is tracked across PRs. The scalar baselines are the
``*_reference`` twins kept in-tree precisely for this comparison (and
for the equivalence property tests).

Run with ``REPRO_BENCH_SCENARIO=paper`` for the committed numbers.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.chain.transactions import PocReceipts
from repro.core.coverage import RevisedModel, build_witness_geometry
from repro.geo.geodesy import LatLon, haversine_km, haversine_km_many
from repro.geo.hexgrid import HexCell
from repro.geo.landmass import CONTIGUOUS_US
from repro.poc.challenge import (
    PocParticipant,
    run_challenge,
    run_challenge_reference,
)
from repro.rng import RngHub

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
_summary = {
    "scenario": os.environ.get("REPRO_BENCH_SCENARIO", "small"),
    "speedups": {},
    "timings_s": {},
}


def _record(name: str, fast_s: float, slow_s: float) -> float:
    speedup = slow_s / fast_s if fast_s > 0 else float("inf")
    _summary["speedups"][name] = round(speedup, 2)
    _summary["timings_s"][name] = {
        "vectorised": round(fast_s, 4),
        "scalar_reference": round(slow_s, 4),
    }
    _RESULTS_PATH.write_text(json.dumps(_summary, indent=2) + "\n")
    return speedup


def _participants(result):
    fleet = []
    for hotspot in result.world.hotspots.values():
        if hotspot.is_validator or hotspot.asserted_location is None:
            continue
        fleet.append(PocParticipant(
            gateway=hotspot.gateway,
            owner=hotspot.owner,
            asserted_location=hotspot.asserted_location,
            actual_location=hotspot.actual_location,
            environment=hotspot.environment,
            antenna_gain_dbi=hotspot.antenna_gain_dbi,
            online=hotspot.online,
            cheat=hotspot.cheat,
        ))
    return fleet


def test_bench_haversine_many(benchmark):
    rng = np.random.default_rng(42)
    n = 200_000
    lat1 = rng.uniform(-60, 60, n)
    lon1 = rng.uniform(-180, 180, n)
    lat2 = rng.uniform(-60, 60, n)
    lon2 = rng.uniform(-180, 180, n)

    benchmark.pedantic(
        haversine_km_many, args=(lat1, lon1, lat2, lon2),
        rounds=3, iterations=1,
    )

    t0 = time.perf_counter()
    haversine_km_many(lat1, lon1, lat2, lon2)
    fast = time.perf_counter() - t0
    # Scalar loop on a 1/20 subset, extrapolated.
    t0 = time.perf_counter()
    for i in range(0, n, 20):
        haversine_km(lat1[i], lon1[i], lat2[i], lon2[i])
    slow = (time.perf_counter() - t0) * 20.0
    speedup = _record("haversine_many_200k", fast, slow)
    assert speedup > 3.0


def test_bench_within_radius(benchmark, result):
    index = result.world.index
    queries = [
        h.actual_location
        for h in list(result.world.hotspots.values())[:200]
        if h.actual_location is not None
    ]

    def _sweep():
        total = 0
        for query in queries:
            total += len(index.within_radius(query, 120.0))
        return total

    total = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    assert total > 0


def _witness_model(result):
    def _locate(token):
        point = HexCell.from_token(token).center()
        return None if point.is_null_island() else point

    receipts = [t for _, t in result.chain.iter_transactions(PocReceipts)]
    geometries = build_witness_geometry(receipts, _locate)
    return RevisedModel(geometries, max_witness_km=25.0)


def test_bench_landmass_fraction(benchmark, result):
    model = _witness_model(result)
    scale = result.config.scale_factor

    estimate = benchmark.pedantic(
        model.landmass_fraction,
        args=(CONTIGUOUS_US, RngHub(5).stream("bench")),
        kwargs={"scale_factor": scale},
        rounds=1, iterations=1,
    )

    t0 = time.perf_counter()
    fast_est = model.landmass_fraction(
        CONTIGUOUS_US, RngHub(6).stream("bench"), scale_factor=scale
    )
    fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    ref_est = model.landmass_fraction_reference(
        CONTIGUOUS_US, RngHub(6).stream("bench"), scale_factor=scale
    )
    slow = time.perf_counter() - t0
    speedup = _record("landmass_fraction", fast, slow)

    assert estimate.landmass_fraction >= 0.0
    assert fast_est.landmass_fraction == pytest.approx(
        ref_est.landmass_fraction, rel=1e-12
    )
    assert speedup > 1.0


def _day_of_challenges(result, fleet, seed, *, vectorised):
    """One simulated day of PoC at the scenario's challenge rate.

    ``vectorised=True`` runs the shipped pipeline (batched index query,
    argsort candidate cap, vectorised ``run_challenge``);
    ``vectorised=False`` replays the pre-vectorisation pipeline — the
    scalar index query, a Python distance sort, and the scalar
    ``run_challenge_reference`` — as the like-for-like baseline.
    """
    online = [p for p in fleet if p.online]
    n_challenges = max(
        1,
        int(round(len(online) * result.config.challenges_per_hotspot_day)),
    )
    index = result.world.index
    by_gateway = {p.gateway: p for p in fleet}
    cap = result.config.max_witness_candidates
    rng = np.random.default_rng(seed)
    n_witnesses = 0
    for _ in range(n_challenges):
        challenger = online[int(rng.integers(len(online)))]
        challengee = challenger
        while challengee.gateway == challenger.gateway:
            challengee = online[int(rng.integers(len(online)))]
        center = challengee.actual_location
        candidates = []
        if vectorised:
            nearby, distances = index.within_radius_distances(center, 120.0)
            distance_list = distances.tolist()
            candidates = []
            candidate_km = []
            for i in np.argsort(distances, kind="stable").tolist():
                point, hotspot = nearby[i]
                participant = by_gateway.get(hotspot.gateway)
                if participant is not None and participant.online:
                    candidates.append(participant)
                    if candidate_km is not None:
                        if point is participant.actual_location:
                            candidate_km.append(distance_list[i])
                        else:  # index lags a mover: no distance reuse
                            candidate_km = None
                    if len(candidates) >= cap:
                        break
            outcome = run_challenge(
                challenger, challengee, candidates, rng,
                distances_km=candidate_km,
            )
        else:
            nearby = index.within_radius_reference(center, 120.0)
            ranked = []
            for point, hotspot in nearby:
                participant = by_gateway.get(hotspot.gateway)
                if participant is not None and participant.online:
                    ranked.append((center.distance_km(point), participant))
            ranked.sort(key=lambda pair: pair[0])
            candidates = [participant for _, participant in ranked[:cap]]
            outcome = run_challenge_reference(
                challenger, challengee, candidates, rng
            )
        n_witnesses += len(outcome.receipts.witnesses)
    return n_challenges, n_witnesses


def _best_of(fn, rounds=3):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - t0)
    return value, min(times)


def test_bench_poc_day(benchmark, result):
    fleet = _participants(result)

    benchmark.pedantic(
        _day_of_challenges, args=(result, fleet, 1),
        kwargs={"vectorised": True}, rounds=1, iterations=1,
    )

    fast_counts, fast = _best_of(
        lambda: _day_of_challenges(result, fleet, 2, vectorised=True)
    )
    ref_counts, slow = _best_of(
        lambda: _day_of_challenges(result, fleet, 2, vectorised=False)
    )
    speedup = _record("poc_simulation_day", fast, slow)

    assert fast_counts == ref_counts
    # The individual kernels beat 3× comfortably (haversine ~14×,
    # coverage MC ~4×), but a full day is bounded by fixed per-challenge
    # numpy overhead at witness-batch sizes (~20 candidates per
    # challenge) plus the three-phase RNG contract, which forbids
    # batching draws across challenges. ~2.5× is the honest end-to-end
    # ceiling; guard against regressing below 2×.
    assert speedup > 2.0


# -- scale tier: paper vs paper-10x ----------------------------------------

#: Day cap for the scale benches. The default keeps a casual bench run
#: quick; set ``REPRO_SCALE_DAYS=full`` for the committed end-to-end
#: numbers (paper-10x full length runs in minutes on one core).
_SCALE_DAYS = os.environ.get("REPRO_SCALE_DAYS", "90")

_SCALE_SCRIPT = """\
import dataclasses, json, sys, time
from repro.experiments.snapshot import result_digest
from repro.simulation import (
    SimulationEngine, paper_10x_scenario, paper_scenario,
)
from repro import obs
scenario, days, chain_log = sys.argv[1], sys.argv[2], sys.argv[3]
builder = {"paper": paper_scenario, "paper-10x": paper_10x_scenario}
config = builder[scenario](seed=2021)
if days != "full":
    config = dataclasses.replace(config, n_days=int(days))
t0 = time.time()
result = SimulationEngine(config).run(chain_log=chain_log == "on")
print(json.dumps({
    "wall_s": round(time.time() - t0, 1),
    "peak_rss_bytes": obs.peak_rss_bytes(),
    "digest": result_digest(result),
    "days": config.n_days,
    "hotspots": len(result.world.hotspots),
    "blocks": len(result.chain),
}))
"""


def _run_scale(scenario: str, chain_log: str = "on") -> dict:
    """One scenario end-to-end in a fresh interpreter, so each run's
    ``ru_maxrss`` high-water mark is its own, not the bench suite's."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [sys.executable, "-c", _SCALE_SCRIPT, scenario, _SCALE_DAYS,
         chain_log],
        env=env, capture_output=True, text=True, timeout=3600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_bench_scale_tier():
    paper = _run_scale("paper")
    tenx = _run_scale("paper-10x")
    # The chain-log A/B: same tier with every block kept resident (the
    # pre-chain-log representation) — identical digest, higher RSS.
    resident = _run_scale("paper-10x", chain_log="off")
    _summary["scale"] = {
        "days": _SCALE_DAYS,
        "paper": paper,
        "paper_10x": tenx,
        "paper_10x_resident_chain": resident,
    }
    _summary["memory"] = {
        "peak_rss_bytes": {
            "paper": paper["peak_rss_bytes"],
            "paper_10x": tenx["peak_rss_bytes"],
            "paper_10x_resident_chain": resident["peak_rss_bytes"],
        },
    }
    _RESULTS_PATH.write_text(json.dumps(_summary, indent=2) + "\n")

    assert tenx["hotspots"] >= 10 * paper["hotspots"] * 0.9
    # Chain residency changes memory, never bytes.
    assert resident["digest"] == tenx["digest"]
    # Columnar fleet state: 10x the hotspots must not cost 10x the
    # memory — the object graph, not the columns, dominates RSS, and
    # the tier has to fit comfortably on a laptop.
    assert tenx["peak_rss_bytes"] < 32 * 1024**3
    if _SCALE_DAYS == "full":
        from tests.test_engine_hotpath import PAPER_SEED2021_DIGEST

        assert paper["digest"] == PAPER_SEED2021_DIGEST
        # The tentpole claim: with the chain spilled to the log, the
        # full 667-day 10x run's peak RSS sits well below the resident
        # chain's (BENCH_perf.json carries both sides of the A/B).
        assert (
            tenx["peak_rss_bytes"] < 0.7 * resident["peak_rss_bytes"]
        )
