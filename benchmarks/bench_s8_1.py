"""Bench §8.1: stationary best-case PRR."""

from repro.experiments.registry import run_experiment


def test_bench_s8_1(benchmark, result):
    report = benchmark(run_experiment, "s8_1", result)
    rows = {r.label: r for r in report.rows}
    may = rows["May run PRR (24 h, 2 outages)"].measured
    september = rows["September PRR (3 trials)"].measured
    # Paper: 68.61 % with outages, 73.2 % without — best-effort, not
    # reliable, in both runs.
    assert 0.55 < may < 0.80
    assert 0.62 < september < 0.88
    assert may < september  # outages cost PRR
    # Losses are single-miss dominated (83.5 % / 92.2 %).
    assert rows["single-miss fraction of losses"].measured > 0.7
    assert rows["incorrect ACKs"].measured == 0
