"""Bench Figure 15 + Tables 2/3: the walk tests."""

from repro.experiments.registry import run_experiment


def test_bench_fig15(benchmark, result):
    report = benchmark(run_experiment, "fig15", result)
    rows = {r.label: r for r in report.rows}
    urban = rows["urban walk PRR"].measured
    suburban = rows["suburban walk PRR"].measured
    # Paper: 72.9 % / 77.6 % — best-effort delivery on the move.
    assert 0.5 < urban < 0.9
    assert 0.5 < suburban < 0.95
    # Tables 2/3's strongest invariant: zero incorrect ACKs, many
    # incorrect NACKs (downlink is harder than uplink).
    assert rows["urban incorrect ACK"].measured == 0
    assert rows["suburban incorrect ACK"].measured == 0
    assert rows["urban incorrect NACK"].measured > 0.02
    # Being inside 300 m of a hotspot predicts reception better than
    # being outside predicts it (the HIP-15 asymmetry).
    assert (rows["HIP-15 in-radius accuracy"].measured
            > 1.0 - rows["HIP-15 out-of-radius accuracy"].measured)
