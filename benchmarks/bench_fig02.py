"""Bench Figure 2: location changes per hotspot."""

from repro.experiments.registry import run_experiment


def test_bench_fig02(benchmark, result):
    report = benchmark(run_experiment, "fig02", result)
    rows = {r.label: r for r in report.rows}
    # The dominant behaviour: most hotspots never move (paper: 71.9 %).
    assert rows["never moved"].measured > 0.6
    # The histogram is monotone-decreasing-ish: movers are a minority.
    histogram = dict(report.series["moves_histogram"])
    assert histogram[0] > histogram.get(1, 0) > histogram.get(4, 0)
