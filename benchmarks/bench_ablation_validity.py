"""Ablation: witness-validity heuristics on/off (§7.2 design choice).

Re-judges every witness report on the chain under three checkers —
default, RSSI-heuristics disabled, and strict — quantifying how much
work the RSSI rules actually do (and that informed forgeries slip
through all of them, the paper's takeaway).
"""

from repro.chain.transactions import PocReceipts
from repro.geo.hexgrid import HexCell
from repro.poc.validity import WitnessValidityChecker
from repro.radio.lora import US915


def _judge(result, checker):
    """(accepted, total) over every witness report on the chain."""
    accepted = 0
    total = 0
    for _, receipt in result.chain.iter_transactions(PocReceipts):
        challengee_cell = HexCell.from_token(receipt.challengee_location_token)
        challengee = challengee_cell.center()
        for report in receipt.witnesses:
            witness_cell = HexCell.from_token(report.reported_location_token)
            verdict = checker.check(
                challengee_location=challengee,
                witness_location=witness_cell.center(),
                witness_cell=witness_cell,
                rssi_dbm=report.rssi_dbm,
                freq_mhz=report.frequency_mhz,
                channel_index=US915.channel_index(report.frequency_mhz),
            )
            accepted += verdict.is_valid
            total += 1
    return accepted, total


def test_bench_ablation_validity(benchmark, result):
    default_checker = WitnessValidityChecker()
    no_rssi = WitnessValidityChecker(
        rssi_margin_db=1e9, rssi_floor_dbm=-1e12
    )
    strict = WitnessValidityChecker(rssi_margin_db=6.0)

    accepted_default, total = benchmark(_judge, result, default_checker)
    accepted_no_rssi, _ = _judge(result, no_rssi)
    accepted_strict, _ = _judge(result, strict)

    # Disabling the RSSI rules accepts strictly more reports (including
    # the billion-dBm absurdities); a strict margin rejects more honest
    # outliers — the brittleness the paper warns about.
    assert accepted_no_rssi >= accepted_default >= accepted_strict
    assert accepted_no_rssi > accepted_strict
    assert total > 0
