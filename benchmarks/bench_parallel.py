"""Parallel-layer benchmarks: farm speedup and day-loop hot-path deltas.

Times (a) the experiment farm at ``--jobs 1`` vs ``--jobs 4`` on a warm
scenario cache — with s8_1 decomposed into its four stationary-trial
units, the granularity the farm actually schedules at ``jobs > 1`` —
(b) the intra-run shard pool (day-loop wall serial vs ``--shard-workers
{2,4}``, s8_1 serial vs the experiment pool), (c) the three eliminated
day-loop hot paths against their in-tree
:mod:`repro.simulation.reference` twins, and (d) the day-level
checkpoint save/load round-trip against the day-loop wall it insures
(budget: mean periodic save < 2 % of day-loop wall at paper scale),
recording everything in ``BENCH_parallel.json`` (repo root).

Parallel numbers are hardware-honest: both ``os.cpu_count()`` and the
scheduler affinity mask (the CPUs this process may actually use, which
containers routinely restrict below ``cpu_count``) are recorded
alongside. On a host with fewer than 4 usable CPUs a measured 4-worker
wall reflects contention, not scheduling, so ``speedup_at_4`` then
falls back to an LPT-schedule model over the *measured* per-task walls
— ``speedup_at_4_basis`` says which one the headline number is, and
both are always recorded. The Amdahl bound is computed at unit
granularity (``total / longest_task``): with s8_1 split into four
trials the longest schedulable task is its May run, not the whole
experiment, which is exactly the ceiling the decomposition raises.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.experiments import s8_1
from repro.experiments.context import ensure_snapshot, get_result
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.parallel import run_farm, shards
from repro.simulation import SimulationEngine, paper_scenario, small_scenario
from repro.simulation import reference
from repro.simulation.phases.online import update_online
from repro.simulation.phases.poc import candidates_for
from repro.simulation.phases.traffic import ferry_weights
from repro.simulation.state import WorldState

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _usable_cpus() -> int:
    """CPUs this process may run on — the honest parallelism budget."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


_summary = {
    "scenario": os.environ.get("REPRO_BENCH_SCENARIO", "small"),
    "cpu_count": os.cpu_count(),
    "cpu_affinity": _usable_cpus(),
    "farm": {},
    "intra_run": {},
    "day_loop": {"speedups": {}, "timings_s": {}},
}


def _lpt_makespan(costs, workers: int) -> float:
    """Longest-processing-time-first schedule length on ``workers``
    machines — the schedule :func:`repro.parallel.costs.longest_first`
    approximates, evaluated over measured walls."""
    loads = [0.0] * workers
    for cost in sorted(costs, reverse=True):
        loads[loads.index(min(loads))] += cost
    return max(loads)


def _flush():
    _RESULTS_PATH.write_text(json.dumps(_summary, indent=2) + "\n")


def _record_day_loop(name: str, fast_s: float, slow_s: float) -> float:
    speedup = slow_s / fast_s if fast_s > 0 else float("inf")
    _summary["day_loop"]["speedups"][name] = round(speedup, 2)
    _summary["day_loop"]["timings_s"][name] = {
        "fast": round(fast_s, 5),
        "reference": round(slow_s, 5),
    }
    _flush()
    return speedup


def _live_state():
    """A fully run WorldState whose fleet arrays and maps are populated."""
    engine = SimulationEngine(small_scenario(seed=2021))
    result = engine.run()
    return engine.state, result


def test_bench_farm_jobs(benchmark, result):
    """Full experiment suite: serial vs a 4-worker pool, warm cache."""
    scenario = _summary["scenario"]
    ids = EXPERIMENTS.ids()
    # Warm the cache entry and the lazy experiment imports once.
    run_farm(scenario, 2021, ["fig02"], jobs=1)

    t0 = time.perf_counter()
    serial = run_farm(scenario, 2021, ids, jobs=1)
    serial_s = time.perf_counter() - t0

    def parallel():
        return run_farm(scenario, 2021, ids, jobs=4)

    t0 = time.perf_counter()
    outcomes = benchmark.pedantic(parallel, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - t0

    per_experiment = {o.experiment_id: round(o.wall_s, 4) for o in serial}

    # The farm schedules s8_1 as four independent units at jobs > 1, so
    # the scheduling model and the Amdahl bound must use that
    # granularity too. Measure each unit's serial wall in-process.
    sim_result = get_result(scenario, 2021)
    unit_walls = {}
    for unit in s8_1.UNITS:
        t0 = time.perf_counter()
        s8_1.run_unit(sim_result, unit)
        unit_walls[unit] = round(time.perf_counter() - t0, 4)

    task_walls = {
        eid: wall for eid, wall in per_experiment.items() if eid != "s8_1"
    }
    task_walls.update(
        {f"s8_1/{unit}": wall for unit, wall in unit_walls.items()}
    )
    total = sum(task_walls.values())
    longest = max(task_walls.values())
    makespan = _lpt_makespan(task_walls.values(), 4)
    modeled_speedup = total / makespan if makespan > 0 else float("inf")
    measured_speedup = serial_s / parallel_s

    # On a host whose affinity mask allows < 4 CPUs, 4 workers time-slice
    # one core and the measured wall reflects contention, not the
    # schedule — the LPT model over measured walls is the honest
    # headline there, and the measurement is still recorded beside it.
    basis = "measured" if _summary["cpu_affinity"] >= 4 else "lpt_model"
    speedup_at_4 = measured_speedup if basis == "measured" else modeled_speedup

    _summary["farm"] = {
        "experiments": len(ids),
        "schedulable_tasks": len(task_walls),
        "serial_s": round(serial_s, 2),
        "jobs4_s": round(parallel_s, 2),
        "speedup_at_4": round(speedup_at_4, 2),
        "speedup_at_4_basis": basis,
        "measured_speedup_at_4": round(measured_speedup, 2),
        "lpt_model_speedup_at_4": round(modeled_speedup, 2),
        "lpt_makespan_at_4_s": round(makespan, 2),
        # The critical-path ceiling for *any* job count at unit
        # granularity: the longest schedulable task (s8_1's May trial,
        # not the whole experiment) bounds every schedule.
        "amdahl_bound": round(total / longest, 2),
        "longest_task_s": longest,
        "per_experiment_wall_s": per_experiment,
        "s8_1_unit_wall_s": unit_walls,
    }
    _flush()
    assert [o.experiment_id for o in outcomes] == ids
    # The point of the unit decomposition: the farm schedule clears the
    # old whole-experiment Amdahl ceiling (~1.09 at small scale).
    assert _summary["farm"]["speedup_at_4"] >= 2.0, _summary["farm"]


def test_bench_intra_run(benchmark):
    """Tentpole numbers: the day loop serial vs ``--shard-workers
    {2,4}``, and s8_1 serial vs the experiment shard pool.

    Walls are measured as-is; on a host with fewer usable CPUs than
    workers the sharded walls include time-slicing contention plus IPC,
    so speedups below 1.0 are expected and recorded honestly — the
    ``host_note`` flags it. Output equality is not re-checked here (the
    digest tests in ``tests/test_shards.py`` pin byte-identity).
    """
    scenario = _summary["scenario"]

    def day_loop_wall(workers: int) -> float:
        engine_result = SimulationEngine(small_scenario(seed=2021)).run(
            shard_workers=workers
        )
        return sum(engine_result.day_loop_timings.values())

    benchmark.pedantic(lambda: day_loop_wall(0), rounds=1, iterations=1)

    # Interleave modes and keep each mode's best round, like the obs
    # overhead bench: jitter on ~1 s builds exceeds the deltas.
    walls = {0: [], 2: [], 4: []}
    for _ in range(2):
        for workers in walls:
            walls[workers].append(day_loop_wall(workers))
    serial_s = min(walls[0])
    shard2_s = min(walls[2])
    shard4_s = min(walls[4])

    entry = ensure_snapshot(scenario, 2021)
    sim_result = get_result(scenario, 2021)
    t0 = time.perf_counter()
    serial_report = run_experiment("s8_1", sim_result)
    s8_serial_s = time.perf_counter() - t0

    s8_pool_s = None
    if entry is not None:
        pool = shards.configure_experiment_pool(2, str(entry))
        try:
            if pool is not None:
                t0 = time.perf_counter()
                pooled_report = run_experiment("s8_1", sim_result)
                s8_pool_s = time.perf_counter() - t0
                assert pooled_report.rows == serial_report.rows
        finally:
            shards.shutdown_experiment_pool()

    usable = _summary["cpu_affinity"]
    _summary["intra_run"] = {
        "day_loop": {
            "serial_s": round(serial_s, 3),
            "shard2_s": round(shard2_s, 3),
            "shard4_s": round(shard4_s, 3),
            "speedup_at_2": round(serial_s / shard2_s, 2),
            "speedup_at_4": round(serial_s / shard4_s, 2),
        },
        "s8_1": {
            "serial_s": round(s8_serial_s, 2),
            "pool2_s": None if s8_pool_s is None else round(s8_pool_s, 2),
            "speedup_at_2": (
                None if s8_pool_s is None
                else round(s8_serial_s / s8_pool_s, 2)
            ),
        },
        "host_note": (
            None if usable >= 4 else
            f"affinity allows {usable} CPU(s); sharded walls measure "
            "contention + IPC overhead, not the schedule"
        ),
    }
    _flush()
    assert serial_s > 0 and shard2_s > 0 and shard4_s > 0


def test_bench_update_online(benchmark):
    state, _ = _live_state()
    rounds = 50

    def fast():
        for _ in range(rounds):
            update_online(state, 0)

    benchmark.pedantic(fast, rounds=1, iterations=1)

    t0 = time.perf_counter()
    fast()
    fast_s = (time.perf_counter() - t0) / rounds
    t0 = time.perf_counter()
    for _ in range(rounds):
        reference.update_online_reference(state, 0)
    slow_s = (time.perf_counter() - t0) / rounds

    speedup = _record_day_loop("update_online_per_day", fast_s, slow_s)
    assert speedup > 1.0


def test_bench_ferry_weights(benchmark):
    state, _ = _live_state()
    rng = np.random.default_rng(0)
    rounds = 200
    # The day loop always calls ferry_weights right after update_online
    # stamped the fleet's online column for the same day; asking for a
    # different day would measure the object-walk fallback instead of
    # the hot path.
    day = state.fleet.online_day

    def fast():
        for _ in range(rounds):
            ferry_weights(state, day, rng)

    benchmark.pedantic(fast, rounds=1, iterations=1)

    t0 = time.perf_counter()
    fast()
    fast_s = (time.perf_counter() - t0) / rounds
    t0 = time.perf_counter()
    for _ in range(rounds):
        reference.ferry_weights_reference(state, day, rng)
    slow_s = (time.perf_counter() - t0) / rounds

    speedup = _record_day_loop("ferry_weights_per_day", fast_s, slow_s)
    # O(would-ferry set) filter vs O(fleet) rebuild with owner lookups.
    assert speedup > 2.0


def test_bench_candidates_for(benchmark):
    state, _ = _live_state()
    rng = np.random.default_rng(0)
    challengees = [
        p for p in state.participants.values() if p.online
    ][:100]

    def fast():
        for participant in challengees:
            candidates_for(state, participant, rng)

    benchmark.pedantic(fast, rounds=1, iterations=1)

    t0 = time.perf_counter()
    fast()
    fast_s = (time.perf_counter() - t0) / len(challengees)
    t0 = time.perf_counter()
    for participant in challengees:
        reference.candidates_for_reference(state, participant, rng)
    slow_s = (time.perf_counter() - t0) / len(challengees)

    _record_day_loop("candidates_for_per_challenge", fast_s, slow_s)


def test_bench_obs_overhead(benchmark):
    """The observability tax on the hottest path: a cold small build
    with the metrics registry recording vs disabled (``REPRO_OBS=off``
    semantics). The design budget is < 3 % wall; the assertion is far
    looser because a cold build's wall time jitters by several percent
    on shared CI runners — the recorded number is the honest one.
    """

    def build():
        return SimulationEngine(small_scenario(seed=2021)).run()

    benchmark.pedantic(build, rounds=1, iterations=1)  # warm everything

    def timed() -> float:
        t0 = time.perf_counter()
        build()
        return time.perf_counter() - t0

    # Interleave the modes and keep each mode's best round: run-to-run
    # jitter on a ~1 s build dwarfs the instrumentation cost, and the
    # minimum is the least noisy estimator of it.
    enabled_times, disabled_times = [], []
    try:
        for _ in range(3):
            obs.set_enabled(True)
            enabled_times.append(timed())
            obs.set_enabled(False)
            disabled_times.append(timed())
    finally:
        obs.set_enabled(True)
    enabled_s, disabled_s = min(enabled_times), min(disabled_times)

    overhead_pct = (enabled_s - disabled_s) / disabled_s * 100.0
    _summary["obs_overhead"] = {
        "build_enabled_s": round(enabled_s, 3),
        "build_disabled_s": round(disabled_s, 3),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": 3.0,
    }
    _flush()
    assert overhead_pct < 15.0, _summary["obs_overhead"]


def test_bench_cold_build_phases(benchmark):
    """One cold small build; record where the day loop spends its time."""

    def build():
        return SimulationEngine(small_scenario(seed=2021)).run()

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    timings = result.day_loop_timings
    assert timings is not None
    _summary["day_loop"]["phase_seconds_cold_build"] = {
        phase: round(seconds, 4) for phase, seconds in timings.items()
    }
    _flush()

def test_bench_checkpoint_overhead(benchmark, tmp_path):
    """Day-level checkpoint save/load cost inside a real paper-scale
    run at the default ``--checkpoint-every 30`` cadence.

    The ISSUE budget — checkpoint overhead < 2 % of day-loop wall time
    at paper scale — is asserted on the mean periodic save: saves are
    incremental (the chain file is extended in place under a running
    hash, never re-read), so the steady-state cost is serializing the
    ~30 new days of blocks plus the world-state payload. The late-run
    maximum and the resume load time are recorded unasserted: the load
    replaces re-simulating every completed day, so its honest
    comparison (also recorded) is the day-loop wall it refunds.
    """
    config = paper_scenario(seed=2021)
    cadence = 30
    ckpt = tmp_path / "ckpt"
    save_times = []
    original_save = WorldState.save

    def timed_save(self, directory):
        t0 = time.perf_counter()
        original_save(self, directory)
        save_times.append(time.perf_counter() - t0)

    WorldState.save = timed_save
    try:
        def run():
            return SimulationEngine(config).run(
                checkpoint_every=cadence, checkpoint_dir=ckpt
            )

        result = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        WorldState.save = original_save

    day_loop_wall_s = sum(result.day_loop_timings.values())
    mean_save_s = sum(save_times) / len(save_times)

    t0 = time.perf_counter()
    WorldState.load(ckpt)
    load_s = time.perf_counter() - t0

    overhead_pct = mean_save_s / day_loop_wall_s * 100.0
    _summary["checkpoint"] = {
        "scenario": "paper",
        "n_days": config.n_days,
        "cadence_days": cadence,
        "saves_per_run": len(save_times),
        "day_loop_wall_s": round(day_loop_wall_s, 3),
        "save_mean_s": round(mean_save_s, 4),
        "save_max_s": round(max(save_times), 4),
        "load_s": round(load_s, 3),
        "load_refunds_day_loop_s": round(day_loop_wall_s, 3),
        "overhead_pct": round(overhead_pct, 3),
        "budget_pct": 2.0,
    }
    _flush()
    assert overhead_pct < 2.0, _summary["checkpoint"]
