"""Parallel-layer benchmarks: farm speedup and day-loop hot-path deltas.

Times (a) the experiment farm at ``--jobs 1`` vs ``--jobs 4`` on a warm
scenario cache, (b) the three eliminated day-loop hot paths against
their in-tree :mod:`repro.simulation.reference` twins, and (c) the
day-level checkpoint save/load round-trip against the day-loop wall it
insures (budget: mean periodic save < 2 % of day-loop wall at paper
scale), recording everything in ``BENCH_parallel.json`` (repo root).

Farm numbers are hardware-honest: ``cpu_count`` is recorded alongside,
and the JSON includes the Amdahl bound ``total / max_single_experiment``
— the best any job count could do, since one experiment (s8_1 at small
scale) dominates the critical path. On a single-core runner the farm
measures pool overhead, not speedup; the CI job runs the same bench on
multi-core runners.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.experiments.registry import EXPERIMENTS
from repro.parallel import run_farm
from repro.simulation import SimulationEngine, paper_scenario, small_scenario
from repro.simulation import reference
from repro.simulation.phases.online import update_online
from repro.simulation.phases.poc import candidates_for
from repro.simulation.phases.traffic import ferry_weights
from repro.simulation.state import WorldState

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
_summary = {
    "scenario": os.environ.get("REPRO_BENCH_SCENARIO", "small"),
    "cpu_count": os.cpu_count(),
    "farm": {},
    "day_loop": {"speedups": {}, "timings_s": {}},
}


def _flush():
    _RESULTS_PATH.write_text(json.dumps(_summary, indent=2) + "\n")


def _record_day_loop(name: str, fast_s: float, slow_s: float) -> float:
    speedup = slow_s / fast_s if fast_s > 0 else float("inf")
    _summary["day_loop"]["speedups"][name] = round(speedup, 2)
    _summary["day_loop"]["timings_s"][name] = {
        "fast": round(fast_s, 5),
        "reference": round(slow_s, 5),
    }
    _flush()
    return speedup


def _live_state():
    """A fully run WorldState whose fleet arrays and maps are populated."""
    engine = SimulationEngine(small_scenario(seed=2021))
    result = engine.run()
    return engine.state, result


def test_bench_farm_jobs(benchmark, result):
    """Full experiment suite: serial vs a 4-worker pool, warm cache."""
    scenario = _summary["scenario"]
    ids = EXPERIMENTS.ids()
    # Warm the cache entry and the lazy experiment imports once.
    run_farm(scenario, 2021, ["fig02"], jobs=1)

    t0 = time.perf_counter()
    serial = run_farm(scenario, 2021, ids, jobs=1)
    serial_s = time.perf_counter() - t0

    def parallel():
        return run_farm(scenario, 2021, ids, jobs=4)

    t0 = time.perf_counter()
    outcomes = benchmark.pedantic(parallel, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - t0

    per_experiment = {o.experiment_id: round(o.wall_s, 4) for o in serial}
    longest = max(per_experiment.values())
    total = sum(per_experiment.values())
    _summary["farm"] = {
        "experiments": len(ids),
        "serial_s": round(serial_s, 2),
        "jobs4_s": round(parallel_s, 2),
        "speedup_at_4": round(serial_s / parallel_s, 2),
        # The critical-path ceiling for *any* job count: one experiment
        # dominates, so perfect scheduling cannot beat total/longest.
        "amdahl_bound": round(total / longest, 2),
        "longest_experiment_s": longest,
        "per_experiment_wall_s": per_experiment,
    }
    _flush()
    assert [o.experiment_id for o in outcomes] == ids


def test_bench_update_online(benchmark):
    state, _ = _live_state()
    rounds = 50

    def fast():
        for _ in range(rounds):
            update_online(state, 0)

    benchmark.pedantic(fast, rounds=1, iterations=1)

    t0 = time.perf_counter()
    fast()
    fast_s = (time.perf_counter() - t0) / rounds
    t0 = time.perf_counter()
    for _ in range(rounds):
        reference.update_online_reference(state, 0)
    slow_s = (time.perf_counter() - t0) / rounds

    speedup = _record_day_loop("update_online_per_day", fast_s, slow_s)
    assert speedup > 1.0


def test_bench_ferry_weights(benchmark):
    state, _ = _live_state()
    rng = np.random.default_rng(0)
    rounds = 200

    def fast():
        for _ in range(rounds):
            ferry_weights(state, 0, rng)

    benchmark.pedantic(fast, rounds=1, iterations=1)

    t0 = time.perf_counter()
    fast()
    fast_s = (time.perf_counter() - t0) / rounds
    t0 = time.perf_counter()
    for _ in range(rounds):
        reference.ferry_weights_reference(state, 0, rng)
    slow_s = (time.perf_counter() - t0) / rounds

    speedup = _record_day_loop("ferry_weights_per_day", fast_s, slow_s)
    # O(would-ferry set) filter vs O(fleet) rebuild with owner lookups.
    assert speedup > 2.0


def test_bench_candidates_for(benchmark):
    state, _ = _live_state()
    rng = np.random.default_rng(0)
    challengees = [
        p for p in state.participants.values() if p.online
    ][:100]

    def fast():
        for participant in challengees:
            candidates_for(state, participant, rng)

    benchmark.pedantic(fast, rounds=1, iterations=1)

    t0 = time.perf_counter()
    fast()
    fast_s = (time.perf_counter() - t0) / len(challengees)
    t0 = time.perf_counter()
    for participant in challengees:
        reference.candidates_for_reference(state, participant, rng)
    slow_s = (time.perf_counter() - t0) / len(challengees)

    _record_day_loop("candidates_for_per_challenge", fast_s, slow_s)


def test_bench_obs_overhead(benchmark):
    """The observability tax on the hottest path: a cold small build
    with the metrics registry recording vs disabled (``REPRO_OBS=off``
    semantics). The design budget is < 3 % wall; the assertion is far
    looser because a cold build's wall time jitters by several percent
    on shared CI runners — the recorded number is the honest one.
    """

    def build():
        return SimulationEngine(small_scenario(seed=2021)).run()

    benchmark.pedantic(build, rounds=1, iterations=1)  # warm everything

    def timed() -> float:
        t0 = time.perf_counter()
        build()
        return time.perf_counter() - t0

    # Interleave the modes and keep each mode's best round: run-to-run
    # jitter on a ~1 s build dwarfs the instrumentation cost, and the
    # minimum is the least noisy estimator of it.
    enabled_times, disabled_times = [], []
    try:
        for _ in range(3):
            obs.set_enabled(True)
            enabled_times.append(timed())
            obs.set_enabled(False)
            disabled_times.append(timed())
    finally:
        obs.set_enabled(True)
    enabled_s, disabled_s = min(enabled_times), min(disabled_times)

    overhead_pct = (enabled_s - disabled_s) / disabled_s * 100.0
    _summary["obs_overhead"] = {
        "build_enabled_s": round(enabled_s, 3),
        "build_disabled_s": round(disabled_s, 3),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": 3.0,
    }
    _flush()
    assert overhead_pct < 15.0, _summary["obs_overhead"]


def test_bench_cold_build_phases(benchmark):
    """One cold small build; record where the day loop spends its time."""

    def build():
        return SimulationEngine(small_scenario(seed=2021)).run()

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    timings = result.day_loop_timings
    assert timings is not None
    _summary["day_loop"]["phase_seconds_cold_build"] = {
        phase: round(seconds, 4) for phase, seconds in timings.items()
    }
    _flush()

def test_bench_checkpoint_overhead(benchmark, tmp_path):
    """Day-level checkpoint save/load cost inside a real paper-scale
    run at the default ``--checkpoint-every 30`` cadence.

    The ISSUE budget — checkpoint overhead < 2 % of day-loop wall time
    at paper scale — is asserted on the mean periodic save: saves are
    incremental (the chain file is extended in place under a running
    hash, never re-read), so the steady-state cost is serializing the
    ~30 new days of blocks plus the world-state payload. The late-run
    maximum and the resume load time are recorded unasserted: the load
    replaces re-simulating every completed day, so its honest
    comparison (also recorded) is the day-loop wall it refunds.
    """
    config = paper_scenario(seed=2021)
    cadence = 30
    ckpt = tmp_path / "ckpt"
    save_times = []
    original_save = WorldState.save

    def timed_save(self, directory):
        t0 = time.perf_counter()
        original_save(self, directory)
        save_times.append(time.perf_counter() - t0)

    WorldState.save = timed_save
    try:
        def run():
            return SimulationEngine(config).run(
                checkpoint_every=cadence, checkpoint_dir=ckpt
            )

        result = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        WorldState.save = original_save

    day_loop_wall_s = sum(result.day_loop_timings.values())
    mean_save_s = sum(save_times) / len(save_times)

    t0 = time.perf_counter()
    WorldState.load(ckpt)
    load_s = time.perf_counter() - t0

    overhead_pct = mean_save_s / day_loop_wall_s * 100.0
    _summary["checkpoint"] = {
        "scenario": "paper",
        "n_days": config.n_days,
        "cadence_days": cadence,
        "saves_per_run": len(save_times),
        "day_loop_wall_s": round(day_loop_wall_s, 3),
        "save_mean_s": round(mean_save_s, 4),
        "save_max_s": round(max(save_times), 4),
        "load_s": round(load_s, 3),
        "load_refunds_day_loop_s": round(day_loop_wall_s, 3),
        "overhead_pct": round(overhead_pct, 3),
        "budget_pct": 2.0,
    }
    _flush()
    assert overhead_pct < 2.0, _summary["checkpoint"]
