"""Bench Figure 14: witness RSSI CDF."""

from repro.experiments.registry import run_experiment


def test_bench_fig14(benchmark, result):
    report = benchmark(run_experiment, "fig14", result)
    rows = {r.label: r for r in report.rows}
    median = rows["median witness RSSI"].measured
    # Paper: median −108 dBm; the distribution lives between the legal
    # EIRP ceiling and the demodulation floor.
    assert -135.0 < median < -85.0
    growth = rows["radius growth at median RSSI"].measured
    # The RSSI radius-growth term is metres, not kilometres (paper: 20 m
    # at the median) — the "almost invisible red trim" of Fig. 12e.
    assert 0.5 < growth < 300.0
