"""Benchmark fixtures.

Each bench regenerates one of the paper's tables/figures against a
simulated Helium history and asserts its qualitative shape (who wins, by
roughly what factor). The scenario builds once per session; select it
with ``REPRO_BENCH_SCENARIO=paper|small`` (default ``small`` so the
whole suite runs in a couple of minutes; ``paper`` gives the full
1/10-scale replica used for EXPERIMENTS.md numbers).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.context import get_result


def pytest_configure(config):
    """Keep heavy analysis benches to a handful of rounds."""
    if hasattr(config.option, "benchmark_min_rounds"):
        config.option.benchmark_min_rounds = 1
        config.option.benchmark_max_time = 2.0
        config.option.benchmark_warmup = "off"


@pytest.fixture(scope="session")
def result():
    """The shared simulation result all benches analyse."""
    scenario = os.environ.get("REPRO_BENCH_SCENARIO", "small")
    return get_result(scenario, seed=2021)
