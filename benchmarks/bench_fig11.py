"""Bench Figure 11: relay selection randomness."""

from repro.experiments.registry import run_experiment


def test_bench_fig11(benchmark, result):
    report = benchmark(run_experiment, "fig11", result)
    rows = {r.label: r for r in report.rows}
    # The paper's conclusion: the actual distance CDF is statistically
    # indistinguishable from random reassignment (geography plays no
    # role in relay choice).
    assert rows["KS statistic actual-vs-random"].measured < 0.12
    # Relay distances are continental scale (no geospatial affinity).
    assert rows["actual median distance"].measured > 500.0
