"""Bench Figure 6: bulk-owner profiling."""

from repro.experiments.registry import run_experiment


def test_bench_fig06(benchmark, result):
    report = benchmark(run_experiment, "fig06", result)
    rows = {r.label: r for r in report.rows}
    # Both §4.3 owner classes must be discoverable from chain data.
    assert rows["inferred application operators"].measured > 0
    assert rows["inferred mining operations"].measured > 0
