"""Bench Figure 7: the resale market."""

from repro.experiments.registry import run_experiment


def test_bench_fig07(benchmark, result):
    report = benchmark(run_experiment, "fig07", result)
    rows = {r.label: r for r in report.rows}
    # Paper: 8.6 % of fleet transferred; 95.4 % ≤2 transfers; 95.8 % 0-DC.
    assert 0.02 < rows["fleet fraction ever transferred"].measured < 0.2
    assert rows["transferred hotspots with ≤2 transfers"].measured > 0.85
    assert rows["transfers carrying 0 DC"].measured > 0.9
    # Fig 7c: volume grows over time.
    timeline = report.series["transfers_over_time"]
    assert timeline[-1][1] >= timeline[0][1]
