"""Bench §3 headline: the chain is overwhelmingly PoC transactions."""

from repro.experiments.registry import run_experiment


def test_bench_headline_s3(benchmark, result):
    report = benchmark(run_experiment, "headline_s3", result)
    rows = {r.label: r for r in report.rows}
    share = rows["PoC share of transactions (descaled)"].measured
    # Paper: 99.2 % — the chain must be PoC-dominated.
    assert share > 0.97
