"""Bench §7.2: lying witnesses."""

from repro.experiments.registry import run_experiment


def test_bench_s7_2(benchmark, result):
    report = benchmark(run_experiment, "s7_2", result)
    rows = {r.label: r for r in report.rows}
    # Absurd RSSIs exist on chain and are all rejected ("easily
    # dismissed") ...
    assert rows["impossible-RSSI reports (> +36 dBm EIRP)"].measured > 0
    assert rows["impossible RSSIs passing validity"].measured == 0
    # ... while informed forgeries always pass (the paper's takeaway).
    assert rows["clique forged-report validity rate"].measured > 0.95
