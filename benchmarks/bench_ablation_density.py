"""Ablation: the witness-reward density decay (§2.3 design choice).

"there also is decaying of rewards if hotspots are too dense" — the
reward engine caps fully-paid witnesses per challenge. This ablation
sweeps the cap and measures how witness earnings concentrate in a
crowded deployment: with no decay (huge cap), dense clusters absorb the
pool; with the production cap, earnings spread.
"""

import numpy as np

from repro import units
from repro.chain.transactions import RewardType
from repro.economics.rewards import EpochActivity, PocEvent, RewardEngine


def _crowded_epoch(n_witnesses: int = 12) -> EpochActivity:
    """One challenge witnessed by a dense cluster plus a remote pair."""
    activity = EpochActivity(epoch_start_block=0, epoch_end_block=29)
    cluster = tuple(
        (f"hs_cluster_{i}", f"wal_cluster_{i}") for i in range(n_witnesses)
    )
    activity.poc_events = [
        PocEvent(
            challenger="hs_c", challenger_owner="wal_c",
            challengee="hs_e", challengee_owner="wal_e",
            witnesses=cluster,
        ),
        PocEvent(
            challenger="hs_c2", challenger_owner="wal_c2",
            challengee="hs_remote", challengee_owner="wal_remote",
            witnesses=(("hs_lone", "wal_lone"),),
        ),
    ]
    return activity


def _witness_shares(cap: int) -> dict:
    engine = RewardEngine(max_witnesses_rewarded=cap)
    rewards = engine.compute(_crowded_epoch(), epoch_hnt=100.0,
                             hnt_price_usd=10.0)
    totals: dict = {}
    for share in rewards.shares:
        if share.reward_type is RewardType.POC_WITNESS:
            totals[share.gateway] = (
                totals.get(share.gateway, 0) + share.amount_bones
            )
    return totals


def test_bench_ablation_density(benchmark):
    capped = benchmark(_witness_shares, 4)
    uncapped = _witness_shares(100)

    lone_capped = capped["hs_lone"]
    lone_uncapped = uncapped["hs_lone"]
    cluster_capped = sum(v for k, v in capped.items() if "cluster" in k)
    cluster_uncapped = sum(v for k, v in uncapped.items() if "cluster" in k)

    # Without decay the dense cluster absorbs almost the whole pool; the
    # production cap shifts share back to the lone rural witness.
    assert cluster_uncapped / lone_uncapped > cluster_capped / lone_capped
    assert lone_capped > lone_uncapped
    # Beyond the cap, cluster members earn only the decayed unit.
    cluster_values = sorted(v for k, v in capped.items() if "cluster" in k)
    assert cluster_values[0] < cluster_values[-1]
