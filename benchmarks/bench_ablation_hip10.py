"""Ablation: the HIP 10 data-reward cap on/off (§5.3.2).

Replays one spam-heavy epoch through both reward rules and measures the
arbitrage margin directly: pre-HIP-10 the spammer's HNT haul is worth
orders of magnitude more than the DC they burned; post-HIP-10 the margin
collapses to ≤ 1×.
"""

from repro import units
from repro.chain.transactions import RewardType
from repro.economics.rewards import EpochActivity, PocEvent, RewardEngine


def _spam_epoch() -> EpochActivity:
    activity = EpochActivity(epoch_start_block=0, epoch_end_block=29)
    activity.data_packets = {
        ("hs_spam", "wal_spam"): 200_000,
        ("hs_real", "wal_real"): 2_000,
    }
    activity.data_dcs = dict(activity.data_packets)
    activity.poc_events = [PocEvent(
        challenger="hs_a", challenger_owner="wal_a",
        challengee="hs_b", challengee_owner="wal_b",
        witnesses=(("hs_w", "wal_w"),),
    )]
    return activity


def _margin(hip10: bool, hnt_price: float = 15.0) -> float:
    engine = RewardEngine(hip10_cap=hip10)
    rewards = engine.compute(_spam_epoch(), epoch_hnt=100.0, hnt_price_usd=hnt_price)
    earned_bones = sum(
        s.amount_bones for s in rewards.shares
        if s.account == "wal_spam" and s.reward_type is RewardType.DATA_TRANSFER
    )
    earned_usd = units.bones_to_hnt(earned_bones) * hnt_price
    spent_usd = units.dc_to_usd(200_000)
    return earned_usd / spent_usd


def test_bench_ablation_hip10(benchmark):
    pre_margin = benchmark(_margin, False)
    post_margin = _margin(True)
    # Pre-HIP-10: spamming returns far more than it costs (the paper's
    # August 2020 episode). Post: margin capped at ~1×, spam pointless.
    assert pre_margin > 50.0
    assert post_margin <= 1.001
