"""Serving-tier benchmark: repro.serve vs the legacy explorer, same run.

Starts both tiers as subprocesses over the *same* WAL store (separate
interpreters, so neither shares a GIL with the generator), then drives
each with the identical zipf/bursty workload at increasing concurrency.
What the numbers show is the tentpole claim: a fixed worker pool with
checkpoint-keyed caching and 304 revalidation sustains multiples of the
legacy thread-per-connection, render-every-time throughput — and the
gap widens with concurrency.

Writes ``BENCH_serve.json`` at the repo root (per-level p50/p99, rps,
cache hit ratio and shed counts, ``cpu_count`` recorded) so the numbers
travel with the repo like ``BENCH_etl.json``.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q``
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.etl import EtlStore, ingest_chain
from repro.serve.loadgen import discover_paths, fetch_metrics, run_load

from tests.etl_chains import ChainBuilder

_REPO = Path(__file__).resolve().parent.parent
_RESULTS_PATH = _REPO / "BENCH_serve.json"

#: Concurrency ladder; the acceptance claim is judged at >= 64.
_LEVELS = (16, 64, 256)
_DURATION_S = 4.0
_SEED = 2021
#: Concurrency for the keep-alive A/B — moderate on purpose, since a
#: persistent connection holds a pool worker for its whole burst.
_KA_CLIENTS = 32

_LISTENING = re.compile(r"listening on http://([\d.]+):(\d+)/")

_LEGACY_SCRIPT = """\
import sys
from repro.etl.store import EtlStore
from repro.etl.server import serve
serve(EtlStore(sys.argv[1], create=False), port=0, verbose=False)
"""


def _child_env() -> dict:
    env = dict(os.environ)
    src = str(_REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    return env


class _ServerProc:
    """A server subprocess plus the base URL it reported on stdout."""

    def __init__(self, argv, timeout_s: float = 30.0) -> None:
        self.process = subprocess.Popen(
            argv, env=_child_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        deadline = time.monotonic() + timeout_s
        self.base_url = None
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line and self.process.poll() is not None:
                break
            match = _LISTENING.search(line or "")
            if match:
                self.base_url = f"http://{match.group(1)}:{match.group(2)}"
                return
        self.stop()
        raise RuntimeError(f"server never came up: {argv}")

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)


@pytest.fixture(scope="module")
def serve_db(tmp_path_factory):
    """One WAL store both tiers serve: a mid-sized randomized chain."""
    path = str(tmp_path_factory.mktemp("bench_serve") / "etl.db")
    builder = ChainBuilder(seed=_SEED, n_hotspots=48)
    builder.grow(30)
    with EtlStore(path) as store:
        ingest_chain(builder.chain, store)
    return path


def _measure(
    base_url: str, clients: int, collect_server_cache: bool,
    keep_alive: bool = False,
):
    before = fetch_metrics(base_url).get("counters", {})
    report = run_load(
        base_url,
        clients=clients,
        duration_s=_DURATION_S,
        seed=_SEED + clients,
        paths=discover_paths(base_url),
        keep_alive=keep_alive,
    )
    summary = report.summary()
    if collect_server_cache:
        after = fetch_metrics(base_url).get("counters", {})
        hits = (after.get("serve.cache.hit", 0)
                - before.get("serve.cache.hit", 0))
        misses = (after.get("serve.cache.miss", 0)
                  - before.get("serve.cache.miss", 0))
        summary["server_cache"] = {
            "hits": hits,
            "misses": misses,
            "revalidated_304": (after.get("serve.cache.revalidated", 0)
                                - before.get("serve.cache.revalidated", 0)),
            "hit_ratio": round(hits / (hits + misses), 4)
            if hits + misses else None,
        }
        summary["shed"] = (after.get("serve.shed", 0)
                           - before.get("serve.shed", 0))
    return summary


def test_bench_serve_vs_legacy(serve_db):
    legacy = _ServerProc([
        sys.executable, "-u", "-c", _LEGACY_SCRIPT, serve_db,
    ])
    tier = _ServerProc([
        sys.executable, "-u", "-m", "repro.serve", "serve",
        "--db", serve_db, "--port", "0", "--quiet",
    ])
    levels = []
    try:
        for clients in _LEVELS:
            legacy_run = _measure(
                legacy.base_url, clients, collect_server_cache=False
            )
            serve_run = _measure(
                tier.base_url, clients, collect_server_cache=True
            )
            speedup = (
                serve_run["requests_per_s"] / legacy_run["requests_per_s"]
                if legacy_run["requests_per_s"] else float("inf")
            )
            levels.append({
                "clients": clients,
                "legacy": legacy_run,
                "serve": serve_run,
                "speedup_rps": round(speedup, 2),
            })
    finally:
        legacy.stop()
        tier.stop()

    # Keep-alive A/B: same workload, fresh connection per request vs
    # one connection per on-burst. Runs against a pool with one worker
    # per client — a persistent connection pins its worker for the
    # whole burst, so with fewer workers than clients the A/B would
    # measure worker starvation, not connection reuse.
    ka_tier = _ServerProc([
        sys.executable, "-u", "-m", "repro.serve", "serve",
        "--db", serve_db, "--port", "0", "--quiet",
        "--workers", str(_KA_CLIENTS),
    ])
    try:
        ka_off = _measure(
            ka_tier.base_url, _KA_CLIENTS, collect_server_cache=False
        )
        ka_on = _measure(
            ka_tier.base_url, _KA_CLIENTS, collect_server_cache=False,
            keep_alive=True,
        )
    finally:
        ka_tier.stop()

    keep_alive = {
        "clients": _KA_CLIENTS,
        "workers": _KA_CLIENTS,
        "per_request_connections": ka_off,
        "keep_alive_connections": ka_on,
        "rps_delta": round(
            ka_on["requests_per_s"] / ka_off["requests_per_s"], 3
        ) if ka_off["requests_per_s"] else None,
        # On a single-core box rps is CPU-bound either way; the connect
        # round-trip keep-alive removes shows up in p50 instead.
        "p50_speedup": round(
            ka_off["latency_ms"]["p50"] / ka_on["latency_ms"]["p50"], 2
        ) if ka_on["latency_ms"]["p50"] else None,
    }
    summary = {
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "duration_s_per_level": _DURATION_S,
        "workload": {
            "zipf_s": 1.1, "mean_on_s": 0.5, "mean_off_s": 0.5,
            "revalidate": True, "seed": _SEED,
        },
        "levels": levels,
        "keep_alive": keep_alive,
    }
    _RESULTS_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    for level in levels:
        # Both tiers actually served traffic, with a clean error tail.
        assert level["legacy"]["requests"] > 0
        assert level["serve"]["requests"] > 0
        assert level["serve"]["status"]["errors"] <= (
            level["serve"]["requests"] * 0.02 + 5
        )
        # The cache did the work the rps numbers credit it with.
        assert level["serve"]["status"]["304"] > 0
        assert level["serve"]["server_cache"]["hit_ratio"] is None or \
            level["serve"]["server_cache"]["hit_ratio"] > 0.5
    # The acceptance claim: >= 5x requests/s at concurrency >= 64,
    # measured against the legacy tier in the same run.
    for level in levels:
        if level["clients"] >= 64:
            assert level["speedup_rps"] >= 5.0, level
    # Both halves of the keep-alive A/B served real traffic cleanly.
    for half in (ka_off, ka_on):
        assert half["requests"] > 0
        assert half["status"]["errors"] <= half["requests"] * 0.02 + 5
