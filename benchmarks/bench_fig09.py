"""Bench Figure 9: ASN distribution and city diversity."""

from repro.experiments.registry import run_experiment


def test_bench_fig09(benchmark, result):
    report = benchmark(run_experiment, "fig09", result)
    rows = {r.label: r for r in report.rows}
    distribution = report.series["asn_distribution"]
    # Heavy head: top-10 ASNs carry the majority (Fig. 9's shape).
    assert rows["top-10 ASN share of hotspots"].measured > 0.4
    # Long tail: single/double-hotspot ASNs exist.
    assert rows["single-hotspot ASNs (long tail)"].measured > 0
    # Regional single-ASN risk is widespread (§6.1).
    assert rows["single-ASN city fraction"].measured > 0.25
    counts = [c for _, c in distribution]
    assert counts == sorted(counts, reverse=True)
