"""Bench Figure 13: valid-witness distance CDF."""

from repro.experiments.registry import run_experiment


def test_bench_fig13(benchmark, result):
    report = benchmark(run_experiment, "fig13", result)
    rows = {r.label: r for r in report.rows}
    # Most witness mass sits well below the 25 km cutoff ...
    assert rows["median witness distance"].measured < 10.0
    assert rows["fraction beyond 25 km"].measured < 0.1
    # ... but a long tail (over-water / high-gain) exists to be cut.
    assert rows["max witness distance"].measured > 25.0
