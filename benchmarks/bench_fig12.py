"""Bench Figure 12: the coverage-model progression."""

from repro.experiments.registry import run_experiment


def test_bench_fig12(benchmark, result):
    report = benchmark(run_experiment, "fig12", result)
    rows = {r.label: r for r in report.rows}
    disk = rows["(b) 300 m disk coverage (descaled %)"].measured
    hulls25 = rows["(d) hulls w/ 25 km cutoff (descaled %)"].measured
    revised = rows["(e) revised model (descaled %)"].measured
    # The paper's central coverage finding: every model says coverage is
    # a tiny fraction of the US, and the model family is strictly
    # ordered disk ≪ hulls(25 km) < revised (0.093 % / 0.57 % / 3.3 %).
    assert disk < 1.0
    assert disk < hulls25 < revised
    # The disk→hull jump is the big one (paper: ~6×).
    assert hulls25 / max(disk, 1e-9) > 2.0
