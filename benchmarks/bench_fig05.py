"""Bench Figure 5: network growth."""

from repro.experiments.registry import run_experiment


def test_bench_fig05(benchmark, result):
    report = benchmark(run_experiment, "fig05", result)
    rows = {r.label: r for r in report.rows}
    connected = rows["connected at end (descaled)"].measured
    online = rows["online at end (descaled)"].measured
    # Paper: 44k connected / 34k online — online is a ~3/4 subset.
    assert 0.6 < online / connected < 0.95
    # Growth is exponential: the second half adds most of the fleet.
    cumulative = report.series["cumulative_connected"]
    assert cumulative[len(cumulative) // 2] < cumulative[-1] / 2
    # International expansion happened but the US still leads or ties.
    assert rows["intl online at end (descaled)"].measured > 0
