"""Bench §7.1: silent movers."""

from repro.experiments.registry import run_experiment


def test_bench_s7_1(benchmark, result):
    report = benchmark(run_experiment, "s7_1", result)
    rows = {r.label: r for r in report.rows}
    # The detector finds impossible-geometry witnesses, and — the §7.1
    # takeaway — they keep earning rewards anyway.
    assert rows["flagged by chain-only detector"].measured > 0
    assert rows["flagged AND still earning rewards"].measured > 0
    assert rows["detector recall"].measured > 0.1
