"""ETL benchmarks: ingest throughput and store-vs-in-memory query latency.

Measures what the new subsystem trades: a one-off ingest cost (blocks/s
into SQLite) buys indexed page queries that need no chain object in
memory. Records ingest throughput plus hotspot-page and witness-list
lookup latency for both backends in ``BENCH_etl.json`` (repo root), so
the numbers travel with the repo like ``BENCH_perf.json`` does.

Run with ``REPRO_BENCH_SCENARIO=paper`` for the committed numbers.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.core.explorer import Explorer
from repro.etl import EtlStore, ingest_chain

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_etl.json"
_summary = {
    "scenario": os.environ.get("REPRO_BENCH_SCENARIO", "small"),
    "ingest": {},
    "query_latency_us": {},
}

_N_QUERIES = 300


def _record() -> None:
    _RESULTS_PATH.write_text(json.dumps(_summary, indent=2) + "\n")


def _fresh_store(result) -> EtlStore:
    store = EtlStore()
    ingest_chain(result.chain, store)
    return store


def _sample_gateways(result, n=_N_QUERIES):
    gateways = list(result.chain.ledger.hotspots)
    picker = random.Random(7)
    return [picker.choice(gateways) for _ in range(n)]


def test_bench_ingest_throughput(benchmark, result):
    chain = result.chain

    def _ingest():
        store = EtlStore()
        ingest_chain(chain, store)
        return store

    store = benchmark.pedantic(_ingest, rounds=1, iterations=1)
    assert store.checkpoint_height == chain.height

    t0 = time.perf_counter()
    _fresh_store(result)
    elapsed = time.perf_counter() - t0
    blocks = len(chain.blocks)
    _summary["ingest"] = {
        "blocks": blocks,
        "transactions": chain.total_transactions,
        "seconds": round(elapsed, 3),
        "blocks_per_s": round(blocks / elapsed, 1),
        "transactions_per_s": round(chain.total_transactions / elapsed, 1),
    }
    _record()
    assert blocks / elapsed > 50  # generous floor; ~3k blocks/s typical


def test_bench_resume_is_cheap(result):
    store = _fresh_store(result)
    t0 = time.perf_counter()
    report = ingest_chain(result.chain, store)
    elapsed = time.perf_counter() - t0
    assert report.up_to_date
    _summary["ingest"]["noop_resume_ms"] = round(elapsed * 1000, 2)
    _record()


def _time_queries(fn, keys) -> float:
    """Mean per-query latency in microseconds."""
    t0 = time.perf_counter()
    for key in keys:
        fn(key)
    return (time.perf_counter() - t0) / len(keys) * 1e6


def test_bench_hotspot_page_latency(benchmark, result):
    store = _fresh_store(result)
    in_memory = Explorer(result.chain)
    from_store = Explorer.from_store(store)
    gateways = _sample_gateways(result)

    benchmark.pedantic(
        lambda: [from_store.hotspot(g) for g in gateways[:50]],
        rounds=1, iterations=1,
    )

    _summary["query_latency_us"]["hotspot_page"] = {
        "in_memory": round(_time_queries(in_memory.hotspot, gateways), 1),
        "etl_store": round(_time_queries(from_store.hotspot, gateways), 1),
    }
    _record()
    sample = gateways[0]
    assert in_memory.hotspot(sample) == from_store.hotspot(sample)


def test_bench_witness_list_latency(benchmark, result):
    store = _fresh_store(result)
    in_memory = Explorer(result.chain)
    gateways = _sample_gateways(result)

    def _store_lookup(gateway):
        return store.witness_events(gateway, direction="witnessing", limit=25)

    def _memory_lookup(gateway):
        return in_memory.hotspot(gateway).recent_witnesses

    benchmark.pedantic(
        lambda: [_store_lookup(g) for g in gateways[:50]],
        rounds=1, iterations=1,
    )

    _summary["query_latency_us"]["witness_list"] = {
        "in_memory": round(_time_queries(_memory_lookup, gateways), 1),
        "etl_store": round(_time_queries(_store_lookup, gateways), 1),
    }
    _record()
    sample = gateways[0]
    assert _store_lookup(sample) == _memory_lookup(sample)
