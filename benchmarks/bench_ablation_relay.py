"""Ablation: relay selection policy — random vs nearest-k (§6.2).

The paper hypothesises geospatially-aware relay selection, then rejects
it. This ablation implements the rejected design and quantifies what
Helium gave up: nearest-k selection slashes relay→peer distance (good
for the <1 s LoRaMAC deadlines) at the cost of local fate-sharing.
"""

import numpy as np

from repro.p2p.relay import RelayCandidate, RelayFabric


def _candidates(result):
    out = []
    for hotspot in result.world.online_hotspots():
        if hotspot.backhaul is None:
            continue
        out.append(RelayCandidate(
            peer=hotspot.gateway,
            location=hotspot.actual_location,
            has_public_ip=hotspot.backhaul.has_public_ip,
        ))
    return out


def _median_relay_distance(candidates, policy, rng):
    fabric = RelayFabric(policy=policy, nearest_k=3)
    peerbook = fabric.build_peerbook(candidates, rng)
    locations = {c.peer: c.location for c in candidates}
    distances = sorted(
        locations[r].distance_km(locations[p])
        for r, p in peerbook.relay_pairs()
    )
    return distances[len(distances) // 2]


def test_bench_ablation_relay(benchmark, result):
    candidates = _candidates(result)

    def run():
        rng = np.random.default_rng(42)
        random_median = _median_relay_distance(candidates, "random", rng)
        nearest_median = _median_relay_distance(candidates, "nearest", rng)
        return random_median, nearest_median

    random_median, nearest_median = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # Helium's actual policy pays a huge distance penalty vs nearest-k.
    assert nearest_median < random_median / 5.0
