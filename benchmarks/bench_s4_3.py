"""Bench §4.3: ownership distribution."""

from repro.experiments.registry import run_experiment


def test_bench_s4_3(benchmark, result):
    report = benchmark(run_experiment, "s4_3", result)
    rows = {r.label: r for r in report.rows}
    # Paper: 62.1 % single-hotspot owners, 83.7 % own ≤3 — ownership is
    # decentralised, with a whale at the top.
    assert 0.5 < rows["owners with exactly 1 hotspot"].measured < 0.8
    assert rows["owners with ≤3"].measured > 0.75
    assert rows["max fleet (scaled)"].measured >= 10
