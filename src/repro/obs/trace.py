"""JSON-lines event trace shared by every process of one run.

A trace is one append-only file of single-line JSON events. Every event
carries the wall-clock timestamp, the emitting process id, the run's
``trace`` id and a dotted ``kind`` (``engine.run``, ``cache.build``,
``worker.task``, ``http.request``, …); everything else is free-form
per-kind fields. Lines are written on an ``O_APPEND`` descriptor and
drained to completion under the writer lock (a single ``os.write`` may
return short for a large event or when interrupted by a signal), so
concurrent writers — the farm's worker processes, the HTTP server's
request threads — interleave at line granularity and the file stays
parseable.

Activation is lazy and environment-driven: :func:`configure_trace`
opens the file *and* exports ``REPRO_TRACE`` / ``REPRO_TRACE_ID``, so
any child process (``fork`` or ``spawn`` — both inherit the
environment) auto-joins the same trace on its first
:func:`trace_event`. Without a configured path and without the
environment variable, :func:`trace_event` is a cheap no-op, which keeps
instrumented hot paths free to call it unconditionally.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Optional, Union

__all__ = [
    "ENV_TRACE",
    "ENV_TRACE_ID",
    "TraceWriter",
    "close_trace",
    "configure_trace",
    "trace_event",
    "trace_id",
    "tracing",
]

ENV_TRACE = "REPRO_TRACE"
ENV_TRACE_ID = "REPRO_TRACE_ID"


class TraceWriter:
    """Appends JSON-lines events to one trace file."""

    def __init__(
        self, path: Union[str, Path], trace_id: Optional[str] = None
    ) -> None:
        self.path = str(path)
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        parent = Path(self.path).resolve().parent
        parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._lock = threading.Lock()

    def event(self, kind: str, **fields: Any) -> None:
        """Write one event line (thread-safe, drained to completion).

        ``os.write`` may consume only part of the buffer — oversized
        events past the pipe/filesystem chunk limit, or a syscall
        interrupted by a signal on pre-3.10 Pythons. A partial line on
        the shared ``O_APPEND`` stream would corrupt the JSON-lines
        framing for every reader, so the buffer is drained in a loop
        under the lock (holding it keeps the tail contiguous with its
        head even with other threads writing).
        """
        record = {
            "ts": round(time.time(), 6),
            "trace": self.trace_id,
            "pid": os.getpid(),
            "kind": kind,
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        view = memoryview(line.encode("utf-8"))
        with self._lock:
            while view:
                try:
                    written = os.write(self._fd, view)
                except InterruptedError:
                    continue
                view = view[written:]

    def close(self) -> None:
        os.close(self._fd)


_WRITER: Optional[TraceWriter] = None
_ENV_CHECKED = False
_STATE_LOCK = threading.Lock()


def configure_trace(
    path: Union[str, Path],
    trace_id: Optional[str] = None,
    export_env: bool = True,
) -> TraceWriter:
    """Start tracing this process into ``path``.

    With ``export_env`` (the default) the path and trace id are also
    exported as ``REPRO_TRACE`` / ``REPRO_TRACE_ID`` so worker processes
    spawned later join the same trace file and id.
    """
    global _WRITER, _ENV_CHECKED
    with _STATE_LOCK:
        if _WRITER is not None:
            _WRITER.close()
        _WRITER = TraceWriter(path, trace_id=trace_id)
        _ENV_CHECKED = True
        if export_env:
            os.environ[ENV_TRACE] = _WRITER.path
            os.environ[ENV_TRACE_ID] = _WRITER.trace_id
        return _WRITER


def _active_writer() -> Optional[TraceWriter]:
    global _WRITER, _ENV_CHECKED
    if _WRITER is not None or _ENV_CHECKED:
        return _WRITER
    with _STATE_LOCK:
        if _WRITER is None and not _ENV_CHECKED:
            _ENV_CHECKED = True
            path = os.environ.get(ENV_TRACE)
            if path and path.strip().lower() not in {"0", "off", "none"}:
                try:
                    _WRITER = TraceWriter(
                        path, trace_id=os.environ.get(ENV_TRACE_ID)
                    )
                except OSError:
                    _WRITER = None  # unwritable path: stay silent
        return _WRITER


def trace_event(kind: str, **fields: Any) -> None:
    """Emit one event if tracing is active; no-op otherwise."""
    writer = _active_writer()
    if writer is not None:
        writer.event(kind, **fields)


def tracing() -> bool:
    """Whether this process currently writes trace events."""
    return _active_writer() is not None


def trace_id() -> Optional[str]:
    """The active trace id, or ``None`` when not tracing."""
    writer = _active_writer()
    return None if writer is None else writer.trace_id


def close_trace(clear_env: bool = False) -> None:
    """Stop tracing (tests; also re-arms the lazy env check)."""
    global _WRITER, _ENV_CHECKED
    with _STATE_LOCK:
        if _WRITER is not None:
            _WRITER.close()
        _WRITER = None
        _ENV_CHECKED = False
        if clear_env:
            os.environ.pop(ENV_TRACE, None)
            os.environ.pop(ENV_TRACE_ID, None)
