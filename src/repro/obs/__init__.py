"""repro.obs — structured observability for every hot layer (stdlib only).

Two cooperating pieces:

* :mod:`repro.obs.registry` — a process-wide registry of counters,
  gauges and timing histograms (``obs.counter``, ``obs.gauge``,
  ``obs.timer`` context manager/decorator), with JSON snapshot and
  Prometheus text export. Served live by the explorer API's
  ``GET /metrics`` route.
* :mod:`repro.obs.trace` — a JSON-lines event log with a per-run trace
  id shared across processes (``--trace <path>`` on the CLIs, or the
  ``REPRO_TRACE`` environment variable; worker processes auto-join via
  the environment).

Everything is always-on but cheap: metrics cost a lock plus dict ops,
trace events are no-ops until a sink is configured. ``REPRO_OBS=off``
disables metric recording entirely — the overhead benchmark in
``benchmarks/bench_parallel.py`` measures the difference and holds it
under the documented budget (DESIGN.md §9).

Typical use::

    from repro import obs

    obs.counter("cache.disk_hit")
    with obs.timer("cache.build_s") as timing:
        result = build()
    obs.trace_event("cache.build", wall_s=timing.elapsed)
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    Timer,
    counter,
    enabled,
    gauge,
    observe,
    peak_rss_bytes,
    record_child_peak_rss,
    rusage_self_bytes,
    reset,
    set_enabled,
    snapshot,
    timer,
    to_prometheus,
)
from repro.obs.trace import (
    ENV_TRACE,
    ENV_TRACE_ID,
    TraceWriter,
    close_trace,
    configure_trace,
    trace_event,
    trace_id,
    tracing,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "ENV_TRACE",
    "ENV_TRACE_ID",
    "MetricsRegistry",
    "REGISTRY",
    "Timer",
    "TraceWriter",
    "close_trace",
    "configure_trace",
    "counter",
    "enabled",
    "gauge",
    "observe",
    "peak_rss_bytes",
    "record_child_peak_rss",
    "rusage_self_bytes",
    "reset",
    "set_enabled",
    "snapshot",
    "timer",
    "to_prometheus",
    "trace_event",
    "trace_id",
    "tracing",
]
