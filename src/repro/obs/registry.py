"""Process-wide metrics registry: counters, gauges, timing histograms.

One :class:`MetricsRegistry` instance (:data:`REGISTRY`) lives per
process; the module-level helpers (:func:`counter`, :func:`gauge`,
:func:`observe`, :func:`timer`) delegate to it. Metrics are named with
dotted lowercase paths (``cache.disk_hit``, ``http.latency_s``) plus
optional labels, and every mutation is guarded by one lock, so any
thread — engine, HTTP request handlers, pool bookkeeping — can record
without coordination. Worker *processes* each get their own registry
(module globals are per-process under every start method, including
``spawn``); cross-process aggregation happens through the shared trace
file (:mod:`repro.obs.trace`), never through shared memory.

Timing histograms keep count / sum / min / max plus fixed exponential
buckets, which is what the Prometheus text export needs and costs a few
dict operations per observation — cheap enough to leave on in the hot
paths (the ``REPRO_OBS=off`` switch exists for measuring that claim,
see ``benchmarks/bench_parallel.py``).

>>> registry = MetricsRegistry()
>>> registry.counter("demo.events")
1
>>> registry.counter("demo.events", 2, kind="warm")
2
>>> with registry.timer("demo.step_s"):
...     _ = sum(range(100))
>>> snap = registry.snapshot()
>>> snap["counters"]["demo.events"]
1
>>> snap["counters"]['demo.events{kind=warm}']
2
>>> snap["timers"]["demo.step_s"]["count"]
1
>>> "repro_demo_events_total 1" in registry.to_prometheus()
True
"""

from __future__ import annotations

import functools
import math
import os
import re
import threading
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "MetricsRegistry",
    "Timer",
    "counter",
    "enabled",
    "gauge",
    "observe",
    "peak_rss_bytes",
    "record_child_peak_rss",
    "reset",
    "rusage_self_bytes",
    "set_enabled",
    "snapshot",
    "timer",
    "to_prometheus",
]

#: Histogram bucket upper bounds, seconds. Exponential from 100 µs to
#: 10 min — spans a fast SQL page query up to a paper-scale cold build.
DEFAULT_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0, 600.0)

_LabelKey = Tuple[Tuple[str, str], ...]
_MetricKey = Tuple[str, _LabelKey]

_OFF_VALUES = {"0", "off", "none", "false"}


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _flat_name(key: _MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _Histogram:
    """Count / sum / min / max plus cumulative exponential buckets."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.buckets = [0] * len(DEFAULT_BUCKETS)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                self.buckets[index] += 1
                break

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.min, 6) if self.count else 0.0,
            "max": round(self.max, 6),
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
        }


class Timer:
    """Times a block (context manager) or a function (decorator).

    On exit the elapsed seconds land in the registry's histogram under
    the timer's name; the measured value is also left on ``.elapsed``
    for callers that want to forward it into a trace event.
    """

    def __init__(
        self, registry: "MetricsRegistry", name: str, labels: Dict[str, Any]
    ) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = perf_counter() - self._started
        self._registry.observe(self._name, self.elapsed, **self._labels)

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self._registry.timer(self._name, **self._labels):
                return fn(*args, **kwargs)

        return wrapper


class MetricsRegistry:
    """Thread-safe store of counters, gauges and timing histograms."""

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[_MetricKey, int] = {}
        self._gauges: Dict[_MetricKey, float] = {}
        self._histograms: Dict[_MetricKey, _Histogram] = {}
        self.enabled = enabled

    # -- recording ---------------------------------------------------------

    def counter(self, name: str, delta: int = 1, **labels: Any) -> int:
        """Add ``delta`` to a counter; returns the new value."""
        if not self.enabled:
            return 0
        key = (name, _label_key(labels))
        with self._lock:
            value = self._counters.get(key, 0) + delta
            self._counters[key] = value
        return value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to its latest value (last write wins)."""
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, seconds: float, **labels: Any) -> None:
        """Record one duration into the named timing histogram."""
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram()
            histogram.observe(seconds)

    def timer(self, name: str, **labels: Any) -> Timer:
        """A :class:`Timer` bound to this registry (``with`` or ``@``)."""
        return Timer(self, name, labels)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """All metrics as one JSON-ready dict (labels folded into keys)."""
        with self._lock:
            return {
                "counters": {
                    _flat_name(k): v for k, v in sorted(self._counters.items())
                },
                "gauges": {
                    _flat_name(k): v for k, v in sorted(self._gauges.items())
                },
                "timers": {
                    _flat_name(k): h.summary()
                    for k, h in sorted(self._histograms.items())
                },
            }

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4)."""
        lines: List[str] = []
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                key: (hist.count, hist.total, list(hist.buckets))
                for key, hist in self._histograms.items()
            }
        seen_types: set = set()

        def emit(kind: str, prom: str, label_pairs, value) -> None:
            if prom not in seen_types:
                lines.append(f"# TYPE {prom} {kind}")
                seen_types.add(prom)
            label_text = (
                "{" + ",".join(f'{k}="{v}"' for k, v in label_pairs) + "}"
                if label_pairs
                else ""
            )
            lines.append(f"{prom}{label_text} {_format_value(value)}")

        for (name, labels), value in sorted(counters.items()):
            emit("counter", _prom_name(name) + "_total", labels, value)
        for (name, labels), value in sorted(gauges.items()):
            emit("gauge", _prom_name(name), labels, value)
        for (name, labels), (count, total, buckets) in sorted(
            histograms.items()
        ):
            prom = _prom_name(name)
            if prom not in seen_types:
                lines.append(f"# TYPE {prom} histogram")
                seen_types.add(prom)
            label_text = ",".join(f'{k}="{v}"' for k, v in labels)
            prefix = label_text + "," if label_text else ""
            cumulative = 0
            for bound, bucket_count in zip(DEFAULT_BUCKETS, buckets):
                cumulative += bucket_count
                lines.append(
                    f'{prom}_bucket{{{prefix}le="{bound:g}"}} {cumulative}'
                )
            lines.append(f'{prom}_bucket{{{prefix}le="+Inf"}} {count}')
            suffix = "{" + label_text + "}" if label_text else ""
            lines.append(f"{prom}_sum{suffix} {_format_value(total)}")
            lines.append(f"{prom}_count{suffix} {count}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _prom_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _format_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    return f"{value:g}"


#: The process-wide registry every instrumented layer records into.
REGISTRY = MetricsRegistry(
    enabled=os.environ.get("REPRO_OBS", "").strip().lower() not in _OFF_VALUES
)


def counter(name: str, delta: int = 1, **labels: Any) -> int:
    """Increment a counter on the process registry."""
    return REGISTRY.counter(name, delta, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the process registry."""
    REGISTRY.gauge(name, value, **labels)


def observe(name: str, seconds: float, **labels: Any) -> None:
    """Record a duration on the process registry."""
    REGISTRY.observe(name, seconds, **labels)


def timer(name: str, **labels: Any) -> Timer:
    """A timer recording into the process registry."""
    return REGISTRY.timer(name, **labels)


def snapshot() -> Dict[str, Dict]:
    """Snapshot the process registry."""
    return REGISTRY.snapshot()


def to_prometheus() -> str:
    """The process registry in Prometheus text format."""
    return REGISTRY.to_prometheus()


def reset() -> None:
    """Clear the process registry."""
    REGISTRY.reset()


def set_enabled(flag: bool) -> None:
    """Turn metric recording on or off process-wide."""
    REGISTRY.enabled = bool(flag)


def enabled() -> bool:
    """Whether the process registry is recording."""
    return REGISTRY.enabled


#: Max ru_maxrss reported by still-running worker processes (bytes).
#: ``RUSAGE_CHILDREN`` only reflects children the process has *reaped*:
#: a persistent shard pool's workers are not waited on until pool
#: shutdown, so a mid-run (or pre-join) reading would silently drop
#: them. Workers measure themselves and report through the gather
#: protocol; the pool folds the reports in here.
_children_peak_lock = threading.Lock()
_children_peak_bytes = 0


def record_child_peak_rss(peak_bytes: int) -> None:
    """Fold a live child's self-reported peak RSS (bytes) into the
    children high-water mark (monotone max; also exported as the
    ``process.peak_rss_children_bytes`` gauge)."""
    global _children_peak_bytes
    with _children_peak_lock:
        if peak_bytes > _children_peak_bytes:
            _children_peak_bytes = int(peak_bytes)
    gauge("process.peak_rss_children_bytes", float(_children_peak_bytes))


def _proc_vm_hwm_bytes() -> int:
    """``VmHWM`` from ``/proc/self/status``, in bytes (0 elsewhere).

    Preferred over ``ru_maxrss`` where available: on Linux the rusage
    high-water mark lives in the ``signal_struct``, which *survives
    execve* — a freshly exec'd subprocess inherits its forking parent's
    peak as a floor, so subprocess-isolated measurements (the scale
    benches) would read the launcher's peak, not their own. ``VmHWM``
    is reset on exec and tracks only this image's resident set.
    """
    try:
        with open("/proc/self/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def rusage_self_bytes() -> int:
    """This process's own peak RSS, in bytes (0 without POSIX
    ``resource``). The helper workers use to self-report; prefers
    ``VmHWM`` (see :func:`_proc_vm_hwm_bytes`) over ``ru_maxrss``."""
    hwm = _proc_vm_hwm_bytes()
    if hwm:
        return hwm
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    import sys

    unit = 1 if sys.platform == "darwin" else 1024
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * unit


def peak_rss_bytes(children: bool = False) -> int:
    """High-water-mark resident set size of this process, in bytes.

    Reads ``VmHWM`` where ``/proc`` exists (exec-accurate), else
    ``getrusage`` — ``ru_maxrss`` is kilobytes on Linux, bytes on
    macOS — and records the value as the ``process.peak_rss_bytes``
    gauge as a side effect, so any snapshot/Prometheus export taken
    afterwards carries it. With ``children=True`` the maximum over
    child processes is folded in: reaped children via
    ``RUSAGE_CHILDREN`` plus the self-reports live pool workers pushed
    through :func:`record_child_peak_rss` (``RUSAGE_CHILDREN`` alone
    misses workers that have not been waited on yet). Returns 0 on
    platforms without ``resource`` (Windows).
    """
    peak = rusage_self_bytes()
    if not peak:
        return 0
    if children:
        try:
            import resource
            import sys

            unit = 1 if sys.platform == "darwin" else 1024
            reaped = (
                resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
                * unit
            )
        except ImportError:  # pragma: no cover - non-POSIX
            reaped = 0
        peak = max(peak, reaped, _children_peak_bytes)
    gauge("process.peak_rss_bytes", float(peak))
    return int(peak)
