"""Deterministic random-number plumbing.

Every stochastic component in the library draws from a named stream handed
out by :class:`RngHub`. A hub is created from a single integer seed; each
named stream is an independent ``numpy`` PCG64 generator derived from the
hub seed and the stream name. This gives two properties the experiments
rely on:

* **Bit-reproducibility** — the same scenario seed always produces the
  same blockchain, the same walks, and therefore the same figures.
* **Stream independence** — adding draws to one subsystem (say, the move
  process) does not perturb any other subsystem's randomness, so results
  stay comparable across library versions that touch unrelated code.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator

import numpy as np

__all__ = ["RngHub", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 over the seed/name pair so that distinct names give
    uncorrelated child seeds and the mapping is stable across platforms
    and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngHub:
    """Fan-out of named, independent random generators from one seed.

    >>> hub = RngHub(42)
    >>> moves = hub.stream("moves")
    >>> growth = hub.stream("growth")
    >>> moves is hub.stream("moves")   # streams are cached
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.Generator(
                np.random.PCG64(derive_seed(self.seed, name))
            )
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RngHub":
        """Return a child hub whose streams are independent of this hub's.

        Useful when a subsystem itself needs several internal streams
        (e.g. the simulation engine forks one hub per scenario phase).
        """
        return RngHub(derive_seed(self.seed, f"fork:{name}"))

    def names(self) -> Iterator[str]:
        """Iterate over the stream names created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngHub(seed={self.seed}, streams={sorted(self._streams)})"
