"""Contiguous-US landmass model for coverage-fraction computations.

The paper expresses every coverage model as a percentage of the contiguous
US landmass (0.09295 % for the 300 m disk model up to 3.3032 % for the
revised model, §8.2.1). The authors used GIS boundary data; we substitute
a simplified boundary polygon (~50 vertices) whose area is within a few
percent of the true figure — more than sufficient, since coverage
fractions are themselves Monte-Carlo estimates over this polygon.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import GeoError
from repro.geo.geodesy import LatLon
from repro.geo.polygon import Polygon

__all__ = ["CONTIGUOUS_US", "Landmass", "contiguous_us"]

# Simplified contiguous-US boundary, counter-clockwise from the
# Washington-state NW corner. Great Lakes and coastal detail are smoothed;
# the enclosed area lands near the true ~8.1e6 km² (incl. inland water).
_US_BOUNDARY: Tuple[Tuple[float, float], ...] = (
    (48.99, -123.10),
    (49.00, -95.15),
    (48.50, -94.60),
    (47.80, -91.80),
    (46.50, -89.60),
    (45.00, -87.50),
    (43.60, -82.50),
    (42.20, -83.10),
    (41.70, -81.50),
    (42.90, -78.90),
    (43.60, -76.80),
    (44.10, -76.40),
    (45.00, -74.70),
    (45.30, -71.10),
    (47.30, -68.30),
    (44.80, -66.95),
    (43.00, -70.70),
    (42.00, -70.00),
    (41.20, -71.80),
    (40.50, -74.00),
    (38.90, -74.90),
    (36.90, -75.90),
    (35.20, -75.50),
    (33.80, -78.00),
    (32.00, -80.90),
    (30.70, -81.40),
    (28.00, -80.50),
    (25.20, -80.40),
    (25.10, -81.10),
    (26.70, -82.30),
    (29.00, -83.00),
    (30.40, -84.30),
    (30.20, -85.70),
    (30.20, -88.00),
    (29.20, -89.40),
    (29.70, -93.80),
    (28.90, -95.40),
    (26.00, -97.10),
    (25.90, -97.60),
    (27.50, -99.50),
    (29.50, -101.00),
    (29.20, -102.80),
    (31.80, -106.50),
    (31.30, -108.20),
    (31.30, -111.10),
    (32.50, -114.80),
    (32.53, -117.12),
    (33.70, -118.30),
    (34.40, -119.70),
    (35.40, -120.90),
    (36.60, -121.90),
    (37.80, -122.50),
    (39.40, -123.80),
    (41.70, -124.20),
    (43.30, -124.40),
    (46.20, -124.00),
    (47.90, -124.70),
    (48.40, -124.70),
)


class Landmass:
    """A named landmass against which coverage fractions are computed."""

    def __init__(self, name: str, boundary: Polygon) -> None:
        self.name = name
        self.boundary = boundary
        self._area_km2 = boundary.area_km2()

    @property
    def area_km2(self) -> float:
        """Total landmass area in km²."""
        return self._area_km2

    def contains(self, point: LatLon) -> bool:
        """True when ``point`` lies on the landmass."""
        return self.boundary.contains(point)

    def contains_many(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over parallel lat/lon arrays."""
        return self.boundary.contains_many(lats, lons)

    def bbox(self) -> Tuple[float, float, float, float]:
        """Bounding box as ``(south, west, north, east)``."""
        return self.boundary.bbox

    def sample_points(
        self, rng: np.random.Generator, n: int, max_attempts_factor: int = 50
    ) -> List[LatLon]:
        """Draw ``n`` points uniformly (by area) over the landmass.

        Rejection sampling over the bounding box with cos(lat) density
        correction, so samples are uniform on the sphere rather than in
        lat/lon space.
        """
        if n < 0:
            raise GeoError(f"n must be non-negative, got {n}")
        south, west, north, east = self.bbox()
        cos_max = float(
            np.cos(np.radians(min(abs(south), abs(north))))
            if south * north > 0
            else 1.0
        )
        points: List[LatLon] = []
        attempts = 0
        limit = max(1, n) * max_attempts_factor
        while len(points) < n and attempts < limit:
            remaining = n - len(points)
            batch = max(remaining * 3, 128)
            lats = rng.uniform(south, north, size=batch)
            lons = rng.uniform(west, east, size=batch)
            keep = rng.uniform(0.0, cos_max, size=batch) <= np.cos(
                np.radians(lats)
            )
            for lat, lon, ok in zip(lats, lons, keep):
                if not ok:
                    continue
                candidate = LatLon(float(lat), float(lon))
                if self.contains(candidate):
                    points.append(candidate)
                    if len(points) == n:
                        break
            attempts += batch
        if len(points) < n:
            raise GeoError(
                f"failed to sample {n} landmass points in {limit} attempts"
            )
        return points


def contiguous_us() -> Landmass:
    """A fresh :class:`Landmass` for the contiguous United States."""
    return Landmass(
        "contiguous-us",
        Polygon(tuple(LatLon(lat, lon) for lat, lon in _US_BOUNDARY)),
    )


#: Shared default instance (the boundary is immutable).
CONTIGUOUS_US: Landmass = contiguous_us()
