"""Great-circle geometry on a spherical Earth.

All hotspot-to-hotspot and device-to-hotspot distances in the paper are on
the order of metres to a few thousand kilometres, for which the spherical
model (error < 0.5 % vs the WGS-84 ellipsoid) is more than adequate: the
paper itself treats res-12 hex quantisation (~metres) as negligible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.errors import GeoError

__all__ = [
    "EARTH_RADIUS_KM",
    "LatLon",
    "validate_lat_lon",
    "haversine_km",
    "haversine_km_many",
    "initial_bearing_deg",
    "destination",
    "destination_many",
    "latlon_arrays",
    "local_project_km",
    "local_unproject_km",
]

#: Mean Earth radius in kilometres (IUGG).
EARTH_RADIUS_KM: float = 6371.0088


def validate_lat_lon(lat: float, lon: float) -> None:
    """Raise :class:`GeoError` unless ``lat``/``lon`` are in range."""
    if not (-90.0 <= lat <= 90.0):
        raise GeoError(f"latitude out of range [-90, 90]: {lat}")
    if not (-180.0 <= lon <= 180.0):
        raise GeoError(f"longitude out of range [-180, 180]: {lon}")


@dataclass(frozen=True)
class LatLon:
    """A point on the Earth's surface in decimal degrees.

    The Helium blockchain's infamous default location is ``LatLon(0, 0)``
    — "the large cluster in the ocean just below West Africa" (paper §4.1).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        validate_lat_lon(self.lat, self.lon)

    def distance_km(self, other: "LatLon") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)

    def bearing_deg(self, other: "LatLon") -> float:
        """Initial great-circle bearing towards ``other`` in degrees."""
        return initial_bearing_deg(self.lat, self.lon, other.lat, other.lon)

    def offset(self, bearing_deg_: float, distance_km: float) -> "LatLon":
        """The point ``distance_km`` away along ``bearing_deg_``."""
        return destination(self, bearing_deg_, distance_km)

    def is_null_island(self, tolerance_km: float = 1.0) -> bool:
        """True when the point is the (0, 0) default-location artifact."""
        return self.distance_km(LatLon(0.0, 0.0)) <= tolerance_km


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon points in kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def haversine_km_many(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Vectorised haversine over numpy arrays (broadcasts like numpy)."""
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = np.radians(np.asarray(lat2) - np.asarray(lat1))
    dlam = np.radians(np.asarray(lon2) - np.asarray(lon1))
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(a)))


def latlon_arrays(points: Iterable[LatLon]) -> Tuple[np.ndarray, np.ndarray]:
    """Split an iterable of :class:`LatLon` into (lat, lon) float arrays."""
    pts = list(points)
    lats = np.fromiter((p.lat for p in pts), dtype=float, count=len(pts))
    lons = np.fromiter((p.lon for p in pts), dtype=float, count=len(pts))
    return lats, lons


def destination_many(
    lat: np.ndarray,
    lon: np.ndarray,
    bearing_deg_: np.ndarray,
    distance_km: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`destination` (broadcasts like numpy).

    Raises:
        GeoError: when any distance is negative.
    """
    delta = np.asarray(distance_km, dtype=float) / EARTH_RADIUS_KM
    if np.any(delta < 0):
        raise GeoError("distances must be non-negative")
    theta = np.radians(np.asarray(bearing_deg_, dtype=float))
    phi1 = np.radians(np.asarray(lat, dtype=float))
    lam1 = np.radians(np.asarray(lon, dtype=float))
    sin_phi2 = (
        np.sin(phi1) * np.cos(delta)
        + np.cos(phi1) * np.sin(delta) * np.cos(theta)
    )
    phi2 = np.arcsin(np.clip(sin_phi2, -1.0, 1.0))
    lam2 = lam1 + np.arctan2(
        np.sin(theta) * np.sin(delta) * np.cos(phi1),
        np.cos(delta) - np.sin(phi1) * sin_phi2,
    )
    out_lon = (np.degrees(lam2) + 540.0) % 360.0 - 180.0
    return np.degrees(phi2), out_lon


def initial_bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial bearing from point 1 to point 2, degrees clockwise from north."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dlam = math.radians(lon2 - lon1)
    x = math.sin(dlam) * math.cos(phi2)
    y = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(
        dlam
    )
    return (math.degrees(math.atan2(x, y)) + 360.0) % 360.0


def destination(origin: LatLon, bearing_deg_: float, distance_km: float) -> LatLon:
    """Great-circle destination point from ``origin``.

    Args:
        origin: starting point.
        bearing_deg_: initial bearing, degrees clockwise from north.
        distance_km: distance to travel (must be non-negative).
    """
    if distance_km < 0:
        raise GeoError(f"distance must be non-negative, got {distance_km}")
    delta = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing_deg_)
    phi1 = math.radians(origin.lat)
    lam1 = math.radians(origin.lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta)
        + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lon = math.degrees(lam2)
    # Normalise longitude into [-180, 180].
    lon = (lon + 540.0) % 360.0 - 180.0
    return LatLon(math.degrees(phi2), lon)


def local_project_km(
    points: Iterable[LatLon], origin: LatLon
) -> List[Tuple[float, float]]:
    """Project points to a local tangent plane centred at ``origin``.

    Equirectangular projection: accurate to well under 1 % for the spans
    (tens of kilometres) over which the coverage models draw hulls, and —
    unlike raw lat/lon — it preserves local distances so planar hull and
    area computations are meaningful.
    """
    cos_lat = math.cos(math.radians(origin.lat))
    km_per_deg = math.pi * EARTH_RADIUS_KM / 180.0
    return [
        (
            (p.lon - origin.lon) * km_per_deg * cos_lat,
            (p.lat - origin.lat) * km_per_deg,
        )
        for p in points
    ]


def local_unproject_km(
    xy_km: Iterable[Tuple[float, float]], origin: LatLon
) -> List[LatLon]:
    """Inverse of :func:`local_project_km`."""
    cos_lat = math.cos(math.radians(origin.lat))
    if cos_lat == 0.0:
        raise GeoError("cannot unproject around the poles")
    km_per_deg = math.pi * EARTH_RADIUS_KM / 180.0
    return [
        LatLon(origin.lat + y / km_per_deg, origin.lon + x / (km_per_deg * cos_lat))
        for x, y in xy_km
    ]
