"""Geospatial substrate: geodesy, hex indexing, polygons, and landmass.

This package replaces the external geospatial stack the paper relies on
(Uber H3, GIS landmass data) with self-contained implementations:

* :mod:`repro.geo.geodesy` — great-circle math on the WGS-84 sphere.
* :mod:`repro.geo.hexgrid` — a hierarchical hexagonal index with
  H3-compatible resolution semantics (hotspot locations live at res 12).
* :mod:`repro.geo.polygon` — convex hulls, point-in-polygon tests and
  area integration used by the coverage models.
* :mod:`repro.geo.cities` — a synthetic city/population database that
  drives hotspot placement.
* :mod:`repro.geo.landmass` — a contiguous-US boundary model used to
  express coverage as a fraction of landmass.
"""

from repro.geo.geodesy import (
    EARTH_RADIUS_KM,
    LatLon,
    destination,
    haversine_km,
    initial_bearing_deg,
)
from repro.geo.hexgrid import HexCell, HexGrid, RESOLUTION_TABLE
from repro.geo.polygon import Polygon, convex_hull

__all__ = [
    "EARTH_RADIUS_KM",
    "LatLon",
    "haversine_km",
    "destination",
    "initial_bearing_deg",
    "HexCell",
    "HexGrid",
    "RESOLUTION_TABLE",
    "Polygon",
    "convex_hull",
]
