"""Flat-grid spatial index for radius queries over point sets.

PoC witnessing ("which hotspots are in radio range of this challengee?"),
relay analysis and the coverage rasteriser all need fast nearest/within-
radius queries over tens of thousands of hotspots. A uniform lat/lon bin
grid is ideal: O(1) insert, and a radius query touches only the bins the
query circle overlaps.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, Iterable, List, Tuple, TypeVar

from repro.errors import GeoError
from repro.geo.geodesy import LatLon, haversine_km

__all__ = ["SpatialIndex"]

T = TypeVar("T")


class SpatialIndex(Generic[T]):
    """Index arbitrary items by location; query by great-circle radius.

    Args:
        cell_deg: bin size in degrees. The default 0.5° (~55 km N-S) suits
            the 10–100 km radii of witness queries; pass a smaller value
            for dense small-radius workloads.

    >>> index = SpatialIndex()
    >>> index.insert(LatLon(32.7, -117.1), "san-diego")
    >>> index.insert(LatLon(40.7, -74.0), "nyc")
    >>> [item for _, item in index.within_radius(LatLon(32.8, -117.2), 50)]
    ['san-diego']
    """

    def __init__(self, cell_deg: float = 0.5) -> None:
        if cell_deg <= 0:
            raise GeoError(f"cell size must be positive, got {cell_deg}")
        self.cell_deg = cell_deg
        self._bins: Dict[Tuple[int, int], List[Tuple[LatLon, T]]] = {}
        self._count = 0

    def _key(self, point: LatLon) -> Tuple[int, int]:
        return (
            int(math.floor(point.lat / self.cell_deg)),
            int(math.floor(point.lon / self.cell_deg)),
        )

    def insert(self, point: LatLon, item: T) -> None:
        """Add one item at ``point``."""
        self._bins.setdefault(self._key(point), []).append((point, item))
        self._count += 1

    def insert_many(self, pairs: Iterable[Tuple[LatLon, T]]) -> None:
        """Add several ``(point, item)`` pairs."""
        for point, item in pairs:
            self.insert(point, item)

    def __len__(self) -> int:
        return self._count

    def within_radius(
        self, center: LatLon, radius_km: float
    ) -> List[Tuple[LatLon, T]]:
        """All ``(point, item)`` within ``radius_km`` of ``center``.

        Results are exact (candidates from overlapping bins are distance-
        filtered) and unordered.
        """
        if radius_km < 0:
            raise GeoError(f"radius must be non-negative, got {radius_km}")
        lat_pad = radius_km / 110.574 / self.cell_deg
        cos_lat = max(math.cos(math.radians(center.lat)), 0.05)
        lon_pad = radius_km / (111.320 * cos_lat) / self.cell_deg
        lat0 = int(math.floor(center.lat / self.cell_deg))
        lon0 = int(math.floor(center.lon / self.cell_deg))
        results: List[Tuple[LatLon, T]] = []
        for dlat in range(-int(math.ceil(lat_pad)) - 1, int(math.ceil(lat_pad)) + 2):
            for dlon in range(
                -int(math.ceil(lon_pad)) - 1, int(math.ceil(lon_pad)) + 2
            ):
                bucket = self._bins.get((lat0 + dlat, lon0 + dlon))
                if not bucket:
                    continue
                for point, item in bucket:
                    if (
                        haversine_km(center.lat, center.lon, point.lat, point.lon)
                        <= radius_km
                    ):
                        results.append((point, item))
        return results

    def count_within_radius(self, center: LatLon, radius_km: float) -> int:
        """Number of items within ``radius_km`` of ``center``."""
        return len(self.within_radius(center, radius_km))

    def nearest(self, center: LatLon, max_radius_km: float = 500.0) -> Tuple[LatLon, T]:
        """The closest item within ``max_radius_km``.

        Expands the search ring geometrically; raises :class:`GeoError`
        when nothing lies within the cap.
        """
        radius = max(self.cell_deg * 55.0, 1.0)
        while radius <= max_radius_km:
            candidates = self.within_radius(center, radius)
            if candidates:
                return min(
                    candidates,
                    key=lambda pair: haversine_km(
                        center.lat, center.lon, pair[0].lat, pair[0].lon
                    ),
                )
            radius *= 2.0
        candidates = self.within_radius(center, max_radius_km)
        if candidates:
            return min(
                candidates,
                key=lambda pair: haversine_km(
                    center.lat, center.lon, pair[0].lat, pair[0].lon
                ),
            )
        raise GeoError(f"no items within {max_radius_km} km of {center}")
