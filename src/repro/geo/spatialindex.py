"""Flat-grid spatial index for radius queries over point sets.

PoC witnessing ("which hotspots are in radio range of this challengee?"),
relay analysis and the coverage rasteriser all need fast nearest/within-
radius queries over tens of thousands of hotspots. A uniform lat/lon bin
grid is ideal: O(1) insert, and a radius query touches only the bins the
query circle overlaps.

Each bin keeps, next to its ``(point, item)`` list, a lazily built numpy
coordinate array, so a radius query concatenates the candidate bins and
runs one vectorised haversine over all candidates instead of a Python
loop — the dominant cost at witness-query sizes.

Longitude bins wrap modulo the grid width, so queries near the ±180°
antimeridian see candidates on both sides of the seam.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, Iterable, List, Set, Tuple, TypeVar

import numpy as np

from repro.errors import GeoError
from repro.geo.geodesy import LatLon, haversine_km, haversine_km_many

__all__ = ["SpatialIndex"]

T = TypeVar("T")


class SpatialIndex(Generic[T]):
    """Index arbitrary items by location; query by great-circle radius.

    Args:
        cell_deg: bin size in degrees. The default 0.5° (~55 km N-S) suits
            the 10–100 km radii of witness queries; pass a smaller value
            for dense small-radius workloads.

    >>> index = SpatialIndex()
    >>> index.insert(LatLon(32.7, -117.1), "san-diego")
    >>> index.insert(LatLon(40.7, -74.0), "nyc")
    >>> [item for _, item in index.within_radius(LatLon(32.8, -117.2), 50)]
    ['san-diego']
    """

    def __init__(self, cell_deg: float = 0.5) -> None:
        if cell_deg <= 0:
            raise GeoError(f"cell size must be positive, got {cell_deg}")
        self.cell_deg = cell_deg
        #: Number of longitude bins around the full circle; bin keys wrap
        #: modulo this so ±180° neighbours share the seam bins.
        self._n_lon_bins = max(1, int(math.ceil(360.0 / cell_deg)))
        self._bins: Dict[Tuple[int, int], List[Tuple[LatLon, T]]] = {}
        self._coords: Dict[Tuple[int, int], np.ndarray] = {}
        self._dirty: Set[Tuple[int, int]] = set()
        self._count = 0

    def _key(self, point: LatLon) -> Tuple[int, int]:
        return (
            int(math.floor(point.lat / self.cell_deg)),
            int(math.floor(point.lon / self.cell_deg)) % self._n_lon_bins,
        )

    def insert(self, point: LatLon, item: T) -> None:
        """Add one item at ``point``."""
        key = self._key(point)
        self._bins.setdefault(key, []).append((point, item))
        self._dirty.add(key)
        self._count += 1

    def insert_many(self, pairs: Iterable[Tuple[LatLon, T]]) -> None:
        """Add several ``(point, item)`` pairs."""
        for point, item in pairs:
            self.insert(point, item)

    def __len__(self) -> int:
        return self._count

    def _bin_coords(self, key: Tuple[int, int]) -> np.ndarray:
        """The (n, 2) lat/lon array for one bin, rebuilt after inserts."""
        coords = self._coords.get(key)
        if coords is None or key in self._dirty:
            bucket = self._bins[key]
            coords = np.array(
                [(p.lat, p.lon) for p, _ in bucket], dtype=float
            ).reshape(len(bucket), 2)
            self._coords[key] = coords
            self._dirty.discard(key)
        return coords

    def _candidate_keys(
        self, center: LatLon, radius_km: float
    ) -> List[Tuple[int, int]]:
        """Keys of every bin the query circle can overlap, in scan order."""
        lat_pad = radius_km / 110.574 / self.cell_deg
        cos_lat = max(math.cos(math.radians(center.lat)), 0.05)
        lon_pad = radius_km / (111.320 * cos_lat) / self.cell_deg
        lat0 = int(math.floor(center.lat / self.cell_deg))
        lon0 = int(math.floor(center.lon / self.cell_deg))
        lat_span = int(math.ceil(lat_pad)) + 1
        lon_span = int(math.ceil(lon_pad)) + 1
        n_lon = self._n_lon_bins
        # Wrap the longitude bins so seam-adjacent bins are found (a
        # query at +179.9° must see points binned at −179.9°); when the
        # padded window laps the whole circle (near the poles), visit
        # each bin once, in first-occurrence scan order.
        lon_bins = [
            (lon0 + dlon) % n_lon
            for dlon in range(-lon_span, min(lon_span + 1, n_lon - lon_span))
        ]
        bins = self._bins
        return [
            key
            for lat_bin in range(lat0 - lat_span, lat0 + lat_span + 1)
            for lon_bin in lon_bins
            if (key := (lat_bin, lon_bin)) in bins
        ]

    def within_radius_distances(
        self, center: LatLon, radius_km: float
    ) -> Tuple[List[Tuple[LatLon, T]], np.ndarray]:
        """Like :meth:`within_radius`, plus the distance of each hit.

        One vectorised haversine pass filters every candidate from the
        overlapping bins; the distances array aligns with the returned
        pairs so callers (witness selection, nearest) need not recompute.
        """
        if radius_km < 0:
            raise GeoError(f"radius must be non-negative, got {radius_km}")
        keys = self._candidate_keys(center, radius_km)
        if not keys:
            return [], np.empty(0)
        coords = np.concatenate([self._bin_coords(key) for key in keys])
        distances = haversine_km_many(
            center.lat, center.lon, coords[:, 0], coords[:, 1]
        )
        hit = np.flatnonzero(distances <= radius_km)
        # Resolve hits back to their (point, item) pairs by walking the
        # per-bin buckets with a running offset — hits are typically a
        # small fraction of the candidates, so materialising the full
        # concatenated pair list first would mostly be thrown away.
        results: List[Tuple[LatLon, T]] = []
        bins = self._bins
        bucket = bins[keys[0]]
        bin_pos = 0
        base = 0
        for i in hit.tolist():
            while i - base >= len(bucket):
                base += len(bucket)
                bin_pos += 1
                bucket = bins[keys[bin_pos]]
            results.append(bucket[i - base])
        return results, distances[hit]

    def within_radius(
        self, center: LatLon, radius_km: float
    ) -> List[Tuple[LatLon, T]]:
        """All ``(point, item)`` within ``radius_km`` of ``center``.

        Results are exact (candidates from overlapping bins are distance-
        filtered) and unordered.
        """
        results, _ = self.within_radius_distances(center, radius_km)
        return results

    def within_radius_reference(
        self, center: LatLon, radius_km: float
    ) -> List[Tuple[LatLon, T]]:
        """Scalar reference for :meth:`within_radius`: one Python-loop
        haversine per candidate (property tests, benchmark baseline)."""
        if radius_km < 0:
            raise GeoError(f"radius must be non-negative, got {radius_km}")
        results: List[Tuple[LatLon, T]] = []
        for key in self._candidate_keys(center, radius_km):
            for point, item in self._bins[key]:
                if (
                    haversine_km(center.lat, center.lon, point.lat, point.lon)
                    <= radius_km
                ):
                    results.append((point, item))
        return results

    def count_within_radius(self, center: LatLon, radius_km: float) -> int:
        """Number of items within ``radius_km`` of ``center``."""
        return len(self.within_radius(center, radius_km))

    def nearest(self, center: LatLon, max_radius_km: float = 500.0) -> Tuple[LatLon, T]:
        """The closest item within ``max_radius_km``.

        Expands the search ring geometrically; raises :class:`GeoError`
        when nothing lies within the cap.
        """
        radius = max(self.cell_deg * 55.0, 1.0)
        while radius <= max_radius_km:
            candidates, distances = self.within_radius_distances(center, radius)
            if candidates:
                return candidates[int(np.argmin(distances))]
            radius *= 2.0
        candidates, distances = self.within_radius_distances(center, max_radius_km)
        if candidates:
            return candidates[int(np.argmin(distances))]
        raise GeoError(f"no items within {max_radius_km} km of {center}")
