"""Synthetic world city database used to place hotspots.

The paper's hotspot population clusters in US metros first (Helium's 2019
US-only launch), then spreads to western Europe and beyond (§4.2). The
growth simulator needs a geography to deploy into: this module provides a
seed list of real anchor metros (including every city the paper names:
Chicago, Stonington, Denver, Los Angeles, San Diego, New York, Brooklyn,
San Francisco, Spokane, Mesa, Palma, Rome, ...) plus a procedural layer of
smaller towns so that city-count statistics (e.g. "3,958 cities with at
least one hotspot", §6.1) have room to emerge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GeoError
from repro.geo.geodesy import LatLon, destination

__all__ = ["City", "CityDatabase", "SEED_CITIES"]


@dataclass(frozen=True)
class City:
    """A populated place hotspots can be deployed in.

    ``radius_scale`` supports *density-true* scaled-down simulations: a
    1/10-scale fleet in full-size cities would be 10× sparser than the
    real network, distorting every local radio statistic (witness
    distances, RSSIs, hull sizes). Shrinking each city's footprint by
    √scale keeps local hotspot density equal to the real network's, at
    the cost of metro footprint — which is exactly the regime where
    linearly descaling coverage areas back up is valid.
    """

    name: str
    country: str
    location: LatLon
    population: int
    radius_scale: float = 1.0

    @property
    def is_us(self) -> bool:
        """True for cities in the contiguous United States."""
        return self.country == "US"

    def scatter_radius_km(self) -> float:
        """Approximate urban radius, grown sub-linearly with population."""
        return max(1.5, 0.012 * self.population ** 0.5) * self.radius_scale


# name, country, lat, lon, population — anchor metros. Populations are
# rounded metro-area figures; they only set relative sampling weights.
_SEED_ROWS: Sequence[Tuple[str, str, float, float, int]] = (
    ("New York", "US", 40.7128, -74.0060, 8_400_000),
    ("Brooklyn", "US", 40.6782, -73.9442, 2_600_000),
    ("Los Angeles", "US", 34.0522, -118.2437, 3_900_000),
    ("Chicago", "US", 41.8781, -87.6298, 2_700_000),
    ("Houston", "US", 29.7604, -95.3698, 2_300_000),
    ("Phoenix", "US", 33.4484, -112.0740, 1_600_000),
    ("Mesa", "US", 33.4152, -111.8315, 500_000),
    ("Philadelphia", "US", 39.9526, -75.1652, 1_580_000),
    ("San Antonio", "US", 29.4241, -98.4936, 1_530_000),
    ("San Diego", "US", 32.7157, -117.1611, 1_420_000),
    ("Dallas", "US", 32.7767, -96.7970, 1_340_000),
    ("San Jose", "US", 37.3382, -121.8863, 1_030_000),
    ("Austin", "US", 30.2672, -97.7431, 960_000),
    ("Jacksonville", "US", 30.3322, -81.6557, 900_000),
    ("Columbus", "US", 39.9612, -82.9988, 890_000),
    ("Fort Worth", "US", 32.7555, -97.3308, 890_000),
    ("Charlotte", "US", 35.2271, -80.8431, 870_000),
    ("San Francisco", "US", 37.7749, -122.4194, 880_000),
    ("Indianapolis", "US", 39.7684, -86.1581, 870_000),
    ("Seattle", "US", 47.6062, -122.3321, 740_000),
    ("Denver", "US", 39.7392, -104.9903, 720_000),
    ("Washington", "US", 38.9072, -77.0369, 700_000),
    ("Boston", "US", 42.3601, -71.0589, 690_000),
    ("Nashville", "US", 36.1627, -86.7816, 690_000),
    ("Detroit", "US", 42.3314, -83.0458, 670_000),
    ("Portland", "US", 45.5051, -122.6750, 650_000),
    ("Las Vegas", "US", 36.1699, -115.1398, 640_000),
    ("Memphis", "US", 35.1495, -90.0490, 650_000),
    ("Louisville", "US", 38.2527, -85.7585, 620_000),
    ("Baltimore", "US", 39.2904, -76.6122, 590_000),
    ("Milwaukee", "US", 43.0389, -87.9065, 590_000),
    ("Albuquerque", "US", 35.0844, -106.6504, 560_000),
    ("Tucson", "US", 32.2226, -110.9747, 550_000),
    ("Fresno", "US", 36.7378, -119.7871, 540_000),
    ("Sacramento", "US", 38.5816, -121.4944, 510_000),
    ("Kansas City", "US", 39.0997, -94.5786, 510_000),
    ("Atlanta", "US", 33.7490, -84.3880, 500_000),
    ("Miami", "US", 25.7617, -80.1918, 470_000),
    ("Tampa", "US", 27.9506, -82.4572, 400_000),
    ("Oakland", "US", 37.8044, -122.2712, 430_000),
    ("Minneapolis", "US", 44.9778, -93.2650, 430_000),
    ("Cleveland", "US", 41.4993, -81.6944, 380_000),
    ("New Orleans", "US", 29.9511, -90.0715, 390_000),
    ("Raleigh", "US", 35.7796, -78.6382, 470_000),
    ("Salt Lake City", "US", 40.7608, -111.8910, 200_000),
    ("Pittsburgh", "US", 40.4406, -79.9959, 300_000),
    ("Cincinnati", "US", 39.1031, -84.5120, 310_000),
    ("St. Louis", "US", 38.6270, -90.1994, 300_000),
    ("Orlando", "US", 28.5383, -81.3792, 310_000),
    ("Spokane", "US", 47.6588, -117.4260, 230_000),
    ("Buffalo", "US", 42.8864, -78.8784, 260_000),
    ("Richmond", "US", 37.5407, -77.4360, 230_000),
    ("Boise", "US", 43.6150, -116.2023, 240_000),
    ("Des Moines", "US", 41.5868, -93.6250, 215_000),
    ("Stonington", "US", 41.3359, -71.9056, 19_000),
    ("Hartford", "US", 41.7658, -72.6734, 120_000),
    ("Providence", "US", 41.8240, -71.4128, 190_000),
    ("Omaha", "US", 41.2565, -95.9345, 480_000),
    ("Oklahoma City", "US", 35.4676, -97.5164, 680_000),
    ("El Paso", "US", 31.7619, -106.4850, 680_000),
    ("Colorado Springs", "US", 38.8339, -104.8214, 480_000),
    ("Chula Vista", "US", 32.6401, -117.0842, 275_000),
    ("San Marcos", "US", 33.1434, -117.1661, 95_000),
    # Western Europe — the second wave (§4.2, §4.3).
    ("London", "GB", 51.5074, -0.1278, 8_900_000),
    ("Manchester", "GB", 53.4808, -2.2426, 550_000),
    ("Birmingham", "GB", 52.4862, -1.8904, 1_140_000),
    ("Bristol", "GB", 51.4545, -2.5879, 460_000),
    ("Berlin", "DE", 52.5200, 13.4050, 3_600_000),
    ("Munich", "DE", 48.1351, 11.5820, 1_470_000),
    ("Hamburg", "DE", 53.5511, 9.9937, 1_840_000),
    ("Frankfurt", "DE", 50.1109, 8.6821, 750_000),
    ("Paris", "FR", 48.8566, 2.3522, 2_160_000),
    ("Lyon", "FR", 45.7640, 4.8357, 510_000),
    ("Marseille", "FR", 43.2965, 5.3698, 860_000),
    ("Madrid", "ES", 40.4168, -3.7038, 3_200_000),
    ("Barcelona", "ES", 41.3851, 2.1734, 1_620_000),
    ("Palma", "ES", 39.5696, 2.6502, 410_000),
    ("Valencia", "ES", 39.4699, -0.3763, 790_000),
    ("Rome", "IT", 41.9028, 12.4964, 2_870_000),
    ("Milan", "IT", 45.4642, 9.1900, 1_350_000),
    ("Turin", "IT", 45.0703, 7.6869, 870_000),
    ("Amsterdam", "NL", 52.3676, 4.9041, 870_000),
    ("Rotterdam", "NL", 51.9244, 4.4777, 650_000),
    ("Brussels", "BE", 50.8503, 4.3517, 1_200_000),
    ("Antwerp", "BE", 51.2194, 4.4025, 520_000),
    ("Zurich", "CH", 47.3769, 8.5417, 430_000),
    ("Vienna", "AT", 48.2082, 16.3738, 1_900_000),
    ("Lisbon", "PT", 38.7223, -9.1393, 500_000),
    ("Dublin", "IE", 53.3498, -6.2603, 550_000),
    ("Stockholm", "SE", 59.3293, 18.0686, 980_000),
    ("Copenhagen", "DK", 55.6761, 12.5683, 630_000),
    ("Oslo", "NO", 59.9139, 10.7522, 700_000),
    ("Helsinki", "FI", 60.1699, 24.9384, 650_000),
    ("Warsaw", "PL", 52.2297, 21.0122, 1_790_000),
    ("Prague", "CZ", 50.0755, 14.4378, 1_300_000),
    ("Athens", "GR", 37.9838, 23.7275, 660_000),
    # Rest of world (small but present in the long tail).
    ("Toronto", "CA", 43.6532, -79.3832, 2_930_000),
    ("Vancouver", "CA", 49.2827, -123.1207, 680_000),
    ("Montreal", "CA", 45.5017, -73.5673, 1_780_000),
    ("Calgary", "CA", 51.0447, -114.0719, 1_300_000),
    ("Sydney", "AU", -33.8688, 151.2093, 5_300_000),
    ("Melbourne", "AU", -37.8136, 144.9631, 5_000_000),
    ("Auckland", "NZ", -36.8509, 174.7645, 1_650_000),
    ("Shenzhen", "CN", 22.5431, 114.0579, 12_500_000),
    ("Seoul", "KR", 37.5665, 126.9780, 9_700_000),
    ("Tokyo", "JP", 35.6762, 139.6503, 13_900_000),
    ("Singapore", "SG", 1.3521, 103.8198, 5_700_000),
    ("Sao Paulo", "BR", -23.5505, -46.6333, 12_300_000),
    ("Buenos Aires", "AR", -34.6037, -58.3816, 3_000_000),
    ("Mexico City", "MX", 19.4326, -99.1332, 9_200_000),
    ("Dubai", "AE", 25.2048, 55.2708, 3_300_000),
    ("Istanbul", "TR", 41.0082, 28.9784, 15_400_000),
)

SEED_CITIES: Tuple[City, ...] = tuple(
    City(name, country, LatLon(lat, lon), population)
    for name, country, lat, lon, population in _SEED_ROWS
)

#: Countries whose procedural towns are considered "Europe" by analyses.
EU_COUNTRIES = frozenset(
    {"GB", "DE", "FR", "ES", "IT", "NL", "BE", "CH", "AT", "PT", "IE",
     "SE", "DK", "NO", "FI", "PL", "CZ", "GR"}
)


class CityDatabase:
    """Seed metros plus procedurally generated satellite towns.

    Procedural towns are scattered around their anchor metro with a
    heavy-tailed population, giving each country a realistic settlement
    hierarchy without shipping a gazetteer.

    Args:
        rng: generator for the procedural layer (pass a dedicated stream).
        towns_per_metro: satellite towns generated around each seed metro.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        towns_per_metro: int = 28,
        radius_scale: float = 1.0,
    ) -> None:
        if towns_per_metro < 0:
            raise GeoError("towns_per_metro must be non-negative")
        if radius_scale <= 0:
            raise GeoError(f"radius_scale must be positive, got {radius_scale}")
        self.radius_scale = radius_scale
        if radius_scale == 1.0:
            self._cities: List[City] = list(SEED_CITIES)
        else:
            from dataclasses import replace

            self._cities = [
                replace(city, radius_scale=radius_scale) for city in SEED_CITIES
            ]
        self._generate_towns(rng, towns_per_metro)
        self._by_country: Dict[str, List[City]] = {}
        for city in self._cities:
            self._by_country.setdefault(city.country, []).append(city)
        self._weights_cache: Dict[Optional[str], np.ndarray] = {}
        self._pool_cache: Dict[Optional[str], List[City]] = {}

    def _generate_towns(self, rng: np.random.Generator, per_metro: int) -> None:
        for metro in SEED_CITIES:
            for i in range(per_metro):
                bearing = float(rng.uniform(0.0, 360.0))
                # Towns within ~15–150 km of the anchor metro.
                distance = float(rng.uniform(15.0, 150.0))
                population = int(2_000 * float(rng.pareto(1.3) + 1.0))
                population = min(population, metro.population // 3)
                location = destination(metro.location, bearing, distance)
                if not (-60.0 <= location.lat <= 72.0):
                    continue
                self._cities.append(
                    City(
                        name=f"{metro.name} Town {i + 1}",
                        country=metro.country,
                        location=location,
                        population=max(population, 500),
                        radius_scale=self.radius_scale,
                    )
                )

    # -- queries -----------------------------------------------------------

    @property
    def cities(self) -> List[City]:
        """All cities (seed metros plus procedural towns)."""
        return list(self._cities)

    def countries(self) -> List[str]:
        """Country codes present in the database."""
        return sorted(self._by_country)

    def in_country(self, country: str) -> List[City]:
        """Cities in ``country`` (empty list when unknown)."""
        return list(self._by_country.get(country, []))

    def us_cities(self) -> List[City]:
        """Cities in the contiguous US."""
        return self.in_country("US")

    def _pool(self, country: Optional[str]) -> List[City]:
        pool = self._pool_cache.get(country)
        if pool is None:
            pool = (
                self._cities if country is None else self.in_country(country)
            )
            self._pool_cache[country] = pool
        return pool

    def sample_city(
        self,
        rng: np.random.Generator,
        country: Optional[str] = None,
        exclude_us: bool = False,
    ) -> City:
        """Draw a city weighted by population.

        Args:
            rng: random stream for the draw.
            country: restrict to one country (overrides ``exclude_us``).
            exclude_us: restrict to non-US cities (the post-2020
                international expansion draws from this pool).
        """
        key = country if country is not None else ("non-US" if exclude_us else None)
        pool = self._pool_cache.get(key)
        if pool is None:
            if country is not None:
                pool = self.in_country(country)
            elif exclude_us:
                pool = [c for c in self._cities if not c.is_us]
            else:
                pool = self._cities
            self._pool_cache[key] = pool
        if not pool:
            raise GeoError(f"no cities available for selection key {key!r}")
        weights = self._weights_cache.get(key)
        if weights is None:
            # Sub-linear population weighting: hotspot enthusiasts are
            # everywhere, so small towns get more than their per-capita
            # share (matches the paper's 3,958 hotspot cities with only
            # 40 % single-ASN — a flatter spread than population).
            raw = np.array([c.population for c in pool], dtype=float) ** 0.7
            weights = raw / raw.sum()
            self._weights_cache[key] = weights
        index = int(rng.choice(len(pool), p=weights))
        return pool[index]

    def sample_location_in_city(
        self, rng: np.random.Generator, city: City
    ) -> LatLon:
        """Draw a deployment site within ``city``'s urban radius.

        Radial Gaussian scatter concentrates hotspots downtown with a
        realistic suburban tail.
        """
        radius = abs(float(rng.normal(0.0, city.scatter_radius_km() / 2.0)))
        radius = min(radius, 3.0 * city.scatter_radius_km())
        bearing = float(rng.uniform(0.0, 360.0))
        return destination(city.location, bearing, radius)
