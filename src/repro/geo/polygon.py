"""Polygons, convex hulls and area integration for the coverage models.

The paper's coverage pipeline (§8.2.1) draws convex hulls around PoC
challengees and their witnesses, unions them with per-hotspot disks, and
expresses the result as a percentage of the contiguous-US landmass. The
primitives live here; the model logic lives in :mod:`repro.core.coverage`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import GeoError
from repro.geo.geodesy import EARTH_RADIUS_KM, LatLon, local_project_km

__all__ = ["Polygon", "convex_hull", "disk_area_km2"]


@dataclass(frozen=True)
class Polygon:
    """A simple (non-self-intersecting) polygon on the sphere.

    Vertices are stored in order; the ring is implicitly closed. Contains
    tests use the ray-casting rule in lat/lon space, which is correct for
    the mid-latitude, non-pole-crossing, non-antimeridian-crossing shapes
    this library produces (US landmass, witness hulls).
    """

    vertices: Tuple[LatLon, ...]
    _bbox: Tuple[float, float, float, float] = field(
        init=False, repr=False, compare=False, default=(0.0, 0.0, 0.0, 0.0)
    )

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise GeoError(
                f"a polygon needs at least 3 vertices, got {len(self.vertices)}"
            )
        lats = [v.lat for v in self.vertices]
        lons = [v.lon for v in self.vertices]
        object.__setattr__(
            self, "_bbox", (min(lats), min(lons), max(lats), max(lons))
        )

    @classmethod
    def from_points(cls, points: Iterable[LatLon]) -> "Polygon":
        """Build a polygon from an iterable of vertices."""
        return cls(tuple(points))

    @property
    def bbox(self) -> Tuple[float, float, float, float]:
        """Bounding box as ``(south, west, north, east)``."""
        return self._bbox

    def contains(self, point: LatLon) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        south, west, north, east = self._bbox
        if not (south <= point.lat <= north and west <= point.lon <= east):
            return False
        inside = False
        n = len(self.vertices)
        x, y = point.lon, point.lat
        for i in range(n):
            x1, y1 = self.vertices[i].lon, self.vertices[i].lat
            x2, y2 = self.vertices[(i + 1) % n].lon, self.vertices[(i + 1) % n].lat
            if (y1 > y) != (y2 > y):
                x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
                if x < x_cross:
                    inside = not inside
                elif x == x_cross:
                    return True
        return inside

    def contains_many(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over parallel lat/lon arrays.

        Applies the same ray-casting rule (boundary counts as inside) to
        every point in one pass over the edges, so the per-point cost is
        a handful of numpy operations instead of a Python loop over the
        ring.
        """
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        south, west, north, east = self._bbox
        in_bbox = (
            (south <= lats) & (lats <= north) & (west <= lons) & (lons <= east)
        )
        inside = np.zeros(lats.shape, dtype=bool)
        if not in_bbox.any():
            return inside
        x, y = lons, lats
        on_edge = np.zeros(lats.shape, dtype=bool)
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i].lon, self.vertices[i].lat
            x2, y2 = self.vertices[(i + 1) % n].lon, self.vertices[(i + 1) % n].lat
            if y1 == y2:
                continue  # horizontal edge never satisfies the crossing rule
            crosses = (y1 > y) != (y2 > y)
            if not crosses.any():
                continue
            x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
            inside ^= crosses & (x < x_cross)
            on_edge |= crosses & (x == x_cross)
        return (inside | on_edge) & in_bbox

    def area_km2(self) -> float:
        """Spherical polygon area (Chamberlain–Duquette approximation).

        Accurate to small fractions of a percent for continent-scale
        polygons away from the poles, which covers every shape the
        coverage models produce.
        """
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            v1 = self.vertices[i]
            v2 = self.vertices[(i + 1) % n]
            lam1, lam2 = math.radians(v1.lon), math.radians(v2.lon)
            phi1, phi2 = math.radians(v1.lat), math.radians(v2.lat)
            total += (lam2 - lam1) * (2.0 + math.sin(phi1) + math.sin(phi2))
        return abs(total) * EARTH_RADIUS_KM * EARTH_RADIUS_KM / 2.0

    def centroid(self) -> LatLon:
        """Arithmetic mean of the vertices (adequate for compact shapes)."""
        lat = sum(v.lat for v in self.vertices) / len(self.vertices)
        lon = sum(v.lon for v in self.vertices) / len(self.vertices)
        return LatLon(lat, lon)

    def max_radius_km(self) -> float:
        """Distance from the centroid to the farthest vertex."""
        center = self.centroid()
        return max(center.distance_km(v) for v in self.vertices)


def convex_hull(points: Sequence[LatLon]) -> Polygon:
    """Convex hull of ``points`` via Andrew's monotone chain.

    The hull is computed on a local tangent-plane projection centred at
    the points' centroid, so it is metrically meaningful at the tens-of-
    kilometre scales of witness geometry. Degenerate inputs (fewer than
    three distinct points, or all collinear) raise :class:`GeoError` —
    the coverage models treat those cases separately (a lone challengee
    has no hull, only its disk).
    """
    distinct = sorted({(p.lat, p.lon) for p in points})
    if len(distinct) < 3:
        raise GeoError(
            f"convex hull needs at least 3 distinct points, got {len(distinct)}"
        )
    origin = LatLon(
        sum(lat for lat, _ in distinct) / len(distinct),
        sum(lon for _, lon in distinct) / len(distinct),
    )
    pts = [LatLon(lat, lon) for lat, lon in distinct]
    projected = local_project_km(pts, origin)
    order = sorted(range(len(projected)), key=lambda i: projected[i])

    def cross(o: Tuple[float, float], a: Tuple[float, float], b: Tuple[float, float]) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: List[int] = []
    for idx in order:
        while (
            len(lower) >= 2
            and cross(projected[lower[-2]], projected[lower[-1]], projected[idx]) <= 0
        ):
            lower.pop()
        lower.append(idx)
    upper: List[int] = []
    for idx in reversed(order):
        while (
            len(upper) >= 2
            and cross(projected[upper[-2]], projected[upper[-1]], projected[idx]) <= 0
        ):
            upper.pop()
        upper.append(idx)
    hull_indices = lower[:-1] + upper[:-1]
    if len(hull_indices) < 3:
        raise GeoError("points are collinear; convex hull is degenerate")
    return Polygon(tuple(pts[i] for i in hull_indices))


def disk_area_km2(radius_km: float) -> float:
    """Area of a spherical cap of great-circle radius ``radius_km``.

    For the sub-100 km radii in the coverage models this differs from the
    planar πr² by under 0.01 %, but using the exact cap keeps the area
    accounting consistent with the spherical polygon areas.
    """
    if radius_km < 0:
        raise GeoError(f"radius must be non-negative, got {radius_km}")
    angular = radius_km / EARTH_RADIUS_KM
    return (
        2.0
        * math.pi
        * EARTH_RADIUS_KM
        * EARTH_RADIUS_KM
        * (1.0 - math.cos(angular))
    )
