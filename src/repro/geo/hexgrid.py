"""Hierarchical hexagonal geospatial index with H3-compatible semantics.

The Helium blockchain stores hotspot locations as res-12 cells of Uber's H3
index (average edge 9.4 m, average area 3.1 m²; paper §4.1). This module
provides a self-contained substitute with the properties the paper relies
on:

* 16 resolutions (0–15) whose average edge lengths match H3's aperture-7
  ladder (each resolution shrinks edges by √7).
* ``encode``/``decode`` that quantise a lat/lon to the containing cell and
  return the cell centre — the paper "assume[s] all hotspots are located at
  the centre of their hex".
* Parent/child traversal, neighbours and k-rings.
* A *pentagon distortion* flag: H3 places 12 pentagons per resolution at
  icosahedron vertices, and PoC witness validity rejects "pentagonally
  distorted" geometry (§8.2.1). We flag cells near the same 12 vertices.

Geometry is computed on a pointy-top axial hex lattice over a global
equirectangular projection. Like real H3 cells (min 1.9 m² / max 3.7 m² at
res 12), our cells vary in ground-truth size with latitude; the paper notes
this variation is irrelevant at the hundreds-of-metres scales analysed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Tuple

from repro.errors import GeoError
from repro.geo.geodesy import EARTH_RADIUS_KM, LatLon, validate_lat_lon

__all__ = [
    "MIN_RESOLUTION",
    "MAX_RESOLUTION",
    "HOTSPOT_RESOLUTION",
    "RESOLUTION_TABLE",
    "ResolutionInfo",
    "HexCell",
    "HexGrid",
    "encode_cell_reference",
    "pentagon_distorted_reference",
]

MIN_RESOLUTION: int = 0
MAX_RESOLUTION: int = 15

#: Hotspot locations are asserted at res 12 (paper §4.1).
HOTSPOT_RESOLUTION: int = 12

#: H3's average res-0 edge length in km; finer levels divide by √7 (aperture 7).
_EDGE_R0_KM: float = 1107.712591

#: km per degree of latitude on the sphere (also of longitude at the equator).
_KM_PER_DEG: float = math.pi * EARTH_RADIUS_KM / 180.0

#: Icosahedron vertex latitudes/longitudes (the 12 pentagon sites in H3's
#: layout, to within the fidelity our distortion flag needs).
_ICOSA_VERTICES: Tuple[Tuple[float, float], ...] = (
    (90.0, 0.0),
    (-90.0, 0.0),
    (26.57, -180.0),
    (26.57, -108.0),
    (26.57, -36.0),
    (26.57, 36.0),
    (26.57, 108.0),
    (-26.57, -144.0),
    (-26.57, -72.0),
    (-26.57, 0.0),
    (-26.57, 72.0),
    (-26.57, 144.0),
)


@dataclass(frozen=True)
class ResolutionInfo:
    """Average geometric properties of a grid resolution."""

    resolution: int
    edge_km: float
    area_km2: float

    @property
    def edge_m(self) -> float:
        """Average edge length in metres."""
        return self.edge_km * 1000.0

    @property
    def area_m2(self) -> float:
        """Average cell area in square metres."""
        return self.area_km2 * 1_000_000.0


def _build_resolution_table() -> Dict[int, ResolutionInfo]:
    table = {}
    for res in range(MIN_RESOLUTION, MAX_RESOLUTION + 1):
        edge = _EDGE_R0_KM / (math.sqrt(7.0) ** res)
        # Regular hexagon area = (3√3 / 2) · edge².
        area = 1.5 * math.sqrt(3.0) * edge * edge
        table[res] = ResolutionInfo(res, edge, area)
    return table


#: Average edge length and area per resolution; res 12 edge ≈ 9.4 m.
RESOLUTION_TABLE: Dict[int, ResolutionInfo] = _build_resolution_table()

#: Axial-coordinate offsets of the six hex neighbours (pointy-top).
_AXIAL_DIRECTIONS: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, 0),
    (-1, 1),
    (0, 1),
)


def _check_resolution(resolution: int) -> None:
    if not (MIN_RESOLUTION <= resolution <= MAX_RESOLUTION):
        raise GeoError(
            f"resolution must be in [{MIN_RESOLUTION}, {MAX_RESOLUTION}], "
            f"got {resolution}"
        )


def _cube_round(qf: float, rf: float) -> Tuple[int, int]:
    """Round fractional axial coordinates to the nearest hex centre."""
    sf = -qf - rf
    q = round(qf)
    r = round(rf)
    s = round(sf)
    dq = abs(q - qf)
    dr = abs(r - rf)
    ds = abs(s - sf)
    if dq > dr and dq > ds:
        q = -r - s
    elif dr > ds:
        r = -q - s
    return int(q), int(r)


@dataclass(frozen=True)
class HexCell:
    """One cell of the hierarchical hex grid.

    Instances are value objects: equal cells compare and hash equal, so
    they can key dictionaries exactly as H3 indexes key the Helium ledger.
    """

    resolution: int
    q: int
    r: int

    def __post_init__(self) -> None:
        _check_resolution(self.resolution)

    # -- geometry ---------------------------------------------------------

    @property
    def edge_km(self) -> float:
        """Average edge length of cells at this resolution."""
        return RESOLUTION_TABLE[self.resolution].edge_km

    def center(self) -> LatLon:
        """Cell centre as a lat/lon point (clamped to valid range)."""
        size = self.edge_km
        x_km = size * math.sqrt(3.0) * (self.q + self.r / 2.0)
        y_km = size * 1.5 * self.r
        lat = max(-90.0, min(90.0, y_km / _KM_PER_DEG))
        lon = x_km / _KM_PER_DEG
        lon = (lon + 540.0) % 360.0 - 180.0
        return LatLon(lat, lon)

    def boundary(self) -> List[LatLon]:
        """The six cell vertices, counter-clockwise."""
        size = self.edge_km
        cx = size * math.sqrt(3.0) * (self.q + self.r / 2.0)
        cy = size * 1.5 * self.r
        points = []
        for i in range(6):
            angle = math.radians(60.0 * i - 30.0)
            x_km = cx + size * math.cos(angle)
            y_km = cy + size * math.sin(angle)
            lat = max(-90.0, min(90.0, y_km / _KM_PER_DEG))
            lon = (x_km / _KM_PER_DEG + 540.0) % 360.0 - 180.0
            points.append(LatLon(lat, lon))
        return points

    # -- identity ---------------------------------------------------------

    @property
    def token(self) -> str:
        """Compact printable identifier, e.g. ``'c-12-8819-22041'``."""
        return f"c-{self.resolution}-{self.q}-{self.r}"

    @classmethod
    def from_token(cls, token: str) -> "HexCell":
        """Parse a token produced by :attr:`token`."""
        parts = token.split("-")
        # A leading "c" plus three signed integers; minus signs introduce
        # empty strings when split, so re-join and parse defensively.
        if not token.startswith("c-"):
            raise GeoError(f"not a hex cell token: {token!r}")
        body = token[2:]
        try:
            res_str, q_str, r_str = _split_signed(body)
            return cls(int(res_str), int(q_str), int(r_str))
        except ValueError as exc:
            raise GeoError(f"malformed hex cell token: {token!r}") from exc

    # -- topology ---------------------------------------------------------

    def neighbors(self) -> List["HexCell"]:
        """The six adjacent cells at the same resolution."""
        return [
            HexCell(self.resolution, self.q + dq, self.r + dr)
            for dq, dr in _AXIAL_DIRECTIONS
        ]

    def k_ring(self, k: int) -> List["HexCell"]:
        """All cells within grid distance ``k`` (inclusive of self)."""
        if k < 0:
            raise GeoError(f"k must be non-negative, got {k}")
        cells = []
        for dq in range(-k, k + 1):
            lo = max(-k, -dq - k)
            hi = min(k, -dq + k)
            for dr in range(lo, hi + 1):
                cells.append(HexCell(self.resolution, self.q + dq, self.r + dr))
        return cells

    def grid_distance(self, other: "HexCell") -> int:
        """Hex-lattice distance (number of cell steps) to ``other``."""
        if other.resolution != self.resolution:
            raise GeoError(
                "grid distance requires equal resolutions: "
                f"{self.resolution} vs {other.resolution}"
            )
        dq = self.q - other.q
        dr = self.r - other.r
        return (abs(dq) + abs(dr) + abs(dq + dr)) // 2

    # -- hierarchy --------------------------------------------------------

    def parent(self, resolution: int | None = None) -> "HexCell":
        """The containing cell at a coarser resolution (default: one up)."""
        target = self.resolution - 1 if resolution is None else resolution
        _check_resolution(target)
        if target > self.resolution:
            raise GeoError(
                f"parent resolution {target} is finer than cell "
                f"resolution {self.resolution}"
            )
        cell = self
        while cell.resolution > target:
            cell = HexGrid.encode_cell(cell.center(), cell.resolution - 1)
        return cell

    def children(self, resolution: int | None = None) -> List["HexCell"]:
        """The cells one resolution finer whose parent is this cell.

        Like H3's aperture-7 hierarchy this returns approximately seven
        cells per step.
        """
        target = self.resolution + 1 if resolution is None else resolution
        _check_resolution(target)
        if target < self.resolution:
            raise GeoError(
                f"child resolution {target} is coarser than cell "
                f"resolution {self.resolution}"
            )
        cells = [self]
        for _ in range(target - self.resolution):
            next_cells = []
            seen = set()
            for cell in cells:
                fine_res = cell.resolution + 1
                seed = HexGrid.encode_cell(cell.center(), fine_res)
                for candidate in seed.k_ring(2):
                    if candidate in seen:
                        continue
                    if candidate.parent(cell.resolution) == cell:
                        seen.add(candidate)
                        next_cells.append(candidate)
            cells = next_cells
        return cells

    # -- H3 artifact emulation ---------------------------------------------

    def is_pentagon_distorted(self) -> bool:
        """True if the cell sits near an icosahedron vertex.

        H3 places 12 pentagons per resolution at icosahedron vertices;
        distance computations across them are distorted, and PoC witness
        validation rejects "pentagonally distorted" witnesses (§8.2.1).

        Cells are value objects, so the answer is memoised per cell —
        witness validation asks this for the same asserted cells on
        every challenge.
        """
        return _pentagon_distorted(self)


def pentagon_distorted_reference(cell: HexCell) -> bool:
    """Uncached twin of :meth:`HexCell.is_pentagon_distorted`.

    Recomputes the icosahedron-vertex proximity test every call, exactly
    as the pre-memoisation implementation did — kept so the scalar
    benchmark baselines pay the original cost and the property tests can
    pin the memo to the ground truth.
    """
    center = cell.center()
    threshold_km = max(5.0 * cell.edge_km, 1.0)
    for lat, lon in _ICOSA_VERTICES:
        if center.distance_km(LatLon(lat, lon)) <= threshold_km:
            return True
    return False


_pentagon_distorted = lru_cache(maxsize=65536)(pentagon_distorted_reference)


def encode_cell_reference(
    point: LatLon, resolution: int = HOTSPOT_RESOLUTION
) -> HexCell:
    """Uncached twin of :meth:`HexGrid.encode_cell`.

    Runs the axial-rounding math on every call, as the pre-memoisation
    implementation did. :class:`LatLon` and :class:`HexCell` are both
    frozen value objects, so the public path can memoise point→cell —
    the PoC engine encodes the same asserted locations on every
    challenge — while this twin keeps the original cost for the scalar
    benchmark baselines and pins the memo in the property tests.
    """
    _check_resolution(resolution)
    validate_lat_lon(point.lat, point.lon)
    size = RESOLUTION_TABLE[resolution].edge_km
    x_km = point.lon * _KM_PER_DEG
    y_km = point.lat * _KM_PER_DEG
    qf = (math.sqrt(3.0) / 3.0 * x_km - y_km / 3.0) / size
    rf = (2.0 / 3.0 * y_km) / size
    q, r = _cube_round(qf, rf)
    return HexCell(resolution, q, r)


_encode_cell = lru_cache(maxsize=1 << 17)(encode_cell_reference)


def _split_signed(body: str) -> Tuple[str, str, str]:
    """Split ``'12--3-45'``-style bodies into (res, q, r) handling minus signs."""
    fields: List[str] = []
    i = 0
    for _ in range(2):
        j = body.index("-", i + 1 if body[i] == "-" else i)
        fields.append(body[i:j])
        i = j + 1
    fields.append(body[i:])
    if len(fields) != 3 or not all(fields):
        raise ValueError(f"expected three fields in {body!r}")
    return fields[0], fields[1], fields[2]


class HexGrid:
    """Stateless facade over the hex index.

    The common round trip — quantise a GPS fix to the cell Helium stores,
    then recover the centre used for analysis:

    >>> cell = HexGrid.encode_cell(LatLon(32.8801, -117.2340), 12)
    >>> center = cell.center()
    >>> LatLon(32.8801, -117.2340).distance_km(center) < 0.02
    True
    """

    @staticmethod
    def encode_cell(point: LatLon, resolution: int = HOTSPOT_RESOLUTION) -> HexCell:
        """The cell containing ``point`` at ``resolution`` (memoised)."""
        return _encode_cell(point, resolution)

    @staticmethod
    def decode_center(cell: HexCell) -> LatLon:
        """Centre of ``cell`` (alias of :meth:`HexCell.center`)."""
        return cell.center()

    @staticmethod
    def quantize(point: LatLon, resolution: int = HOTSPOT_RESOLUTION) -> LatLon:
        """Snap ``point`` to the centre of its containing cell.

        This is exactly what the paper does to every hotspot location.
        """
        return HexGrid.encode_cell(point, resolution).center()

    @staticmethod
    def cells_covering_bbox(
        south: float, west: float, north: float, east: float, resolution: int
    ) -> Iterator[HexCell]:
        """Yield the cells whose centres fall inside a lat/lon bounding box.

        Used by the coverage rasteriser; iterates lazily because national-
        scale boxes at fine resolutions contain millions of cells.
        """
        _check_resolution(resolution)
        if north < south:
            raise GeoError(f"north ({north}) < south ({south})")
        if east < west:
            raise GeoError(f"east ({east}) < west ({west})")
        size = RESOLUTION_TABLE[resolution].edge_km
        y_min = south * _KM_PER_DEG
        y_max = north * _KM_PER_DEG
        r_min = int(math.floor((y_min / (1.5 * size)))) - 1
        r_max = int(math.ceil((y_max / (1.5 * size)))) + 1
        x_min = west * _KM_PER_DEG
        x_max = east * _KM_PER_DEG
        for r in range(r_min, r_max + 1):
            q_min = int(math.floor(x_min / (math.sqrt(3.0) * size) - r / 2.0)) - 1
            q_max = int(math.ceil(x_max / (math.sqrt(3.0) * size) - r / 2.0)) + 1
            for q in range(q_min, q_max + 1):
                cell = HexCell(resolution, q, r)
                center = cell.center()
                if south <= center.lat <= north and west <= center.lon <= east:
                    yield cell
