"""Run every experiment and print the paper-vs-measured comparison.

Usage::

    python -m repro.experiments                 # paper scenario, all
    python -m repro.experiments fig12 fig13     # a subset
    python -m repro.experiments --scenario small
    python -m repro.experiments --scenario my-whatif.json   # user spec
    python -m repro.experiments --list-scenarios            # registry
    python -m repro.experiments --jobs 4        # process-pool farm
    python -m repro.experiments --profile       # timings JSON
    python -m repro.experiments sweep --seeds 2021..2024 --jobs 4
    python -m repro.experiments --trace run.jsonl    # JSON-lines trace
    python -m repro.experiments --checkpoint-every 30   # resumable build
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import obs
from repro.experiments.context import get_result
from repro.experiments.registry import EXPERIMENTS, format_report, run_experiment


def _parse_seeds(spec: str):
    """``A..B`` (inclusive) or a comma list -> [int, ...]."""
    if ".." in spec:
        low, _, high = spec.partition("..")
        start, stop = int(low), int(high)
        if stop < start:
            raise argparse.ArgumentTypeError(f"empty seed range {spec!r}")
        return list(range(start, stop + 1))
    return [int(part) for part in spec.split(",") if part.strip()]


def _sweep_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments sweep",
        description="Cross-seed robustness sweep (mean/stddev/CI per row).",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument(
        "--seeds", type=_parse_seeds, required=True, metavar="A..B|A,B,C",
        help="seed range (inclusive) or comma list",
    )
    parser.add_argument(
        "--scenario", default="paper", metavar="NAME|FILE",
        help="registry name (see --list-scenarios) or a path to a "
        ".json/.toml scenario spec file",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="save resumable day-level checkpoints every N days while "
        "cold-building each seed's scenario (resume is bit-identical)",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the robustness report JSON here (default: stdout table only)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="append JSON-lines trace events here (workers join via "
        "the exported REPRO_TRACE environment variable)",
    )
    args = parser.parse_args(argv)
    if args.trace:
        obs.configure_trace(args.trace)

    ids = args.ids or EXPERIMENTS.ids()
    unknown = [i for i in ids if i not in EXPERIMENTS.ids()]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")

    from repro.errors import ScenarioSpecError
    from repro.parallel import format_sweep, run_sweep

    started = time.time()
    try:
        sweep = run_sweep(
            args.scenario, args.seeds, ids, jobs=args.jobs,
            checkpoint_every=args.checkpoint_every,
        )
    except ScenarioSpecError as exc:
        parser.error(str(exc))
    print(format_sweep(sweep))
    print(
        f"\nswept {len(args.seeds)} seeds x {len(ids)} experiments "
        f"in {time.time() - started:.1f}s (jobs={args.jobs})"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(sweep, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    obs.trace_event("metrics.snapshot", metrics=obs.snapshot())
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument(
        "--list", action="store_true",
        help="list registered figures/tables with descriptions and exit",
    )
    parser.add_argument(
        "--list-scenarios", action="store_true",
        help="list registry scenarios with their resolved digests and exit",
    )
    parser.add_argument(
        "--scenario", default="paper", metavar="NAME|FILE",
        help="registry name (see --list-scenarios) or a path to a "
        ".json/.toml scenario spec file",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's own seed (default: keep it)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run experiments in N worker processes (workers rehydrate "
        "the scenario from the persistent cache; output is identical "
        "to the serial path)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="while cold-building the scenario, save a resumable "
        "day-level checkpoint every N days next to the cache entry; "
        "an interrupted build resumes from it bit-identically",
    )
    parser.add_argument(
        "--shard-workers", type=int, default=0, metavar="N",
        help="intra-run parallelism: shard a cold scenario build's day "
        "loop over N worker processes, and fan decomposable "
        "experiments (s8_1's four stationary trials) out over the "
        "same pool; all output is byte-identical to serial",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="write day-loop phase timings (from the phase scheduler) "
        "and per-experiment wall/CPU as profile.json (next to "
        "--export output when given)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="append JSON-lines trace events (engine phases, cache, "
        "workers) here; workers join via the exported REPRO_TRACE "
        "environment variable",
    )
    parser.add_argument(
        "--export", metavar="DIR", default=None,
        help="also write rows/series as JSON+CSV under DIR",
    )
    parser.add_argument(
        "--figures", metavar="DIR", default=None,
        help="also render the figures as SVG under DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        descriptions = EXPERIMENTS.descriptions()
        width = max(len(i) for i in descriptions)
        for experiment_id, description in descriptions.items():
            print(f"{experiment_id:<{width}}  {description}")
        return 0

    if args.list_scenarios:
        from repro.scenarios import format_listing

        print(format_listing())
        return 0

    ids = args.ids or EXPERIMENTS.ids()
    unknown = [i for i in ids if i not in EXPERIMENTS.ids()]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")

    if args.trace:
        obs.configure_trace(args.trace)

    from repro.errors import ScenarioSpecError
    from repro.scenarios import resolve

    try:
        resolved = resolve(args.scenario, seed=args.seed)
    except ScenarioSpecError as exc:
        parser.error(str(exc))

    print(f"building {resolved.label} scenario "
          f"(seed {resolved.config.seed}, digest {resolved.digest[:12]})...")
    started = time.time()
    result = get_result(
        resolved, checkpoint_every=args.checkpoint_every,
        shard_workers=args.shard_workers,
    )
    scenario_ready_s = time.time() - started
    print(f"scenario ready in {scenario_ready_s:.1f}s\n")

    experiments_started = time.time()
    timings = {}
    try:
        if args.jobs > 1:
            from repro.parallel import run_farm

            outcomes = run_farm(
                resolved, None, ids, jobs=args.jobs,
                checkpoint_every=args.checkpoint_every,
                shard_workers=args.shard_workers,
            )
            reports = [outcome.report for outcome in outcomes]
            timings = {
                outcome.experiment_id: {
                    "wall_s": outcome.wall_s, "cpu_s": outcome.cpu_s,
                }
                for outcome in outcomes
            }
        else:
            if args.shard_workers > 0:
                # Persistent pool for experiments that decompose into
                # independent units (s8_1); a no-op without a cache
                # entry to rehydrate workers from.
                from repro.experiments.context import ensure_snapshot
                from repro.parallel import shards

                entry = ensure_snapshot(resolved)
                shards.configure_experiment_pool(
                    args.shard_workers,
                    None if entry is None else str(entry),
                )
            reports = []
            for experiment_id in ids:
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                reports.append(run_experiment(experiment_id, result))
                timings[experiment_id] = {
                    "wall_s": time.perf_counter() - wall0,
                    "cpu_s": time.process_time() - cpu0,
                }
    finally:
        from repro.parallel import shards

        shards.shutdown_experiment_pool()
    experiments_wall_s = time.time() - experiments_started

    for report in reports:
        print(format_report(report))
        print()
    if args.export:
        from repro.experiments.export import export_all

        written = export_all(result, args.export, experiment_ids=ids,
                             reports=reports)
        print(f"exported {len(written)} files to {args.export}")
    if args.figures:
        from repro.experiments.figures import render_figures

        figure_ids = None if not args.ids else args.ids
        rendered = render_figures(result, args.figures, figure_ids)
        print(f"rendered {len(rendered)} figures to {args.figures}")
    if args.profile:
        from pathlib import Path

        profile = {
            "scenario": resolved.label,
            "scenario_digest": resolved.digest,
            "seed": resolved.config.seed,
            "jobs": args.jobs,
            "scenario_ready_s": scenario_ready_s,
            # Per-phase day-loop seconds; null when the scenario came
            # from the cache (no day loop ran in this process).
            "day_loop_phases": result.day_loop_timings,
            "experiments": timings,
            "experiments_wall_s": experiments_wall_s,
            # High-water-mark RSS: this process, plus the max over
            # reaped shard/farm workers when any ran.
            "memory": {
                "peak_rss_bytes": obs.peak_rss_bytes(children=True),
            },
        }
        out_dir = Path(args.export) if args.export else Path(".")
        out_dir.mkdir(parents=True, exist_ok=True)
        profile_path = out_dir / "profile.json"
        with open(profile_path, "w", encoding="utf-8") as handle:
            json.dump(profile, handle, indent=2)
            handle.write("\n")
        print(f"wrote {profile_path}")
    obs.trace_event("metrics.snapshot", metrics=obs.snapshot())
    return 0


if __name__ == "__main__":
    sys.exit(main())
