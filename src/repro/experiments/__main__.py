"""Run every experiment and print the paper-vs-measured comparison.

Usage::

    python -m repro.experiments                 # paper scenario, all
    python -m repro.experiments fig12 fig13     # a subset
    python -m repro.experiments --scenario small
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.context import get_result
from repro.experiments.registry import EXPERIMENTS, format_report, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument(
        "--list", action="store_true",
        help="list registered figures/tables with descriptions and exit",
    )
    parser.add_argument("--scenario", default="paper", choices=["paper", "small"])
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument(
        "--export", metavar="DIR", default=None,
        help="also write rows/series as JSON+CSV under DIR",
    )
    parser.add_argument(
        "--figures", metavar="DIR", default=None,
        help="also render the figures as SVG under DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        descriptions = EXPERIMENTS.descriptions()
        width = max(len(i) for i in descriptions)
        for experiment_id, description in descriptions.items():
            print(f"{experiment_id:<{width}}  {description}")
        return 0

    ids = args.ids or EXPERIMENTS.ids()
    unknown = [i for i in ids if i not in EXPERIMENTS.ids()]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")

    print(f"building {args.scenario} scenario (seed {args.seed})...")
    started = time.time()
    result = get_result(args.scenario, args.seed)
    print(f"scenario ready in {time.time() - started:.1f}s\n")

    for experiment_id in ids:
        report = run_experiment(experiment_id, result)
        print(format_report(report))
        print()
    if args.export:
        from repro.experiments.export import export_all

        written = export_all(result, args.export, experiment_ids=ids)
        print(f"exported {len(written)} files to {args.export}")
    if args.figures:
        from repro.experiments.figures import render_figures

        figure_ids = None if not args.ids else args.ids
        rendered = render_figures(result, args.figures, figure_ids)
        print(f"rendered {len(rendered)} figures to {args.figures}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
