"""Persistent scenario snapshots: save/load a full SimulationResult.

Building the paper scenario takes tens of seconds; analyses, benchmarks
and examples all want the same result. This module serialises everything
a :class:`~repro.simulation.engine.SimulationResult` carries — chain,
world ground truth, peerbook, oracle prices, growth log — so a second
process can reload it in a few seconds instead of re-simulating.

Design notes:

* The chain is stored as the standard JSONL dump
  (:func:`repro.chain.serialize.dump_chain`) and reloaded with
  ``validate=False``: transactions still replay through the ledger (the
  folded state is identical) but parent hashes are trusted from the
  dump, which is what makes warm loads fast.
* The world is *reconstructed*, not pickled: cities and the AS universe
  are deterministic functions of the scenario seed (named RNG streams),
  so the snapshot stores only per-hotspot/owner facts and resolves
  cities by name and ISPs by ASN against the regenerated universe.
* Gossip cliques are shared objects in the live world; the snapshot
  stores one member set per ``clique_id`` and restores one shared
  instance per clique.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.chain.serialize import dump_chain, load_chain
from repro.chain.varmap import ChainVars
from repro.economics.oracle import PriceOracle
from repro.errors import SimulationError
from repro.geo.geodesy import LatLon
from repro.p2p.backhaul import BackhaulAssignment
from repro.p2p.peerbook import Peerbook, PeerEntry
from repro.poc.cheats import CheatStrategy, GossipClique, RssiLiar, SilentMover
from repro.radio.propagation import Environment
from repro.rng import RngHub
from repro.simulation.engine import GrowthLogRow, SimulationResult
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.world import SimHotspot, SimOwner, World

__all__ = [
    "SCHEMA_VERSION",
    "ETL_DB_FILE",
    "config_digest",
    "result_digest",
    "save_result",
    "load_result",
    "hotspot_payload",
    "hotspot_from_payload",
    "owner_payload",
    "owner_from_payload",
]

#: Bump when the snapshot layout (or anything it implicitly depends on,
#: like reconstruction semantics) changes incompatibly. Old cache
#: entries are simply ignored.
#:
#: v2: the engine now iterates gossip-clique members in sorted order, so
#: scenario bytes no longer depend on the per-process ``PYTHONHASHSEED``;
#: entries built by the order-sensitive engine must miss.
SCHEMA_VERSION = 2

_CHAIN_FILE = "chain.jsonl"
_SNAPSHOT_FILE = "snapshot.json"
_META_FILE = "meta.json"

#: The DeWi-style ETL replica materialised next to the snapshot files
#: by :func:`repro.experiments.context.get_store`. Versioned by its own
#: schema stamp inside the database (``etl_meta``) and self-healed the
#: same way snapshot entries are: a corrupt or schema-stale db is
#: silently discarded and re-ingested from the cached chain.
ETL_DB_FILE = "etl.db"

#: ScenarioConfig fields declared as tuples (JSON round-trips them as
#: lists, so they need re-tupling on load).
_TUPLE_FIELDS = ("mining_pools", "commercial_fleets", "gossip_cliques")


def config_digest(config: ScenarioConfig) -> str:
    """Stable hash of every scenario knob (cache-key ingredient)."""
    import hashlib

    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_digest(result: SimulationResult) -> str:
    """SHA-256 over the canonical snapshot bytes (chain + world state).

    Two results digest equal iff :func:`save_result` would write the
    same chain and snapshot files — the repo's working definition of
    "bit-identical scenarios" (meta.json is excluded: it restates the
    schema version and config digest, which the cache key already pins).
    """
    import hashlib
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        save_result(result, tmp)
        digest = hashlib.sha256()
        for name in (_CHAIN_FILE, _SNAPSHOT_FILE):
            # Stream: a scale-tier chain file is hundreds of MB, and
            # one read_bytes() of it would dwarf the day loop's peak.
            with open(Path(tmp) / name, "rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 20), b""):
                    digest.update(chunk)
    return digest.hexdigest()


def _config_to_dict(config: ScenarioConfig) -> Dict[str, Any]:
    return dataclasses.asdict(config)


def _config_from_dict(payload: Dict[str, Any]) -> ScenarioConfig:
    fields = dict(payload)
    for name in _TUPLE_FIELDS:
        if name in fields:
            fields[name] = tuple(tuple(item) for item in fields[name])
    return ScenarioConfig(**fields)


def _latlon_out(point: Optional[LatLon]) -> Optional[List[float]]:
    if point is None:
        return None
    return [point.lat, point.lon]


def _latlon_in(value: Optional[List[float]]) -> Optional[LatLon]:
    if value is None:
        return None
    return LatLon(float(value[0]), float(value[1]))


def _cheat_out(cheat: Optional[CheatStrategy]) -> Optional[Dict[str, Any]]:
    if cheat is None:
        return None
    if isinstance(cheat, GossipClique):
        return {"type": "gossip_clique", "clique_id": cheat.clique_id}
    if isinstance(cheat, RssiLiar):
        return {
            "type": "rssi_liar",
            "inflation_db": cheat.inflation_db,
            "absurd_probability": cheat.absurd_probability,
            "absurd_value_dbm": cheat.absurd_value_dbm,
        }
    if isinstance(cheat, SilentMover):
        return {
            "type": "silent_mover",
            "moved_from_token": cheat.moved_from_token,
            "moved_to_description": cheat.moved_to_description,
        }
    raise SimulationError(f"unknown cheat strategy: {type(cheat).__name__}")


def _cheat_in(
    payload: Optional[Dict[str, Any]],
    cliques: Dict[int, GossipClique],
) -> Optional[CheatStrategy]:
    if payload is None:
        return None
    kind = payload.get("type")
    if kind == "gossip_clique":
        return cliques[int(payload["clique_id"])]
    if kind == "rssi_liar":
        return RssiLiar(
            inflation_db=float(payload["inflation_db"]),
            absurd_probability=float(payload["absurd_probability"]),
            absurd_value_dbm=float(payload["absurd_value_dbm"]),
        )
    if kind == "silent_mover":
        return SilentMover(
            moved_from_token=payload.get("moved_from_token", ""),
            moved_to_description=payload.get("moved_to_description", ""),
        )
    raise SimulationError(f"unknown cheat strategy in snapshot: {kind!r}")


def hotspot_payload(hotspot: SimHotspot) -> Dict[str, Any]:
    """One hotspot's snapshot dict (shared with the checkpoint layer)."""
    backhaul = hotspot.backhaul
    return {
        "gateway": hotspot.gateway,
        "owner": hotspot.owner,
        "city": [hotspot.city.name, hotspot.city.country],
        "actual": _latlon_out(hotspot.actual_location),
        "asserted": _latlon_out(hotspot.asserted_location),
        "environment": hotspot.environment.name,
        "gain": hotspot.antenna_gain_dbi,
        "backhaul": (
            None
            if backhaul is None
            else [backhaul.isp.asn, backhaul.ip, backhaul.behind_nat]
        ),
        "is_validator": hotspot.is_validator,
        "online": hotspot.online,
        "added_day": hotspot.added_day,
        "added_block": hotspot.added_block,
        "ferries_data": hotspot.ferries_data,
        "assert_nonce": hotspot.assert_nonce,
        "move_days": hotspot.move_days,
        "transfer_days": hotspot.transfer_days,
        "cheat": _cheat_out(hotspot.cheat),
    }


def hotspot_from_payload(
    payload: Dict[str, Any],
    city_by_key: Dict[tuple, Any],
    isps,
    cliques: Dict[int, GossipClique],
) -> SimHotspot:
    """Rebuild one hotspot against the regenerated city/ISP universe."""
    backhaul = payload["backhaul"]
    city_key = (payload["city"][0], payload["city"][1])
    return SimHotspot(
        gateway=payload["gateway"],
        owner=payload["owner"],
        city=city_by_key[city_key],
        actual_location=_latlon_in(payload["actual"]),
        asserted_location=_latlon_in(payload["asserted"]),
        environment=Environment[payload["environment"]],
        antenna_gain_dbi=float(payload["gain"]),
        backhaul=(
            None
            if backhaul is None
            else BackhaulAssignment(
                isp=isps.isp(int(backhaul[0])),
                ip=backhaul[1],
                behind_nat=bool(backhaul[2]),
            )
        ),
        is_validator=bool(payload["is_validator"]),
        online=bool(payload["online"]),
        added_day=int(payload["added_day"]),
        added_block=int(payload["added_block"]),
        ferries_data=bool(payload["ferries_data"]),
        assert_nonce=int(payload["assert_nonce"]),
        move_days=[int(d) for d in payload["move_days"]],
        transfer_days=[int(d) for d in payload["transfer_days"]],
        cheat=_cheat_in(payload["cheat"], cliques),
    )


def owner_payload(owner: SimOwner) -> Dict[str, Any]:
    """One owner's snapshot dict (shared with the checkpoint layer)."""
    return {
        "wallet": owner.wallet,
        "archetype": owner.archetype,
        "home_city": (
            None
            if owner.home_city is None
            else [owner.home_city.name, owner.home_city.country]
        ),
        "hotspot_count": owner.hotspot_count,
        "encashes": owner.encashes,
        "runs_devices": owner.runs_devices,
    }


def owner_from_payload(
    payload: Dict[str, Any], city_by_key: Dict[tuple, Any]
) -> SimOwner:
    """Rebuild one owner against the regenerated city universe."""
    home = payload["home_city"]
    return SimOwner(
        wallet=payload["wallet"],
        archetype=payload["archetype"],
        home_city=(
            None if home is None else city_by_key[(home[0], home[1])]
        ),
        hotspot_count=int(payload["hotspot_count"]),
        encashes=bool(payload["encashes"]),
        runs_devices=bool(payload["runs_devices"]),
    )


def save_result(result: SimulationResult, directory: Union[str, Path]) -> None:
    """Write ``result`` into ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    dump_chain(result.chain, directory / _CHAIN_FILE)

    cliques: Dict[int, List[str]] = {}
    hotspots: List[Dict[str, Any]] = []
    for hotspot in result.world.hotspots.values():
        if isinstance(hotspot.cheat, GossipClique):
            cliques.setdefault(
                hotspot.cheat.clique_id, sorted(hotspot.cheat.members)
            )
        hotspots.append(hotspot_payload(hotspot))

    owners = [
        owner_payload(owner) for owner in result.world.owners.values()
    ]

    snapshot = {
        "config": _config_to_dict(result.config),
        "keypair_seq": result.world._keypair_seq,
        "cliques": {str(cid): members for cid, members in cliques.items()},
        "hotspots": hotspots,
        "owners": owners,
        "peerbook": [
            [entry.peer, entry.listen_addrs] for entry in result.peerbook
        ],
        "oracle_prices": list(result.oracle._prices),
        "growth_log": [dataclasses.asdict(row) for row in result.growth_log],
        "console_owner": result.console_owner,
        "oui_owners": {
            str(oui): owner for oui, owner in result.oui_owners.items()
        },
        "spammer_owners": result.spammer_owners,
    }
    with open(directory / _SNAPSHOT_FILE, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, separators=(",", ":"))

    from repro.etl.schema import SCHEMA_VERSION as ETL_SCHEMA_VERSION

    meta = {
        "schema": SCHEMA_VERSION,
        "seed": result.config.seed,
        "config_digest": config_digest(result.config),
        # Recorded for humans inspecting the entry; the authoritative
        # stamp lives inside the .db and is checked on every open.
        "etl_schema": ETL_SCHEMA_VERSION,
    }
    with open(directory / _META_FILE, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2)


def load_result(directory: Union[str, Path]) -> SimulationResult:
    """Reload a :func:`save_result` snapshot.

    Raises:
        SimulationError: when the directory is not a compatible snapshot.
    """
    directory = Path(directory)
    try:
        with open(directory / _META_FILE, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SimulationError(f"unreadable snapshot meta: {exc}") from exc
    if meta.get("schema") != SCHEMA_VERSION:
        raise SimulationError(
            f"snapshot schema {meta.get('schema')!r} != {SCHEMA_VERSION}"
        )
    try:
        with open(directory / _SNAPSHOT_FILE, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SimulationError(f"unreadable snapshot: {exc}") from exc

    config = _config_from_dict(snapshot["config"])
    hub = RngHub(config.seed)

    chain = load_chain(
        directory / _CHAIN_FILE, vars=ChainVars(), validate=False
    )

    world = World(
        rng_cities=hub.stream("cities"),
        rng_isps=hub.stream("isps"),
        tail_isps=config.tail_isps,
        city_radius_scale=math.sqrt(config.scale_factor),
    )
    world._keypair_seq = int(snapshot["keypair_seq"])
    city_by_key = {
        (city.name, city.country): city for city in world.cities.cities
    }

    for payload in snapshot["owners"]:
        world.register_owner(owner_from_payload(payload, city_by_key))

    cliques = {
        int(cid): GossipClique(clique_id=int(cid), members=set(members))
        for cid, members in snapshot.get("cliques", {}).items()
    }

    for payload in snapshot["hotspots"]:
        hotspot = hotspot_from_payload(
            payload, city_by_key, world.isps, cliques
        )
        world.hotspots[hotspot.gateway] = hotspot
    world.rebuild_index()

    peerbook = Peerbook()
    for peer, addrs in snapshot["peerbook"]:
        peerbook._entries[peer] = PeerEntry(peer, list(addrs))

    oracle = PriceOracle(hub.stream("oracle"))
    prices = [float(p) for p in snapshot["oracle_prices"]]
    if len(prices) > 1:
        # Fast-forward the stream past the draws the saved walk already
        # consumed, so extending the walk later matches a fresh run.
        oracle._rng.normal(0.0, oracle.volatility, size=len(prices) - 1)
    oracle._prices = prices

    growth_log = [GrowthLogRow(**row) for row in snapshot["growth_log"]]

    return SimulationResult(
        config=config,
        chain=chain,
        world=world,
        peerbook=peerbook,
        oracle=oracle,
        growth_log=growth_log,
        console_owner=snapshot["console_owner"],
        oui_owners={
            int(oui): owner
            for oui, owner in snapshot["oui_owners"].items()
        },
        spammer_owners=list(snapshot.get("spammer_owners", [])),
    )
