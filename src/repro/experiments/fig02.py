"""Figure 2: location changes per hotspot."""

from __future__ import annotations

from repro.core.analysis.moves import move_stats
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 2: the moves-per-hotspot histogram and its summary stats.

    The paper's caption figures are internally inconsistent as printed
    (71.9 % never move yet "55.5 % do not move more than two times");
    we report the monotone reading: the unconditional never-move share,
    plus the ≤2 / >5 tail shares *conditional on having moved*.
    """
    stats = move_stats(result.chain)
    report = ExperimentReport(
        experiment_id="fig02",
        title="Location changes per hotspot (Fig. 2)",
    )
    report.rows = [
        Row("never moved", 0.719, stats.never_moved_fraction),
        Row("movers with ≤2 moves", 0.555, stats.movers_at_most_two_fraction,
            note="conditional-on-moving reading of the caption"),
        Row("movers with >5 moves", 0.16, stats.movers_more_than_five_fraction,
            note="conditional-on-moving reading of the caption"),
        Row("max moves by one hotspot", 20, stats.max_moves),
    ]
    report.series["moves_histogram"] = sorted(stats.moves_per_hotspot.items())
    return report
