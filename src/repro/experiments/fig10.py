"""Figure 10 + §6.2: relay prevalence and load."""

from __future__ import annotations

from repro.core.analysis.relays import relay_load_histogram, relay_stats
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 10: peers per relay; §6.2: 55.48 % of the network relayed."""
    stats = relay_stats(result.peerbook)
    histogram = relay_load_histogram(result.peerbook)
    report = ExperimentReport(
        experiment_id="fig10",
        title="Relay prevalence and load (Fig. 10, §6.2)",
    )
    one_or_two = sum(v for k, v in histogram.items() if k <= 2)
    report.rows = [
        Row("relayed fraction of listening peers", 0.5548,
            stats.relayed_fraction),
        Row("listening peers (descaled)", 27_281,
            stats.peers_with_listen_addrs / result.config.scale_factor),
        Row("relays carrying ≤2 peers", None,
            one_or_two / max(stats.relay_nodes, 1),
            note="'most hotspots relay only a few nodes'"),
        Row("max peers on one relay", 46, stats.max_peers_per_relay,
            note="heavy-relay tail; cause unknown in the paper too"),
    ]
    report.series["relay_load_histogram"] = sorted(histogram.items())
    return report
