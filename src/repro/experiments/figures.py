"""Figure renderers: every re-plottable paper figure as SVG.

``render_figures(result, out_dir)`` writes one SVG per figure whose data
the experiments expose as series — the CDFs, histograms, time series and
maps of Figures 2–5, 7–15. Rendering is dependency-free (see
:mod:`repro.experiments.svg`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Union

from repro.experiments.registry import run_experiment
from repro.experiments.svg import Chart
from repro.geo.landmass import _US_BOUNDARY

__all__ = ["render_figures", "FIGURE_RENDERERS"]

#: (lon, lat) US outline for map figures.
_US_OUTLINE = [(lon, lat) for lat, lon in _US_BOUNDARY]

_US_DOMAIN = (-126.0, -66.0, 24.0, 50.0)


def _fig02(result) -> Dict[str, str]:
    report = run_experiment("fig02", result)
    histogram = dict(report.series["moves_histogram"])
    chart = Chart(title="Fig. 2 — Location changes per hotspot",
                  x_label="moves", y_label="hotspots")
    max_moves = max(histogram)
    chart.set_domain(-0.5, max_moves + 0.5, 0.0, max(histogram.values()) * 1.05)
    chart.bars(list(histogram.keys()), list(histogram.values()))
    return {"fig02": chart.render()}


def _fig03(result) -> Dict[str, str]:
    report = run_experiment("fig03", result)
    distances = report.series["distance_cdf_km"]
    out: Dict[str, str] = {}

    cdf = Chart(title="Fig. 3a — CDF of move distances",
                x_label="distance (km)", y_label="CDF", log_x=True)
    positive = [max(d, 1e-3) for d in distances]
    cdf.set_domain(1e-3, max(positive) * 1.1, 0.0, 1.0)
    cdf.cdf(positive)
    out["fig03a"] = cdf.render()

    chart = Chart(width=720, height=460,
                  title="Fig. 3c — moves >500 km", x_label="lon", y_label="lat")
    chart.set_domain(*_US_DOMAIN)
    chart.outline(_US_OUTLINE)
    for (lat1, lon1), (lat2, lon2) in report.series["long_moves"]:
        for lon, lat, color in ((lon1, lat1, "#1f77b4"), (lon2, lat2, "#d62728")):
            if _US_DOMAIN[0] <= lon <= _US_DOMAIN[1] and _US_DOMAIN[2] <= lat <= _US_DOMAIN[3]:
                chart.scatter([(lon, lat)], color=color, r=2.5)
    out["fig03c"] = chart.render()
    return out


def _fig04(result) -> Dict[str, str]:
    report = run_experiment("fig04", result)
    intervals = report.series["interval_blocks"]
    chart = Chart(title="Fig. 4 — blocks between relocations",
                  x_label="blocks", y_label="CDF", log_x=True)
    chart.set_domain(1.0, max(intervals) * 1.1, 0.0, 1.0)
    chart.cdf([max(i, 1) for i in intervals])
    for anchor, label in ((1440, "1 day"), (7 * 1440, "1 week"),
                          (30 * 1440, "1 month")):
        chart.series([anchor, anchor], [0.0, 1.0], color="#aaa",
                     dash="4,3", width=0.8)
    return {"fig04": chart.render()}


def _fig05(result) -> Dict[str, str]:
    report = run_experiment("fig05", result)
    cumulative = report.series["cumulative_connected"]
    daily = report.series["daily_added"]
    online = report.series["online"]
    days = list(range(len(cumulative)))
    chart = Chart(title="Fig. 5 — network growth", x_label="day",
                  y_label="hotspots")
    chart.set_domain(0, len(days), 0.0, max(cumulative) * 1.05)
    chart.series(days, cumulative, color="#1f77b4", label="connected")
    chart.series(days[: len(online)], online, color="#2ca02c", label="online")
    scale = max(cumulative) / max(max(daily), 1)
    chart.series(days[: len(daily)], [d * scale * 0.9 for d in daily],
                 color="#d62728", width=0.8, label="daily (scaled)")
    return {"fig05": chart.render()}


def _fig07(result) -> Dict[str, str]:
    report = run_experiment("fig07", result)
    out: Dict[str, str] = {}
    histogram = dict(report.series["transfers_per_hotspot"])
    bars = Chart(title="Fig. 7a — ownership transfers per hotspot",
                 x_label="transfers", y_label="hotspots")
    bars.set_domain(0.5, max(histogram) + 0.5, 0.0,
                    max(histogram.values()) * 1.05)
    bars.bars(list(histogram.keys()), list(histogram.values()))
    out["fig07a"] = bars.render()

    timeline = report.series["transfers_over_time"]
    if timeline:
        series = Chart(title="Fig. 7c — transfers over time",
                       x_label="day", y_label="transfers")
        xs = [day for day, _ in timeline]
        ys = [count for _, count in timeline]
        series.set_domain(min(xs), max(xs) + 1, 0.0, max(ys) * 1.1)
        series.series(xs, ys)
        out["fig07c"] = series.render()
    return out


def _fig08(result) -> Dict[str, str]:
    report = run_experiment("fig08", result)
    rows = report.series["packets_by_close"]
    chart = Chart(width=720, title="Fig. 8 — packets per channel closing",
                  x_label="block", y_label="packets")
    max_packets = max((p for _, _, p in rows), default=1)
    max_block = max((b for b, _, _ in rows), default=1)
    chart.set_domain(0, max_block * 1.02, 0.5, max_packets * 1.2)
    console = [(b, max(p, 1)) for b, oui, p in rows if oui in (1, 2)]
    third = [(b, max(p, 1)) for b, oui, p in rows if oui > 2]
    chart.scatter(console, color="#1f77b4", r=1.5, label="Console (OUI 1/2)")
    chart.scatter(third, color="#d62728", r=1.5, label="third-party OUIs")
    return {"fig08": chart.render()}


def _fig09(result) -> Dict[str, str]:
    report = run_experiment("fig09", result)
    counts = [count for _, count in report.series["asn_distribution"]]
    chart = Chart(title="Fig. 9 — hotspots per ASN (ranked)",
                  x_label="ASN rank", y_label="hotspots")
    chart.set_domain(0, len(counts) + 1, 0.0, max(counts) * 1.05)
    chart.bars(list(range(1, len(counts) + 1)), counts, bar_width=max(
        1.0, 500.0 / max(len(counts), 1)
    ))
    return {"fig09": chart.render()}


def _fig10(result) -> Dict[str, str]:
    report = run_experiment("fig10", result)
    histogram = dict(report.series["relay_load_histogram"])
    chart = Chart(title="Fig. 10 — relay nodes with n peers",
                  x_label="peers relayed", y_label="relay nodes")
    chart.set_domain(0.5, max(histogram) + 0.5, 0.0,
                     max(histogram.values()) * 1.05)
    chart.bars(list(histogram.keys()), list(histogram.values()))
    return {"fig10": chart.render()}


def _fig11(result) -> Dict[str, str]:
    report = run_experiment("fig11", result)
    actual = report.series["actual_km"]
    chart = Chart(title="Fig. 11 — relay↔peer distance",
                  x_label="distance (km)", y_label="CDF")
    chart.set_domain(0.0, max(actual) * 1.05, 0.0, 1.0)
    chart.cdf(actual, label="actual")
    return {"fig11": chart.render()}


def _fig12(result) -> Dict[str, str]:
    chart = Chart(width=720, height=460,
                  title="Fig. 12a — hotspot dot map", x_label="lon",
                  y_label="lat")
    chart.set_domain(*_US_DOMAIN)
    chart.outline(_US_OUTLINE)
    online, offline = [], []
    for hotspot in result.world.hotspots.values():
        loc = hotspot.asserted_location
        if loc is None:
            continue
        if not (_US_DOMAIN[0] <= loc.lon <= _US_DOMAIN[1]
                and _US_DOMAIN[2] <= loc.lat <= _US_DOMAIN[3]):
            continue
        (online if hotspot.online else offline).append((loc.lon, loc.lat))
    chart.scatter(online, color="#2ca02c", r=1.6, label="online")
    chart.scatter(offline, color="#d62728", r=1.6, label="offline")
    return {"fig12a": chart.render()}


def _fig13(result) -> Dict[str, str]:
    report = run_experiment("fig13", result)
    distances = report.series["distances_km"]
    chart = Chart(title="Fig. 13 — valid witness distances",
                  x_label="distance (km)", y_label="CDF", log_x=True)
    chart.set_domain(0.1, max(distances) * 1.1, 0.0, 1.0)
    chart.cdf([max(d, 0.1) for d in distances])
    chart.series([25.0, 25.0], [0.0, 1.0], color="#aaa", dash="4,3",
                 width=0.8, label="25 km cutoff")
    return {"fig13": chart.render()}


def _fig14(result) -> Dict[str, str]:
    report = run_experiment("fig14", result)
    rssis = [r for r in report.series["rssis_dbm"] if r < 0]
    chart = Chart(title="Fig. 14 — witness RSSI", x_label="RSSI (dBm)",
                  y_label="CDF")
    chart.set_domain(min(rssis), max(rssis) + 1.0, 0.0, 1.0)
    chart.cdf(rssis)
    return {"fig14": chart.render()}


FIGURE_RENDERERS: Dict[str, Callable] = {
    "fig02": _fig02,
    "fig03": _fig03,
    "fig04": _fig04,
    "fig05": _fig05,
    "fig07": _fig07,
    "fig08": _fig08,
    "fig09": _fig09,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
}


def render_figures(
    result,
    out_dir: Union[str, Path],
    figure_ids: Union[List[str], None] = None,
) -> List[Path]:
    """Render every (or selected) figure to ``out_dir`` as SVG files."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    ids = figure_ids if figure_ids is not None else sorted(FIGURE_RENDERERS)
    written: List[Path] = []
    for figure_id in ids:
        renderer = FIGURE_RENDERERS.get(figure_id)
        if renderer is None:
            continue
        for name, svg_text in renderer(result).items():
            path = out / f"{name}.svg"
            path.write_text(svg_text)
            written.append(path)
    return written
