"""Table 1: top ISPs used for hotspot backhaul."""

from __future__ import annotations

from repro.core.analysis.meta import isp_ranking
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult

#: The paper's Table 1 (org → hotspot count at full scale).
PAPER_TABLE1 = {
    "Spectrum": 2497, "Comcast": 1922, "Verizon": 1590, "Cablevision": 450,
    "AT&T": 338, "Virgin Media": 333, "Cox": 314, "Level 3": 202,
    "Sky UK": 199, "Telefonica": 199, "CenturyLink": 188, "TELUS": 185,
    "RCN": 154, "Frontier": 146, "Google Fiber": 142,
}


def run(result: SimulationResult) -> ExperimentReport:
    """Table 1: the ISP ranking from the annotation pipeline."""
    ranking = isp_ranking(result.peerbook, result.world.isps, top_n=15)
    scale = result.config.scale_factor
    report = ExperimentReport(
        experiment_id="table1",
        title="Top ISPs for hotspot backhaul (Table 1)",
    )
    for rank, (org, count) in enumerate(ranking.rows, start=1):
        paper_count = PAPER_TABLE1.get(org)
        report.rows.append(Row(
            f"#{rank} {org}",
            paper_count,
            count / scale,
            note="descaled hotspot count" if paper_count else "not in paper's top 15",
        ))
    top3 = [org for org, _ in ranking.rows[:3]]
    report.notes.append(
        f"top-3 order: {top3} (paper: Spectrum, Comcast, Verizon)"
    )
    report.series["full_ranking"] = list(ranking.rows)
    return report
