"""Figure 12: the five coverage estimates."""

from __future__ import annotations

from repro.chain.transactions import PocReceipts
from repro.core.coverage import (
    DiskModel,
    ExplorerDotMap,
    HullModel,
    RevisedModel,
    build_witness_geometry,
)
from repro.experiments.registry import ExperimentReport, Row
from repro.geo.hexgrid import HexCell
from repro.geo.landmass import CONTIGUOUS_US
from repro.parallel.shards import experiment_pool
from repro.rng import RngHub
from repro.simulation.engine import SimulationResult


def _locate(token: str):
    location = HexCell.from_token(token).center()
    return None if location.is_null_island() else location


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 12a–e: dot map → 300 m disks → hulls → 25 km → revised.

    Landmass fractions scale with fleet size; the descaled column
    divides by the scenario's scale factor to compare against the
    paper's full-network percentages.
    """
    rng = RngHub(result.config.seed).stream("fig12")
    landmass = CONTIGUOUS_US
    scale = result.config.scale_factor

    us_online = []
    us_offline = []
    for hotspot in result.world.hotspots.values():
        if hotspot.asserted_location is None:
            continue
        if not landmass.contains(hotspot.asserted_location):
            continue
        (us_online if hotspot.online else us_offline).append(
            hotspot.asserted_location
        )
    dots = ExplorerDotMap(us_online, us_offline)

    receipts = [t for _, t in result.chain.iter_transactions(PocReceipts)]
    geometries = build_witness_geometry(receipts, _locate)

    # The shared experiment pool (``--shard-workers N``) shards each
    # model's Monte-Carlo ownership query; the fig12 RNG stream stays on
    # this thread, so the estimates are byte-identical to serial.
    pool = experiment_pool()
    disk = DiskModel(us_online).landmass_fraction(
        landmass, rng, scale_factor=scale, pool=pool
    )
    hulls = HullModel(geometries).landmass_fraction(
        landmass, rng, scale_factor=scale, pool=pool
    )
    hulls25 = HullModel(geometries, max_witness_km=25.0).landmass_fraction(
        landmass, rng, scale_factor=scale, pool=pool
    )
    revised = RevisedModel(geometries, max_witness_km=25.0).landmass_fraction(
        landmass, rng, scale_factor=scale, pool=pool
    )

    report = ExperimentReport(
        experiment_id="fig12",
        title="Coverage estimates (Fig. 12)",
    )
    report.rows = [
        Row("(a) explorer dots: online / offline", None,
            dots.n_online, note=f"offline {dots.n_offline}; dots ≠ coverage"),
        Row("(b) 300 m disk coverage (descaled %)", 0.09295,
            100.0 * (disk.descaled_fraction or 0.0),
            note=f"raw {100.0 * disk.landmass_fraction:.4f}%"),
        Row("(c) convex hull coverage (descaled %)", None,
            100.0 * (hulls.descaled_fraction or 0.0),
            note=f"raw {100.0 * hulls.landmass_fraction:.4f}%; no cutoff "
                 "inflates via implausible witnesses"),
        Row("(d) hulls w/ 25 km cutoff (descaled %)", 0.5723,
            100.0 * (hulls25.descaled_fraction or 0.0),
            note=f"raw {100.0 * hulls25.landmass_fraction:.4f}%"),
        Row("(e) revised model (descaled %)", 3.3032,
            100.0 * (revised.descaled_fraction or 0.0),
            note=f"raw {100.0 * revised.landmass_fraction:.4f}%; raw and "
                 "descaled bracket the paper (see EXPERIMENTS.md)"),
    ]
    ordering_ok = (
        disk.landmass_fraction
        <= hulls25.landmass_fraction
        <= revised.landmass_fraction
    )
    report.notes.append(
        "model ordering disk < hulls(25km) < revised: "
        + ("holds (matches Fig. 12)" if ordering_ok else "VIOLATED")
    )
    report.series["breakdown_km2"] = sorted(revised.breakdown_km2.items())
    return report
