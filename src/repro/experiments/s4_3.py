"""§4.3: who owns the hotspots."""

from __future__ import annotations

from repro.core.analysis.ownership import ownership_stats
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """§4.3 ownership distribution against the paper's percentages."""
    stats = ownership_stats(result.chain)
    report = ExperimentReport(
        experiment_id="s4_3",
        title="Hotspot ownership distribution (§4.3)",
    )
    whale_target = int(1903 * result.config.scale_factor)
    report.rows = [
        Row("owners with exactly 1 hotspot", 0.621, stats.one_hotspot_fraction),
        Row("owners with exactly 2", 0.146, stats.two_hotspot_fraction),
        Row("owners with exactly 3", 0.07, stats.three_hotspot_fraction),
        Row("owners with ≤3", 0.837, stats.at_most_three_fraction),
        Row("owners with ≥5", 0.103, stats.five_or_more_fraction),
        Row("max fleet (scaled)", whale_target, stats.max_owned,
            note="paper: 1,903 at full scale"),
        Row("unique owners (descaled)", 9_000,
            stats.n_owners / result.config.scale_factor),
    ]
    report.series["owners_by_count"] = sorted(stats.owners_by_count.items())
    return report
