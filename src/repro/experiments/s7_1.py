"""§7.1 case study: silent movers."""

from __future__ import annotations

from repro.experiments.registry import ExperimentReport, Row
from repro.core.analysis.incentives import find_silent_movers
from repro.poc.cheats import GossipClique, SilentMover
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Detect silent movers from chain data and score against ground truth.

    The detector is the paper's: find hotspots whose valid-witness events
    are physically impossible given their asserted location. Ground truth
    (which hotspots the simulation actually made silent movers) gives us
    the precision/recall the paper could not compute.
    """
    findings = find_silent_movers(result.chain)
    # Ground truth for "location-impossible witnessing": silent movers
    # plus gossip cliques (their fabricated witnessing is also
    # geographically impossible once a member relocates).
    truth = {
        gateway
        for gateway, hotspot in result.world.hotspots.items()
        if isinstance(hotspot.cheat, (SilentMover, GossipClique))
    }
    flagged = {f.gateway for f in findings}
    true_positives = flagged & truth
    precision = len(true_positives) / len(flagged) if flagged else 0.0
    recall = len(true_positives) / len(truth) if truth else 0.0
    rewarded = [f for f in findings if f.still_rewarded]

    report = ExperimentReport(
        experiment_id="s7_1",
        title="Silent movers (§7.1)",
    )
    report.rows = [
        Row("injected silent movers", None, len(truth)),
        Row("flagged by chain-only detector", None, len(findings)),
        Row("detector precision", None, precision),
        Row("detector recall", None, recall),
        Row("flagged AND still earning rewards", None, len(rewarded),
            note="the Joyful Pink Skunk outcome: cheat pays"),
    ]
    if findings:
        worst = findings[0]
        report.rows.append(Row(
            "largest contradiction", 1_150.0, worst.contradiction_km,
            unit="km",
            note=f"'{worst.name}' (paper: Striped Yellow Bird at ~1,150 km)",
        ))
    report.notes.append(
        "takeaway holds: location is not considered in rewarding, so "
        "silent movers keep earning"
        if rewarded else
        "no rewarded silent movers this run (differs from paper)"
    )
    return report
