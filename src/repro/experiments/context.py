"""Shared scenario cache for experiments, benchmarks and examples.

Building the paper scenario takes ~30 s; every bench and example wants
the same chain. ``get_result`` memoises one result per resolved spec
digest within the process, and additionally keeps a persistent on-disk
cache so a *fresh* process reloads the scenario in seconds instead of
re-simulating.

Scenarios arrive as registry names (``"paper"``), paths to user spec
files (``"my-whatif.json"``), or already-resolved
:class:`~repro.scenarios.ResolvedScenario` objects — all three funnel
through :func:`repro.scenarios.resolve_any` into one validated config
whose canonical digest keys both the in-process memo and the disk
entry. Two specs that resolve to the same config therefore share one
cache entry, regardless of spelling, file path or label.

The disk cache lives under ``$XDG_CACHE_HOME/repro-scenarios`` (or
``~/.cache/repro-scenarios``). The ``REPRO_SCENARIO_CACHE`` environment
variable overrides it: set it to a directory to relocate the cache, or
to ``0`` / ``off`` to disable persistence entirely. Entries are keyed
by seed, the canonical spec digest and the snapshot schema version, so
stale entries are never mistaken for current ones.

``get_store`` materialises the DeWi-style ETL replica (``etl.db``,
:mod:`repro.etl`) alongside the snapshot files inside the same entry:
the first call ingests the cached chain, later calls resume from the
store's checkpoint (a no-op when the chain hasn't grown). A corrupt or
schema-stale database self-heals exactly like a bad snapshot entry —
warn, discard, re-ingest — and never crashes the caller.
"""

from __future__ import annotations

import os
import shutil
import sqlite3
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from repro import obs
from repro.errors import EtlError, ReproError
from repro.etl.ingest import ingest_chain
from repro.etl.store import EtlStore
from repro.experiments import snapshot
from repro.scenarios import ResolvedScenario, resolve_any
from repro.simulation import SimulationEngine, SimulationResult

__all__ = [
    "ensure_snapshot",
    "get_result",
    "get_store",
    "scenario_cache_dir",
]

ScenarioRef = Union[str, ResolvedScenario]

_CACHE: Dict[str, SimulationResult] = {}
_STORES: Dict[str, EtlStore] = {}

_ENV_VAR = "REPRO_SCENARIO_CACHE"
_OFF_VALUES = {"0", "off", "none", "false"}


def scenario_cache_dir() -> Optional[Path]:
    """The persistent cache root, or ``None`` when caching is disabled."""
    override = os.environ.get(_ENV_VAR)
    if override is not None:
        if override.strip().lower() in _OFF_VALUES:
            return None
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-scenarios"


def _entry_dir(resolved: ResolvedScenario) -> Optional[Path]:
    root = scenario_cache_dir()
    if root is None:
        return None
    return root / (
        f"scn-seed{resolved.config.seed}-{resolved.digest[:12]}"
        f"-v{snapshot.SCHEMA_VERSION}"
    )


def _load_from_disk(entry: Path) -> Optional[SimulationResult]:
    if not (entry / "meta.json").exists():
        return None
    try:
        return snapshot.load_result(entry)
    except (ReproError, OSError, KeyError, ValueError, TypeError) as exc:
        warnings.warn(
            f"ignoring unreadable scenario cache entry {entry}: {exc}",
            RuntimeWarning,
            stacklevel=3,
        )
        # Remove the bad entry so the rebuilt result can replace it.
        shutil.rmtree(entry, ignore_errors=True)
        return None


def _save_to_disk(result: SimulationResult, entry: Path) -> None:
    try:
        entry.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(prefix=entry.name + ".tmp-", dir=entry.parent)
        )
        snapshot.save_result(result, tmp)
        # Atomic publish: another process either sees the whole entry or
        # none of it. If someone beat us to it, keep theirs.
        try:
            os.rename(tmp, entry)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
    except OSError as exc:
        warnings.warn(
            f"could not persist scenario cache entry {entry}: {exc}",
            RuntimeWarning,
            stacklevel=3,
        )


def get_result(
    scenario: ScenarioRef = "paper",
    seed: Optional[int] = None,
    *,
    checkpoint_every: Optional[int] = None,
    shard_workers: int = 0,
) -> SimulationResult:
    """A memoised simulation result for a scenario.

    ``scenario`` is a registry name, a path to a spec file, or an
    already-resolved :class:`~repro.scenarios.ResolvedScenario`.
    ``seed=None`` keeps the spec's own seed; an int overrides it.

    ``checkpoint_every=N`` makes a cold build resumable: the engine
    saves its full run state every N days into a ``.ckpt`` sibling of
    the cache entry, a later cold call resumes from it instead of
    restarting at day 0 (resume is bit-identical to a fresh run), and
    the checkpoint is deleted once the finished entry is published.
    ``shard_workers=N`` runs a cold build's day loop with an intra-run
    shard pool (byte-identical output, see
    :meth:`~repro.simulation.engine.SimulationEngine.run`). Both are
    ignored on memo/disk hits and when persistence is disabled.
    """
    resolved = resolve_any(scenario, seed=seed)
    cached = _CACHE.get(resolved.digest)
    if cached is not None:
        obs.counter("cache.memo_hit", scenario=resolved.label)
        return cached
    entry = _entry_dir(resolved)
    if entry is not None:
        cached = _timed_load(entry, resolved)
    if cached is None:
        from repro.parallel.locks import build_lock

        with build_lock(entry):
            # Losing the lock race means the winner already built
            # and published this entry — load theirs, don't rebuild.
            if entry is not None:
                cached = _timed_load(entry, resolved)
            if cached is None:
                obs.counter("cache.build", scenario=resolved.label)
                obs.trace_event(
                    "cache.build.start", scenario=resolved.label,
                    seed=resolved.config.seed, digest=resolved.digest[:12],
                    entry=None if entry is None else entry.name,
                )
                with obs.timer("cache.build_s") as timing:
                    cached = _build_result(
                        resolved, entry, checkpoint_every, shard_workers,
                    )
                obs.trace_event(
                    "cache.build.done", scenario=resolved.label,
                    seed=resolved.config.seed,
                    wall_s=round(timing.elapsed, 4),
                )
                if entry is not None:
                    _save_to_disk(cached, entry)
                    _discard_checkpoint(entry)
    _CACHE[resolved.digest] = cached
    return cached


def _checkpoint_dir(entry: Path) -> Path:
    """The in-progress checkpoint sibling of a cache entry."""
    return entry.parent / (entry.name + ".ckpt")


def _discard_checkpoint(entry: Path) -> None:
    shutil.rmtree(_checkpoint_dir(entry), ignore_errors=True)


def _build_result(
    resolved: ResolvedScenario,
    entry: Optional[Path],
    checkpoint_every: Optional[int],
    shard_workers: int = 0,
) -> SimulationResult:
    """Cold-build a scenario, resuming a day-level checkpoint if one
    is present (and discarding it when stale or corrupt)."""
    from repro.simulation.state import WorldState

    config = resolved.config
    ckpt: Optional[Path] = None
    if checkpoint_every and entry is not None:
        ckpt = _checkpoint_dir(entry)
    engine = None
    if ckpt is not None and (ckpt / "meta.json").exists():
        try:
            meta = WorldState.read_meta(ckpt)
            if meta.get("config_digest") != snapshot.config_digest(config):
                raise ReproError("checkpoint built from a different config")
            engine = SimulationEngine.resume(ckpt)
            obs.counter("cache.resume", scenario=resolved.label)
            obs.trace_event(
                "cache.resume", scenario=resolved.label, seed=config.seed,
                day=engine.state.day,
            )
        except (ReproError, OSError, KeyError, ValueError, TypeError) as exc:
            warnings.warn(
                f"ignoring unusable checkpoint {ckpt}: {exc}",
                RuntimeWarning,
                stacklevel=4,
            )
            shutil.rmtree(ckpt, ignore_errors=True)
            engine = None
    if engine is None:
        engine = SimulationEngine(config)
    if ckpt is None:
        result = engine.run(shard_workers=shard_workers)
    else:
        result = engine.run(
            checkpoint_every=checkpoint_every, checkpoint_dir=ckpt,
            shard_workers=shard_workers,
        )
    assert result is not None  # no stop_after_day → always completes
    return result


def _timed_load(
    entry: Path, resolved: ResolvedScenario
) -> Optional[SimulationResult]:
    """Disk load wrapped in hit/miss metrics and one trace event."""
    with obs.timer("cache.load_s") as timing:
        result = _load_from_disk(entry)
    if result is None:
        obs.counter("cache.disk_miss", scenario=resolved.label)
        return None
    obs.counter("cache.disk_hit", scenario=resolved.label)
    obs.trace_event(
        "cache.load", scenario=resolved.label, seed=resolved.config.seed,
        entry=entry.name, wall_s=round(timing.elapsed, 4),
    )
    return result


def ensure_snapshot(
    scenario: ScenarioRef = "paper",
    seed: Optional[int] = None,
    *,
    checkpoint_every: Optional[int] = None,
    shard_workers: int = 0,
) -> Optional[Path]:
    """Materialise the on-disk cache entry and return its directory.

    Parallel workers rehydrate from this path instead of receiving the
    result over IPC. Returns ``None`` when persistence is disabled (the
    farm then falls back to per-worker :func:`get_result` builds).
    ``checkpoint_every`` makes a cold build resumable and
    ``shard_workers`` shards its day loop — see :func:`get_result`.
    """
    resolved = resolve_any(scenario, seed=seed)
    entry = _entry_dir(resolved)
    if entry is None:
        return None
    result = get_result(
        resolved, checkpoint_every=checkpoint_every,
        shard_workers=shard_workers,
    )
    if not (entry / "meta.json").exists():
        # The result was memoised before this cache dir existed (or an
        # earlier persist failed); publish it now so workers can load it.
        _save_to_disk(result, entry)
    return entry if (entry / "meta.json").exists() else None


def get_store(
    scenario: ScenarioRef = "paper", seed: Optional[int] = None
) -> EtlStore:
    """The ETL replica of a scenario's chain, materialised and current.

    Lives at ``<cache entry>/etl.db`` next to the snapshot files; when
    persistence is disabled the store is built in memory instead. The
    underlying ingest is incremental — repeat calls resume from the
    checkpoint — and a corrupt or schema-stale database is silently
    discarded and re-ingested (with a warning), mirroring snapshot
    self-healing.
    """
    resolved = resolve_any(scenario, seed=seed)
    store = _STORES.get(resolved.digest)
    if store is None:
        result = get_result(resolved)
        entry = _entry_dir(resolved)
        path = None
        if entry is not None and (entry / "meta.json").exists():
            path = entry / snapshot.ETL_DB_FILE
        store = _materialise_store(result, path)
        _STORES[resolved.digest] = store
    return store


def _materialise_store(
    result: SimulationResult, path: Optional[Path]
) -> EtlStore:
    """Open-or-create the ETL store at ``path`` and bring it current.

    Falls back to an in-memory store when ``path`` is ``None`` (cache
    disabled) or unusable, so callers always get a working store.
    """
    if path is not None:
        try:
            store = _open_self_healing(path)
            ingest_chain(result.chain, store)
            return store
        except (ReproError, sqlite3.Error, OSError) as exc:
            warnings.warn(
                f"could not materialise ETL store {path}: {exc}; "
                "falling back to an in-memory store",
                RuntimeWarning,
                stacklevel=3,
            )
    store = EtlStore()
    ingest_chain(result.chain, store)
    return store


def _open_self_healing(path: Path) -> EtlStore:
    """Open an ETL store, discarding a corrupt or schema-stale file."""
    try:
        return EtlStore(path)
    except EtlError as exc:
        warnings.warn(
            f"re-ingesting unusable ETL store {path}: {exc}",
            RuntimeWarning,
            stacklevel=4,
        )
        path.unlink()
        return EtlStore(path)
