"""Shared scenario cache for experiments, benchmarks and examples.

Building the paper scenario takes ~30 s; every bench and example wants
the same chain. ``get_result`` memoises one result per (scenario, seed)
within the process.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.simulation import (
    SimulationEngine,
    SimulationResult,
    paper_scenario,
    small_scenario,
)

__all__ = ["get_result"]

_CACHE: Dict[Tuple[str, int], SimulationResult] = {}

_BUILDERS = {
    "paper": paper_scenario,
    "small": small_scenario,
}


def get_result(scenario: str = "paper", seed: int = 2021) -> SimulationResult:
    """A memoised simulation result for the named scenario preset."""
    key = (scenario, seed)
    cached = _CACHE.get(key)
    if cached is None:
        builder = _BUILDERS.get(scenario)
        if builder is None:
            raise KeyError(
                f"unknown scenario preset {scenario!r}; known: {sorted(_BUILDERS)}"
            )
        config = builder(seed=seed)
        cached = SimulationEngine(config).run()
        _CACHE[key] = cached
    return cached
