"""§8.1: basic functionality — the stationary best-case tests."""

from __future__ import annotations

from repro.core.analysis.empirical import run_stationary
from repro.errors import AnalysisError
from repro.experiments.registry import ExperimentReport, Row
from repro.geo.geodesy import LatLon
from repro.radio.propagation import Environment
from repro.rng import RngHub
from repro.simulation.engine import SimulationResult


def _dense_site(result: SimulationResult) -> LatLon:
    """A residential site with good hotspot density (the Sept re-run)."""
    best = None
    best_density = -1
    for hotspot in result.world.online_hotspots():
        if not hotspot.in_us:
            continue
        density = result.world.density_near(hotspot.actual_location, 3.0)
        if density > best_density:
            best_density = density
            best = hotspot.actual_location
    if best is None:
        raise AnalysisError("no US hotspots to site the experiment near")
    return best


def run(result: SimulationResult) -> ExperimentReport:
    """Both §8.1 runs: May (with firmware outages) and September."""
    hub = RngHub(result.config.seed)
    site = _dense_site(result)

    # May 2021 run: ~24 h with two ~2 h outage windows (firmware release).
    may = run_stationary(
        result.world, site, hub.stream("s8-may"),
        duration_hours=24.0,
        outages=[(6.0, 8.1), (17.5, 19.3)],
        environment=Environment.SUBURBAN,
    )
    # September re-run: "an overall PRR of 73.2% across three trials" —
    # three ~8 h trials, no outages, denser residential area.
    trials = [
        run_stationary(
            result.world, site, hub.stream(f"s8-sept-{i}"),
            duration_hours=8.0,
            outages=None,
            environment=Environment.SUBURBAN,
        )
        for i in range(3)
    ]
    total_sent = sum(t.packets_sent for t in trials)
    september_prr = sum(t.prr * t.packets_sent for t in trials) / total_sent
    # Miss-run structure and ACK table reported over the largest trial.
    september = max(trials, key=lambda t: t.packets_sent)

    report = ExperimentReport(
        experiment_id="s8_1",
        title="Stationary best-case PRR (§8.1)",
    )
    report.rows = [
        Row("May run PRR (24 h, 2 outages)", 0.6861, may.prr),
        Row("May run PRR excluding outages", None,
            may.prr_excluding_outages,
            note="'in between these outages, almost all packets make it'"),
        Row("September PRR (3 trials)", 0.732, september_prr),
        Row("single-miss fraction of losses", 0.835,
            september.miss_runs.single_miss_fraction),
        Row("single-or-double fraction", 0.922,
            september.miss_runs.single_or_double_fraction),
        Row("longest miss run", 34, september.miss_runs.longest_run),
        Row("incorrect ACKs", 0, september.acks.incorrect_ack),
    ]
    report.series["may_miss_runs"] = sorted(may.miss_runs.runs.items())
    report.series["september_miss_runs"] = sorted(
        september.miss_runs.runs.items()
    )
    return report
