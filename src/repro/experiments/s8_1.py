"""§8.1: basic functionality — the stationary best-case tests.

This experiment dominates the suite's wall clock (~18 of ~20 seconds),
so it decomposes into four independent **units** — the May 2021 run and
the three September trials. Each unit seeds its own named streams from
``RngHub(result.config.seed)`` (stream derivation is a pure function of
seed and name, so a fresh hub per unit draws exactly the bytes the old
single-hub loop did), which makes the units order-independent and safe
to run in different processes: the farm fans them out as separate
tasks, and ``--shard-workers`` dispatches them through the process-wide
shard pool. :func:`merge_units` reassembles the report; serial
:func:`run` goes through the same unit/merge path, so parallel and
serial reports are byte-identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.analysis.empirical import StationaryReport, run_stationary
from repro.errors import AnalysisError
from repro.experiments.registry import ExperimentReport, Row
from repro.geo.geodesy import LatLon
from repro.radio.propagation import Environment
from repro.rng import RngHub
from repro.simulation.engine import SimulationResult

#: Independent work units, longest first (the May run simulates 24 h
#: against each September trial's 8 h) — dispatch order doubles as an
#: LPT schedule when the units fan out over workers.
UNITS: Tuple[str, ...] = ("may", "sept-0", "sept-1", "sept-2")


def _dense_site(result: SimulationResult) -> LatLon:
    """A residential site with good hotspot density (the Sept re-run)."""
    best = None
    best_density = -1
    for hotspot in result.world.online_hotspots():
        if not hotspot.in_us:
            continue
        density = result.world.density_near(hotspot.actual_location, 3.0)
        if density > best_density:
            best_density = density
            best = hotspot.actual_location
    if best is None:
        raise AnalysisError("no US hotspots to site the experiment near")
    return best


def run_unit(
    result: SimulationResult,
    unit: str,
    site: Optional[LatLon] = None,
) -> StationaryReport:
    """Run one §8.1 unit; deterministic per (result, unit).

    ``site`` is derived from the result when omitted — workers recompute
    it (same deterministic answer), the serial path computes it once and
    passes it to every unit.
    """
    if site is None:
        site = _dense_site(result)
    hub = RngHub(result.config.seed)
    if unit == "may":
        # May 2021 run: ~24 h with two ~2 h outage windows (firmware
        # release).
        return run_stationary(
            result.world, site, hub.stream("s8-may"),
            duration_hours=24.0,
            outages=[(6.0, 8.1), (17.5, 19.3)],
            environment=Environment.SUBURBAN,
        )
    if unit.startswith("sept-"):
        # September re-run: three ~8 h trials, no outages, denser
        # residential area.
        index = int(unit[len("sept-"):])
        if 0 <= index < 3:
            return run_stationary(
                result.world, site, hub.stream(f"s8-sept-{index}"),
                duration_hours=8.0,
                outages=None,
                environment=Environment.SUBURBAN,
            )
    raise AnalysisError(f"unknown s8_1 unit {unit!r}; known: {UNITS}")


def merge_units(units: Dict[str, StationaryReport]) -> ExperimentReport:
    """Assemble the §8.1 report from the four unit results.

    A pure function of the unit outputs — the merge neither draws
    randomness nor cares which process produced what, so any dispatch
    order yields the same report.
    """
    missing = [unit for unit in UNITS if unit not in units]
    if missing:
        raise AnalysisError(f"s8_1 merge missing units: {missing}")
    may = units["may"]
    trials = [units[f"sept-{i}"] for i in range(3)]
    total_sent = sum(t.packets_sent for t in trials)
    # "an overall PRR of 73.2% across three trials"
    september_prr = sum(t.prr * t.packets_sent for t in trials) / total_sent
    # Miss-run structure and ACK table reported over the largest trial.
    september = max(trials, key=lambda t: t.packets_sent)

    report = ExperimentReport(
        experiment_id="s8_1",
        title="Stationary best-case PRR (§8.1)",
    )
    report.rows = [
        Row("May run PRR (24 h, 2 outages)", 0.6861, may.prr),
        Row("May run PRR excluding outages", None,
            may.prr_excluding_outages,
            note="'in between these outages, almost all packets make it'"),
        Row("September PRR (3 trials)", 0.732, september_prr),
        Row("single-miss fraction of losses", 0.835,
            september.miss_runs.single_miss_fraction),
        Row("single-or-double fraction", 0.922,
            september.miss_runs.single_or_double_fraction),
        Row("longest miss run", 34, september.miss_runs.longest_run),
        Row("incorrect ACKs", 0, september.acks.incorrect_ack),
    ]
    report.series["may_miss_runs"] = sorted(may.miss_runs.runs.items())
    report.series["september_miss_runs"] = sorted(
        september.miss_runs.runs.items()
    )
    return report


def run(result: SimulationResult) -> ExperimentReport:
    """Both §8.1 runs: May (with firmware outages) and September.

    When the process has a matching experiment shard pool configured
    (``python -m repro.experiments --shard-workers N``), the four units
    fan out over its workers; otherwise they run serially in ``UNITS``
    order. Either way the report is identical.
    """
    from repro.parallel import shards

    gathered = shards.dispatch_s8_units(result, UNITS)
    if gathered is None:
        site = _dense_site(result)
        gathered = {
            unit: run_unit(result, unit, site=site) for unit in UNITS
        }
    return merge_units(gathered)
