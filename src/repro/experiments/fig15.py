"""Figure 15 + Tables 2 and 3: the neighbourhood walk tests."""

from __future__ import annotations

from repro.core.analysis.empirical import run_walk
from repro.errors import AnalysisError
from repro.experiments.registry import ExperimentReport, Row
from repro.radio.propagation import Environment
from repro.rng import RngHub
from repro.simulation.engine import SimulationResult


def _walk_sites(result: SimulationResult):
    """Pick an urban and a suburban US walk start by environment class."""
    best = {Environment.URBAN: (None, -1), Environment.SUBURBAN: (None, -1)}
    for hotspot in result.world.online_hotspots():
        if not hotspot.in_us or hotspot.environment not in best:
            continue
        density = result.world.density_near(hotspot.actual_location, 2.0)
        if density > best[hotspot.environment][1]:
            best[hotspot.environment] = (hotspot.actual_location, density)
    urban_site = best[Environment.URBAN][0]
    suburban_site = best[Environment.SUBURBAN][0] or urban_site
    if urban_site is None:
        urban_site = suburban_site
    if urban_site is None:
        raise AnalysisError("no US hotspots for walk siting")
    return urban_site, suburban_site


def run(result: SimulationResult) -> ExperimentReport:
    """Urban and suburban walks, with PRR, ACK tables and HIP-15 scoring."""
    hub = RngHub(result.config.seed)
    urban_site, suburban_site = _walk_sites(result)
    # Device links: the urban walker is deep in street clutter; the
    # suburban walker has milder surroundings (hence the higher PRR).
    # Leg counts approximate the paper's walk lengths (urban ≈ 5 km for
    # 2,393 packets; suburban ≈ 2.2 km for 1,027).
    urban = run_walk(
        result.world, urban_site, hub.stream("walk-urban"),
        environment=Environment.STREET_LEVEL, n_legs=20,
    )
    suburban = run_walk(
        result.world, suburban_site, hub.stream("walk-suburban"),
        environment=Environment.URBAN, n_legs=9,
    )
    urban_fracs = urban.acks.fractions()
    suburban_fracs = suburban.acks.fractions()

    report = ExperimentReport(
        experiment_id="fig15",
        title="Walk tests (Fig. 15, Tables 2–3)",
    )
    report.rows = [
        Row("urban walk PRR", 0.729, urban.prr),
        Row("suburban walk PRR", 0.776, suburban.prr),
        Row("urban correct ACK", 0.462, urban_fracs["correct_ack"]),
        Row("urban correct NACK", 0.412, urban_fracs["correct_nack"]),
        Row("urban incorrect ACK", 0.0, urban_fracs["incorrect_ack"]),
        Row("urban incorrect NACK", 0.126, urban_fracs["incorrect_nack"]),
        Row("suburban correct ACK", 0.570, suburban_fracs["correct_ack"]),
        Row("suburban correct NACK", 0.231, suburban_fracs["correct_nack"]),
        Row("suburban incorrect ACK", 0.0, suburban_fracs["incorrect_ack"]),
        Row("suburban incorrect NACK", 0.200, suburban_fracs["incorrect_nack"]),
        Row("HIP-15 in-radius accuracy", 0.555,
            urban.hip15.inside_received_fraction,
            note="P(received | within 300 m of a hotspot)"),
        Row("HIP-15 out-of-radius accuracy", 0.796,
            urban.hip15.outside_missed_fraction,
            note="P(missed | beyond 300 m)"),
    ]
    report.notes.append(
        f"urban walk sent {urban.packets_sent} packets (paper: 2,393); "
        f"suburban {suburban.packets_sent} (paper: 1,027)"
    )
    return report
