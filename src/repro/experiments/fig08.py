"""Figure 8 + §5.2/§5.3: packet-transfer and router analyses."""

from __future__ import annotations

from repro.core.analysis.traffic import (
    channel_share,
    packets_by_close,
    spam_episode,
    traffic_series,
)
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 8's series plus the Console share and the HIP 10 spike."""
    share = channel_share(result.chain)
    series = traffic_series(result.chain)
    spike = spam_episode(series)
    config = result.config

    report = ExperimentReport(
        experiment_id="fig08",
        title="Packet transfers and routers (Fig. 8, §5.2–5.3)",
    )
    report.rows = [
        Row("Console share of channel txns", 0.8118, share.console_share),
        Row("registered OUIs", 10, len(share.ouis_seen)),
        Row("final aggregate packets/s", 14.0,
            series.final_packets_per_second(),
            note="organic traffic approaching 14 pkt/s (Fig. 8)"),
        Row("spam spike multiplier over baseline", None,
            spike.spike_multiplier,
            note="the Aug 2020 arbitrage episode (§5.3.2)"),
        Row("spike decayed by day", config.spam_decay_end_day,
            spike.decayed_by_day or -1,
            note="HIP 10 landed on day "
                 f"{config.hip10_day}; spam decays after"),
    ]
    report.series["packets_by_close"] = packets_by_close(result.chain)
    report.series["daily_console"] = list(series.console_packets)
    report.series["daily_third_party"] = list(series.third_party_packets)
    report.notes.append(
        "spike remains the largest sustained data volume in the history"
        if spike.peak_packets >= max(
            series.console_packets[-7:] or [0]
        ) else "late organic traffic exceeded the spike (differs from paper)"
    )
    return report
