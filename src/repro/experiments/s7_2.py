"""§7.2 case study: lying witnesses."""

from __future__ import annotations

from repro.core.analysis.incentives import find_rssi_anomalies
from repro.core.analysis.witnesses import validity_breakdown
from repro.experiments.registry import ExperimentReport, Row
from repro.poc.cheats import GossipClique, RssiLiar
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Impossible RSSIs, heuristic evasion, and the gossip-clique yield."""
    anomalies = find_rssi_anomalies(result.chain)
    breakdown = validity_breakdown(result.chain)

    liars = {
        gw for gw, h in result.world.hotspots.items()
        if isinstance(h.cheat, RssiLiar)
    }
    clique_members = {
        gw for gw, h in result.world.hotspots.items()
        if isinstance(h.cheat, GossipClique)
    }
    # How often forged clique reports passed validity (they always
    # should: they are crafted from the public bound).
    clique_valid = 0
    clique_total = 0
    from repro.chain.transactions import PocReceipts

    for _, receipt in result.chain.iter_transactions(PocReceipts):
        if receipt.challengee not in clique_members:
            continue
        for witness in receipt.witnesses:
            if witness.witness in clique_members:
                clique_total += 1
                clique_valid += 1 if witness.is_valid else 0

    report = ExperimentReport(
        experiment_id="s7_2",
        title="Lying witnesses (§7.2)",
    )
    max_rssi = anomalies[0].rssi_dbm if anomalies else 0.0
    report.rows = [
        Row("impossible-RSSI reports (> +36 dBm EIRP)", None, len(anomalies)),
        Row("max claimed RSSI", 1_041_313_293.0, max_rssi, unit="dBm",
            note="the paper's absurd outlier value"),
        Row("impossible RSSIs passing validity", 0,
            sum(1 for a in anomalies if a.passed_validity),
            note="'easily dismissed' by the heuristics"),
        Row("injected RSSI liars", None, len(liars)),
        Row("gossip-clique members", None, len(clique_members)),
        Row("clique forged-report validity rate", 1.0,
            clique_valid / clique_total if clique_total else 0.0,
            note="forged from the public bound ⇒ always passes (§7.2 takeaway)"),
    ]
    report.series["validity_breakdown"] = sorted(breakdown.items())
    return report
