"""Figure 5: network growth, connected vs online, US vs international."""

from __future__ import annotations

from repro.core.analysis.growth import growth_curves, snapshot
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 5 + §4.2 snapshots, descaled to the real fleet size."""
    curves = growth_curves(result.chain, result.growth_log)
    config = result.config
    scale = config.scale_factor
    final = snapshot(curves, len(curves.days) - 1)
    march = snapshot(curves, min(config.march_snapshot_day, len(curves.days) - 1))

    report = ExperimentReport(
        experiment_id="fig05",
        title="Network growth (Fig. 5, §4.2)",
    )
    report.rows = [
        Row("connected at end (descaled)", 44_000, final.connected / scale),
        Row("online at end (descaled)", 34_000, final.online / scale),
        Row("US online at end (descaled)", 20_000, final.online_us / scale),
        Row("intl online at end (descaled)", 14_000,
            final.online_international / scale),
        Row("connected at March snapshot (descaled)", 20_000,
            march.connected / scale),
        Row("online at March snapshot (descaled)", 16_000,
            march.online / scale),
        Row("final adds/day (descaled)", 1_000,
            curves.final_daily_rate() / scale,
            note="the '1,000 new hotspots per day' claim"),
    ]
    report.series["daily_added"] = list(curves.daily_added)
    report.series["cumulative_connected"] = list(curves.cumulative_connected)
    report.series["online"] = list(curves.online)
    return report
