"""§3 headline: the chain is overwhelmingly PoC transactions."""

from __future__ import annotations

from repro.core.analysis.chainstats import chain_stats
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """§3: 99.2 % of all transactions are Proof of Coverage."""
    stats = chain_stats(
        result.chain, poc_thinning_factor=result.config.poc_thinning_factor
    )
    report = ExperimentReport(
        experiment_id="headline_s3",
        title="Whole-chain transaction census (§3)",
    )
    report.rows = [
        Row("PoC share of transactions (descaled)", 0.992,
            stats.poc_share_descaled or 0.0,
            note=f"raw (thinned) share {stats.poc_share:.3f}"),
        Row("total transactions", None, stats.total_transactions,
            note="paper: 59,092,640 at full scale & full challenge rate"),
        Row("PoC transactions", None, stats.poc_transactions,
            note="paper: 58,619,153"),
    ]
    report.series["counts_by_kind"] = sorted(stats.counts_by_kind.items())
    report.notes.append(
        f"simulated at 1/{1 / result.config.scale_factor:.0f} fleet scale, "
        f"PoC thinned ×{result.config.poc_thinning_factor:.0f}"
    )
    return report
