"""Figure 4: CDF of block intervals between hotspot relocations."""

from __future__ import annotations

from repro.core.analysis.moves import collect_move_records, move_interval_blocks
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 4: 17.9 % of relocations within a day, 35.8 % within a
    week, 63.2 % within a month."""
    records = collect_move_records(result.chain)
    stats = move_interval_blocks(records)
    report = ExperimentReport(
        experiment_id="fig04",
        title="Block intervals between relocations (Fig. 4)",
    )
    report.rows = [
        Row("within a day", 0.179, stats.within_day_fraction),
        Row("within a week", 0.358, stats.within_week_fraction),
        Row("within a month", 0.632, stats.within_month_fraction),
        Row("beyond a month", 0.368, 1.0 - stats.within_month_fraction),
    ]
    report.series["interval_blocks"] = list(stats.intervals_blocks)
    return report
