"""Figure 9 + §6.1: ASN distribution and per-city diversity."""

from __future__ import annotations

from repro.core.analysis.meta import (
    asn_distribution,
    city_asn_diversity,
    cloud_hosted_peers,
)
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 9's heavy-headed ASN distribution and the 1-ASN cities."""
    distribution = asn_distribution(result.peerbook, result.world.isps)
    clouds = cloud_hosted_peers(result.peerbook, result.world.isps)

    # Join: peer → city (from world ground truth) and peer → ASN.
    peer_city = {}
    for gateway, hotspot in result.world.hotspots.items():
        peer_city[gateway] = hotspot.city.name
    peer_asn = {}
    universe = result.world.isps
    from repro.p2p.multiaddr import parse_multiaddr

    for entry in result.peerbook.entries_with_listen_addrs():
        parsed = parse_multiaddr(entry.listen_addrs[0])
        if parsed.ip is not None:
            asn = universe.asn_for_ip(parsed.ip)
            if asn is not None:
                peer_asn[entry.peer] = asn
    diversity = city_asn_diversity(
        {p: c for p, c in peer_city.items() if p in peer_asn}, peer_asn
    )

    head = sum(count for _, count in distribution[:10])
    total = sum(count for _, count in distribution)
    report = ExperimentReport(
        experiment_id="fig09",
        title="ASN distribution and city diversity (Fig. 9, §6.1)",
    )
    report.rows = [
        Row("distinct ASNs with hotspots", 454, len(distribution),
            note="paper: 454 at full scale"),
        Row("top-10 ASN share of hotspots", None, head / total,
            note="'the overwhelming majority hang off just a few networks'"),
        Row("single-hotspot ASNs (long tail)", None,
            sum(1 for _, c in distribution if c <= 2)),
        Row("cities with annotated hotspots", None,
            diversity.cities_with_hotspots,
            note="paper: 3,958 cities with ≥1 hotspot"),
        Row("single-ASN city fraction", 1_588 / 3_958,
            diversity.single_asn_cities / max(diversity.cities_with_hotspots, 1)),
        Row("single-ASN cities with ≥2 hotspots", None,
            diversity.single_asn_cities_with_2plus,
            note="paper: 414 (Palma, Mesa, Rome, ...)"),
        Row("cloud-hosted peers (validators)", None,
            sum(clouds.values()),
            note=f"by provider: {clouds} (paper: DO 72, Amazon 44)"),
    ]
    report.series["asn_distribution"] = distribution
    return report
