"""Figure-data export: write every experiment's rows and series to disk.

``python -m repro.experiments`` prints paper-vs-measured tables; this
module writes the underlying data (CSV for series, JSON for reports) so
the figures can be re-plotted with any tool:

    from repro.experiments.export import export_all
    export_all(result, "out/")

Layout::

    out/
      <experiment_id>.json          # rows + notes
      <experiment_id>.<series>.csv  # one CSV per series
      summary.csv                   # all comparison rows in one table
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentReport,
    run_experiment,
)

__all__ = ["export_report", "export_all"]


def _series_rows(values: Iterable) -> List[List]:
    """Normalise a series into CSV rows."""
    rows: List[List] = []
    for item in values:
        if isinstance(item, (list, tuple)):
            flat: List = []
            for cell in item:
                if isinstance(cell, (list, tuple)):
                    flat.extend(cell)
                else:
                    flat.append(cell)
            rows.append(flat)
        else:
            rows.append([item])
    return rows


def export_report(report: ExperimentReport, out_dir: Union[str, Path]) -> List[Path]:
    """Write one report's JSON + series CSVs. Returns the paths written."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    payload = {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "rows": [
            {
                "label": row.label,
                "paper": row.paper,
                "measured": row.measured,
                "unit": row.unit,
                "note": row.note,
            }
            for row in report.rows
        ],
        "notes": report.notes,
        "series": sorted(report.series),
    }
    json_path = out / f"{report.experiment_id}.json"
    json_path.write_text(json.dumps(payload, indent=2))
    written.append(json_path)

    for name, values in report.series.items():
        csv_path = out / f"{report.experiment_id}.{name}.csv"
        with csv_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerows(_series_rows(values))
        written.append(csv_path)
    return written


def export_all(
    result,
    out_dir: Union[str, Path],
    experiment_ids: Optional[List[str]] = None,
    reports: Optional[List[ExperimentReport]] = None,
) -> List[Path]:
    """Run and export every experiment (or a subset) for one result.

    Pass ``reports`` (parallel to ``experiment_ids``) to export already
    computed reports — e.g. from the experiment farm — instead of
    re-running each experiment here. A ``summary.csv`` with every
    paper-vs-measured row is written last.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    ids = experiment_ids if experiment_ids is not None else EXPERIMENTS.ids()
    if reports is not None and len(reports) != len(ids):
        raise ValueError(
            f"got {len(reports)} reports for {len(ids)} experiment ids"
        )
    written: List[Path] = []
    summary_rows: List[List] = [["experiment", "label", "paper", "measured", "unit"]]
    for position, experiment_id in enumerate(ids):
        report = (
            reports[position]
            if reports is not None
            else run_experiment(experiment_id, result)
        )
        written.extend(export_report(report, out))
        for row in report.rows:
            summary_rows.append([
                experiment_id, row.label, row.paper, row.measured, row.unit,
            ])
    summary_path = out / "summary.csv"
    with summary_path.open("w", newline="") as handle:
        csv.writer(handle).writerows(summary_rows)
    written.append(summary_path)
    return written
