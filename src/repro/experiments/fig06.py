"""Figure 6 + §4.3.1/.2: profiling bulk owners from chain data alone."""

from __future__ import annotations

from repro.core.analysis.ownership import classify_owners, owner_fleet_map
from repro.errors import AnalysisError
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Identify the owner classes the paper's §4.3 case studies describe.

    Commercial operators (Careband/nowi-like): multi-hotspot fleets that
    ferry data and accumulate HNT. Mining pools (the Denver clusters):
    geographically spread fleets with no data activity and drained
    wallets (they encash).
    """
    profiles = classify_owners(result.chain)
    big = [p for p in profiles if p.hotspots >= 3]
    if not big:
        raise AnalysisError("no multi-hotspot owners to profile")
    applications = [p for p in big if p.inferred_class == "application"]
    mining = [p for p in big if p.inferred_class == "mining"]

    report = ExperimentReport(
        experiment_id="fig06",
        title="Bulk-owner profiling (Fig. 6, §4.3.1–4.3.2)",
    )
    report.rows = [
        Row("multi-hotspot owners profiled", None, len(big)),
        Row("inferred application operators", None, len(applications),
            note="data txns + retained HNT (the Careband/nowi pattern)"),
        Row("inferred mining operations", None, len(mining),
            note="no data txns, encashed wallets (Fig. 6 pattern)"),
    ]
    if mining:
        example = max(mining, key=lambda p: p.hotspots)
        fleet = owner_fleet_map(result.chain, example.owner)
        located = [loc for _, loc in fleet if loc is not None]
        spread_km = 0.0
        if len(located) >= 2:
            spread_km = max(
                located[0].distance_km(other) for other in located[1:]
            )
        report.rows.append(Row(
            "largest mining fleet size", None, example.hotspots,
            note=f"HNT balance {example.hnt_balance:.1f}, spread {spread_km:.0f} km",
        ))
        report.series["example_fleet"] = [
            (loc.lat, loc.lon) for loc in located
        ]
    report.notes.append(
        "class inference from public chain data only, per the paper's method"
    )
    return report
