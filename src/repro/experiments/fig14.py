"""Figure 14: CDF of witness RSSI values."""

from __future__ import annotations

from repro import units
from repro.core.analysis.witnesses import witness_rssi_cdf
from repro.experiments.registry import ExperimentReport, Row
from repro.radio.propagation import fspl_range_growth_m
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 14 over the paper's four-day window, plus the +20 m claim.

    The paper computes the CDF over receipts from 2021-05-18 to
    2021-05-22, i.e. the last four days of the study window; we take the
    matching final-four-days block slice.
    """
    end = result.chain.height
    start = max(0, end - 4 * units.BLOCKS_PER_DAY)
    stats = witness_rssi_cdf(result.chain, start_height=start, end_height=end)
    growth_m = fspl_range_growth_m(stats.median_dbm)

    report = ExperimentReport(
        experiment_id="fig14",
        title="Witness RSSI CDF (Fig. 14)",
    )
    report.rows = [
        Row("median witness RSSI", -108.0, stats.median_dbm, unit="dBm"),
        Row("5th percentile", None, stats.p5_dbm, unit="dBm"),
        Row("95th percentile", None, stats.p95_dbm, unit="dBm"),
        Row("radius growth at median RSSI", 20.0, growth_m, unit="m",
            note="d = 10^((w−s)/20), s = −134 dBm"),
    ]
    report.series["rssis_dbm"] = list(stats.rssis_dbm)
    return report
