"""Figure 11: relay→peer distances, actual vs randomised assignment."""

from __future__ import annotations

from repro.core.analysis.relays import relay_distances
from repro.experiments.registry import ExperimentReport, Row
from repro.rng import RngHub
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 11: the random-selection verification experiment."""
    locations = {
        gateway: hotspot.asserted_location
        for gateway, hotspot in result.world.hotspots.items()
        if hotspot.asserted_location is not None
    }
    rng = RngHub(result.config.seed).stream("fig11-trials")
    comparison = relay_distances(result.peerbook, locations, rng, n_trials=5)
    report = ExperimentReport(
        experiment_id="fig11",
        title="Relay→peer distance, actual vs random (Fig. 11)",
    )
    report.rows = [
        Row("actual median distance", None, comparison.actual_median_km,
            unit="km"),
        Row("randomised median distance", None,
            comparison.randomized_median_km, unit="km"),
        Row("KS statistic actual-vs-random", None, comparison.ks_statistic,
            note="small ⇒ selection is random, the paper's conclusion"),
        Row("max observed distance", 18_491.10,
            max(comparison.actual_km), unit="km",
            note="paper's max; ours depends on city draw"),
    ]
    report.series["actual_km"] = sorted(comparison.actual_km)
    report.series["trial_medians_km"] = [
        sorted(trial)[len(trial) // 2] for trial in comparison.randomized_trials_km
    ]
    report.notes.append(
        "conclusion: relay selection is random"
        if comparison.ks_statistic < 0.08
        else "KS statistic unexpectedly large — selection may not be random"
    )
    return report
