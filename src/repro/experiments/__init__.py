"""Reproduction entry points: one module per paper table/figure.

Each module exposes ``run(result) -> ExperimentReport`` taking a
:class:`~repro.simulation.engine.SimulationResult`. The registry maps
experiment ids (``fig02`` ... ``table1`` ...) to these functions;
``python -m repro.experiments`` runs them all and prints a comparison
against the paper's reported values.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentReport,
    Row,
    format_report,
    run_experiment,
)
from repro.experiments.context import get_result

__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "Row",
    "run_experiment",
    "format_report",
    "get_result",
]
