"""§9.1: the Spectrum terms-of-service exposure."""

from __future__ import annotations

from repro.core.analysis.meta import tos_exposure
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """If Spectrum enforced residential-only ToS, how much would fall?"""
    us_peers = {
        gateway
        for gateway, hotspot in result.world.hotspots.items()
        if hotspot.in_us
    }
    exposure = tos_exposure(
        result.peerbook, result.world.isps, us_peers, org="Spectrum"
    )
    report = ExperimentReport(
        experiment_id="s9_1",
        title="ISP terms-of-service exposure (§9.1)",
    )
    report.rows = [
        Row("US hotspots on Spectrum (fraction)", 0.17,
            exposure.us_fraction_at_risk,
            note="'at least 17% of the US hotspots would fall offline'"),
        Row("detectable on port 44158", None, exposure.detectable_on_port,
            note="all direct peers use the unique Helium port"),
    ]
    report.notes.append(
        "Spectrum-hosted hotspots are trivially detectable: unique port "
        "44158 plus a public IP database"
    )
    return report
