"""Figure 3: CDF of move distances and the >500 km move map."""

from __future__ import annotations

import numpy as np

from repro.core.analysis.moves import (
    collect_move_records,
    long_moves,
    move_distance_cdf,
    null_island_stats,
)
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 3: bimodal move distances, export flows, (0,0) artifacts."""
    records = collect_move_records(result.chain)
    distances = move_distance_cdf(records)
    long = long_moves(records, threshold_km=500.0)
    null = null_island_stats(result.chain)

    us_departures = 0
    for record in long:
        if record.from_location.is_null_island() or record.to_location.is_null_island():
            continue
        from_us = -130.0 < record.from_location.lon < -60.0 and record.from_location.lat > 23.0
        to_us = -130.0 < record.to_location.lon < -60.0 and record.to_location.lat > 23.0
        if from_us and not to_us:
            us_departures += 1

    report = ExperimentReport(
        experiment_id="fig03",
        title="Move distance CDF and long-distance flows (Fig. 3)",
    )
    short_share = float((distances <= 50.0).mean())
    report.rows = [
        Row("total relocations", None, len(records)),
        Row("median move distance", None, float(np.median(distances)), unit="km",
            note="Fig. 3b: short test-then-deploy hops dominate"),
        Row("moves ≤50 km (short mode)", None, short_share,
            note="bimodal: the rest are long-distance flows"),
        Row("moves >500 km", None, len(long)),
        Row("of long moves, US departures", None, us_departures,
            note="the blue US-export flow of Fig. 3c"),
        Row("(0,0) asserts total", 372 * result.config.scale_factor,
            null.total_null_asserts, note="scaled from the paper's 372"),
        Row("(0,0) first-time fraction", 0.89, null.first_time_fraction),
        Row("hotspots still at (0,0) after moving there", 0,
            null.currently_at_null - null.first_time_null_asserts
            if null.currently_at_null > null.first_time_null_asserts else 0,
            note="nobody stays at null island"),
    ]
    report.series["distance_cdf_km"] = [float(d) for d in distances]
    report.series["long_moves"] = [
        (
            (r.from_location.lat, r.from_location.lon),
            (r.to_location.lat, r.to_location.lon),
        )
        for r in long
    ]
    return report
