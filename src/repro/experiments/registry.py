"""Experiment registry and the paper-vs-measured report format."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.errors import AnalysisError

__all__ = [
    "Row",
    "ExperimentReport",
    "EXPERIMENTS",
    "run_experiment",
    "format_report",
    "report_payload",
    "report_from_payload",
    "reports_digest",
]

Number = Union[int, float]


@dataclass(frozen=True)
class Row:
    """One paper-vs-measured comparison line."""

    label: str
    paper: Optional[Number]
    measured: Number
    unit: str = ""
    note: str = ""

    def matches_within(self, relative: float) -> bool:
        """Whether measured is within ``relative`` of the paper value."""
        if self.paper is None:
            return True
        if self.paper == 0:
            return abs(self.measured) <= relative
        return abs(self.measured - self.paper) / abs(self.paper) <= relative


@dataclass
class ExperimentReport:
    """Everything one experiment produced, printable."""

    experiment_id: str
    title: str
    rows: List[Row] = field(default_factory=list)
    #: Raw series for figure-shaped experiments (CDFs, time series).
    series: Dict[str, list] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)


#: experiment id → module path (module must expose ``run``).
_EXPERIMENT_MODULES: Dict[str, str] = {
    "headline_s3": "repro.experiments.headline_s3",
    "fig02": "repro.experiments.fig02",
    "fig03": "repro.experiments.fig03",
    "fig04": "repro.experiments.fig04",
    "fig05": "repro.experiments.fig05",
    "s4_3": "repro.experiments.s4_3",
    "fig06": "repro.experiments.fig06",
    "fig07": "repro.experiments.fig07",
    "fig08": "repro.experiments.fig08",
    "table1": "repro.experiments.table1",
    "fig09": "repro.experiments.fig09",
    "fig10": "repro.experiments.fig10",
    "fig11": "repro.experiments.fig11",
    "s7_1": "repro.experiments.s7_1",
    "s7_2": "repro.experiments.s7_2",
    "s8_1": "repro.experiments.s8_1",
    "fig12": "repro.experiments.fig12",
    "fig13": "repro.experiments.fig13",
    "fig14": "repro.experiments.fig14",
    "fig15": "repro.experiments.fig15",
    "s9_1": "repro.experiments.s9_1",
}


class _Registry(dict):
    """Lazy experiment loader: imports modules on first access."""

    def __missing__(self, key: str) -> Callable:
        module_path = _EXPERIMENT_MODULES.get(key)
        if module_path is None:
            raise AnalysisError(
                f"unknown experiment {key!r}; known: {sorted(_EXPERIMENT_MODULES)}"
            )
        module = importlib.import_module(module_path)
        self[key] = module.run
        return self[key]

    def ids(self) -> List[str]:
        """All registered experiment ids."""
        return sorted(_EXPERIMENT_MODULES)

    def descriptions(self) -> Dict[str, str]:
        """id → one-line description (each module's docstring headline)."""
        described = {}
        for experiment_id in self.ids():
            module = importlib.import_module(_EXPERIMENT_MODULES[experiment_id])
            doc = (module.__doc__ or "").strip()
            described[experiment_id] = doc.splitlines()[0] if doc else ""
        return described


EXPERIMENTS = _Registry()


def run_experiment(experiment_id: str, result) -> ExperimentReport:
    """Run one experiment against a simulation result."""
    return EXPERIMENTS[experiment_id](result)


def format_report(report: ExperimentReport) -> str:
    """Render a report as an aligned text table."""
    lines = [f"== {report.experiment_id}: {report.title} =="]
    if report.rows:
        label_width = max(len(r.label) for r in report.rows)
        for row in report.rows:
            paper = "—" if row.paper is None else _fmt(row.paper)
            measured = _fmt(row.measured)
            unit = f" {row.unit}" if row.unit else ""
            note = f"   ({row.note})" if row.note else ""
            lines.append(
                f"  {row.label:<{label_width}}  paper={paper:>12}{unit}  "
                f"measured={measured:>12}{unit}{note}"
            )
    for note in report.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def report_payload(report: ExperimentReport) -> Dict:
    """A report as a canonical JSON-safe dict (digest/IPC ingredient).

    Numpy scalars and arrays that experiments leave in ``series`` are
    normalised to plain Python numbers/lists, so the payload both
    pickles cheaply across process boundaries and serialises to the
    same JSON bytes regardless of which process produced it.
    """
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "rows": [
            {
                "label": row.label,
                "paper": _json_safe(row.paper),
                "measured": _json_safe(row.measured),
                "unit": row.unit,
                "note": row.note,
            }
            for row in report.rows
        ],
        "series": {
            name: _json_safe(report.series[name])
            for name in sorted(report.series)
        },
        "notes": list(report.notes),
    }


def report_from_payload(payload: Dict) -> ExperimentReport:
    """Inverse of :func:`report_payload`."""
    return ExperimentReport(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        rows=[
            Row(
                label=row["label"],
                paper=row["paper"],
                measured=row["measured"],
                unit=row["unit"],
                note=row["note"],
            )
            for row in payload["rows"]
        ],
        series=dict(payload["series"]),
        notes=list(payload["notes"]),
    )


def reports_digest(reports) -> str:
    """SHA-256 over the canonical JSON of a sequence of reports.

    Equal digests mean byte-identical report content — the check the
    serial-vs-parallel determinism tests and the CI e2e job assert.
    """
    import hashlib
    import json

    digest = hashlib.sha256()
    for report in reports:
        payload = json.dumps(
            report_payload(report), sort_keys=True, separators=(",", ":")
        )
        digest.update(payload.encode("utf-8"))
    return digest.hexdigest()


def _json_safe(value):
    """Recursively coerce numpy scalars/arrays to plain Python values."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if hasattr(value, "tolist"):  # numpy scalar or array
        return _json_safe(value.tolist())
    if hasattr(value, "item"):  # zero-dim numpy scalar
        return value.item()
    raise AnalysisError(
        f"non-serialisable value in report payload: {type(value).__name__}"
    )


def _fmt(value: Number) -> str:
    if isinstance(value, int):
        return f"{value:,}"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"
