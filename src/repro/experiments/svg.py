"""Minimal dependency-free SVG chart primitives.

The benchmark environment has no plotting stack, and the reproduction
promises to *regenerate the paper's figures* — so this module implements
just enough SVG to draw them: axes with ticks, polylines (CDFs, time
series), bars, scatter dots, and geographic outlines (the Figure 3c/12
US maps). Output is plain SVG 1.1 text, viewable in any browser.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import AnalysisError

__all__ = ["SvgCanvas", "Chart"]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


class SvgCanvas:
    """An SVG document built element by element."""

    def __init__(self, width: int = 640, height: int = 400) -> None:
        if width <= 0 or height <= 0:
            raise AnalysisError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._elements: List[str] = []

    def line(self, x1: float, y1: float, x2: float, y2: float,
             color: str = "#333", width: float = 1.0,
             dash: Optional[str] = None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]],
                 color: str = "#1f77b4", width: float = 1.5,
                 close: bool = False, fill: str = "none") -> None:
        if not points:
            return
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        tag = "polygon" if close else "polyline"
        self._elements.append(
            f'<{tag} points="{coords}" fill="{fill}" stroke="{color}" '
            f'stroke-width="{width}"/>'
        )

    def circle(self, x: float, y: float, r: float = 2.0,
               color: str = "#1f77b4", opacity: float = 1.0) -> None:
        self._elements.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" '
            f'fill="{color}" fill-opacity="{opacity}"/>'
        )

    def rect(self, x: float, y: float, w: float, h: float,
             color: str = "#1f77b4", opacity: float = 1.0) -> None:
        self._elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{color}" fill-opacity="{opacity}"/>'
        )

    def text(self, x: float, y: float, content: str, size: int = 11,
             color: str = "#222", anchor: str = "start") -> None:
        self._elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'fill="{color}" text-anchor="{anchor}" '
            f'font-family="sans-serif">{_escape(content)}</text>'
        )

    def render(self) -> str:
        """The complete SVG document."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>\n{body}\n</svg>\n'
        )


class Chart:
    """A 2-D chart: data space → pixel space, axes, marks.

    >>> chart = Chart(title="CDF of move distances")
    >>> chart.set_domain(0.0, 100.0, 0.0, 1.0)
    >>> chart.cdf([1.0, 2.0, 50.0])
    >>> svg = chart.render()
    """

    MARGIN_LEFT = 60
    MARGIN_RIGHT = 15
    MARGIN_TOP = 30
    MARGIN_BOTTOM = 45

    def __init__(self, width: int = 640, height: int = 400,
                 title: str = "", x_label: str = "", y_label: str = "",
                 log_x: bool = False) -> None:
        self.canvas = SvgCanvas(width, height)
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.log_x = log_x
        self._domain: Optional[Tuple[float, float, float, float]] = None
        self._legend: List[Tuple[str, str]] = []

    # -- scales -------------------------------------------------------------

    def set_domain(self, x_min: float, x_max: float,
                   y_min: float, y_max: float) -> None:
        """Fix the data-space extents (call before plotting)."""
        if x_max <= x_min or y_max <= y_min:
            raise AnalysisError("domain extents must be increasing")
        if self.log_x and x_min <= 0:
            x_min = max(x_min, 1e-3)
        self._domain = (x_min, x_max, y_min, y_max)

    def _require_domain(self) -> Tuple[float, float, float, float]:
        if self._domain is None:
            raise AnalysisError("set_domain must be called before plotting")
        return self._domain

    def _sx(self, x: float) -> float:
        x_min, x_max, _, _ = self._require_domain()
        if self.log_x:
            x = max(x, x_min)
            ratio = (math.log10(x) - math.log10(x_min)) / (
                math.log10(x_max) - math.log10(x_min)
            )
        else:
            ratio = (x - x_min) / (x_max - x_min)
        plot_width = self.canvas.width - self.MARGIN_LEFT - self.MARGIN_RIGHT
        return self.MARGIN_LEFT + ratio * plot_width

    def _sy(self, y: float) -> float:
        _, _, y_min, y_max = self._require_domain()
        ratio = (y - y_min) / (y_max - y_min)
        plot_height = self.canvas.height - self.MARGIN_TOP - self.MARGIN_BOTTOM
        return self.canvas.height - self.MARGIN_BOTTOM - ratio * plot_height

    # -- marks ----------------------------------------------------------------

    def series(self, xs: Sequence[float], ys: Sequence[float],
               color: str = "#1f77b4", label: str = "",
               width: float = 1.5, dash: Optional[str] = None) -> None:
        """A polyline series."""
        if len(xs) != len(ys):
            raise AnalysisError("series x and y lengths differ")
        points = [(self._sx(x), self._sy(y)) for x, y in zip(xs, ys)]
        if dash:
            for (x1, y1), (x2, y2) in zip(points, points[1:]):
                self.canvas.line(x1, y1, x2, y2, color, width, dash)
        else:
            self.canvas.polyline(points, color=color, width=width)
        if label:
            self._legend.append((label, color))

    def cdf(self, values: Sequence[float], color: str = "#1f77b4",
            label: str = "", max_points: int = 1500) -> None:
        """An empirical CDF as a step-ish polyline.

        Large samples are decimated to ``max_points`` vertices — visually
        identical, but the SVG stays small.
        """
        if not values:
            raise AnalysisError("cdf needs at least one value")
        ordered = sorted(values)
        n = len(ordered)
        if n > max_points:
            stride = n / max_points
            indices = [int(i * stride) for i in range(max_points)] + [n - 1]
        else:
            indices = list(range(n))
        xs = [ordered[0]] + [ordered[i] for i in indices]
        ys = [0.0] + [(i + 1) / n for i in indices]
        self.series(xs, ys, color=color, label=label)

    def bars(self, xs: Sequence[float], heights: Sequence[float],
             color: str = "#1f77b4", bar_width: Optional[float] = None,
             label: str = "") -> None:
        """Vertical bars anchored at y = domain minimum."""
        _, _, y_min, _ = self._require_domain()
        if bar_width is None and len(xs) > 1:
            bar_width = abs(self._sx(xs[1]) - self._sx(xs[0])) * 0.8
        pixel_width = bar_width if bar_width else 10.0
        base = self._sy(y_min)
        for x, height in zip(xs, heights):
            top = self._sy(height)
            self.canvas.rect(self._sx(x) - pixel_width / 2, top,
                             pixel_width, max(base - top, 0.0), color, 0.85)
        if label:
            self._legend.append((label, color))

    def scatter(self, points: Sequence[Tuple[float, float]],
                color: str = "#1f77b4", r: float = 2.0,
                opacity: float = 0.8, label: str = "") -> None:
        """Scatter dots (also used for map hotspot dots)."""
        for x, y in points:
            self.canvas.circle(self._sx(x), self._sy(y), r, color, opacity)
        if label:
            self._legend.append((label, color))

    def outline(self, boundary: Sequence[Tuple[float, float]],
                color: str = "#999") -> None:
        """A closed outline (e.g. the US boundary for map figures)."""
        points = [(self._sx(x), self._sy(y)) for x, y in boundary]
        self.canvas.polyline(points, color=color, width=1.0, close=True)

    # -- decorations ---------------------------------------------------------

    def _ticks(self, low: float, high: float, n: int = 5) -> List[float]:
        if self.log_x and low > 0:
            lo_exp = math.floor(math.log10(low))
            hi_exp = math.ceil(math.log10(high))
            return [10.0 ** e for e in range(int(lo_exp), int(hi_exp) + 1)]
        step = (high - low) / n
        return [low + i * step for i in range(n + 1)]

    def _fmt(self, value: float) -> str:
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.01:
            return f"{value:.0e}"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        return f"{value:g}"

    def render(self) -> str:
        """Draw axes, labels, legend; return the SVG text."""
        x_min, x_max, y_min, y_max = self._require_domain()
        canvas = self.canvas
        left, bottom = self.MARGIN_LEFT, canvas.height - self.MARGIN_BOTTOM
        right = canvas.width - self.MARGIN_RIGHT
        top = self.MARGIN_TOP
        canvas.line(left, bottom, right, bottom)
        canvas.line(left, bottom, left, top)
        for tick in self._ticks(x_min, x_max):
            if tick < x_min - 1e-12 or tick > x_max * 1.0001:
                continue
            x = self._sx(tick)
            canvas.line(x, bottom, x, bottom + 4)
            canvas.text(x, bottom + 16, self._fmt(tick), size=10,
                        anchor="middle")
        for tick in self._ticks(y_min, y_max):
            y = self._sy(tick)
            canvas.line(left - 4, y, left, y)
            canvas.text(left - 7, y + 3, self._fmt(tick), size=10,
                        anchor="end")
        if self.title:
            canvas.text(canvas.width / 2, 18, self.title, size=13,
                        anchor="middle")
        if self.x_label:
            canvas.text(canvas.width / 2, canvas.height - 8, self.x_label,
                        size=11, anchor="middle")
        if self.y_label:
            canvas.text(14, top - 8, self.y_label, size=11)
        for i, (label, color) in enumerate(self._legend):
            y = top + 8 + i * 16
            canvas.rect(right - 130, y - 8, 10, 10, color)
            canvas.text(right - 115, y, label, size=10)
        return canvas.render()
