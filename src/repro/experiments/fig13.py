"""Figure 13: CDF of valid-witness distances."""

from __future__ import annotations

from repro.core.analysis.witnesses import witness_distance_cdf
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 13: the distance distribution that motivates the 25 km cutoff."""
    stats = witness_distance_cdf(result.chain)
    report = ExperimentReport(
        experiment_id="fig13",
        title="Valid-witness distance CDF (Fig. 13)",
    )
    report.rows = [
        Row("median witness distance", None, stats.median_km, unit="km",
            note="paper shows most mass well below 25 km"),
        Row("95th percentile", None, stats.p95_km, unit="km"),
        Row("fraction beyond 25 km", None, stats.beyond_25km_fraction,
            note="these get cut by the paper's refinement"),
        Row("witnesses beyond 60 km", None, stats.beyond_60km_count,
            note="the footnote-16 over-water tail (60–110 km)"),
        Row("max witness distance", None, stats.max_km, unit="km"),
    ]
    report.series["distances_km"] = list(stats.distances_km)
    return report
