"""Figure 7: the resale market."""

from __future__ import annotations

from repro.core.analysis.resale import resale_stats, top_traders, transfers_over_time
from repro.experiments.registry import ExperimentReport, Row
from repro.simulation.engine import SimulationResult


def run(result: SimulationResult) -> ExperimentReport:
    """Figure 7 panels a–c plus §4.3.3 headline shares."""
    stats = resale_stats(result.chain)
    timeline = transfers_over_time(result.chain)
    traders = top_traders(result.chain, top_n=200)

    report = ExperimentReport(
        experiment_id="fig07",
        title="Resale market (Fig. 7, §4.3.3)",
    )
    scale = result.config.scale_factor
    report.rows = [
        Row("fleet fraction ever transferred", 0.086,
            stats.transferred_fraction_of_fleet),
        Row("transferred hotspots with ≤2 transfers", 0.954,
            stats.at_most_two_transfers_fraction),
        Row("transfers carrying 0 DC", 0.958, stats.zero_dc_fraction),
        Row("total transfers (descaled)", 3_819, stats.total_transfers / scale),
        Row("top trader's transfer count", None,
            traders[0].total if traders else 0,
            note="Fig. 7b: a heavy-trader head"),
    ]
    report.series["transfers_per_hotspot"] = sorted(
        stats.transfers_per_hotspot.items()
    )
    report.series["transfers_over_time"] = timeline
    report.series["top_traders"] = [
        (t.bought, t.sold) for t in traders
    ]
    monotone_growth = (
        len(timeline) >= 3 and timeline[-1][1] >= timeline[0][1]
    )
    report.notes.append(
        "transfer volume grows over time: "
        + ("yes (matches Fig. 7c)" if monotone_growth else "no")
    )
    return report
