"""Native transaction types of the simulated Helium blockchain.

The paper lists the transactions its analysis consumes (§3): add_gateway,
assert_location, PoC_request/PoC_receipt, state_channel_open/close, plus
transfer_hotspot (§4.3.3), token burns and payments (§5.2), OUI
registration (§2.2) and reward minting (§2.4). Each is a frozen dataclass;
the ledger (:mod:`repro.chain.ledger`) enforces validity when a block is
applied.

Design note: transactions carry plain addresses rather than object
references so that a serialized chain is self-contained — analyses join
against ledger snapshots exactly as the paper joins blockchain rows
against the DeWi database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from repro.chain.crypto import Address
from repro.errors import TransactionError

__all__ = [
    "Transaction",
    "AddGateway",
    "AssertLocation",
    "TransferHotspot",
    "PocRequest",
    "WitnessReport",
    "PocReceipts",
    "StateChannelOpen",
    "StateChannelSummary",
    "StateChannelClose",
    "Payment",
    "TokenBurn",
    "OuiRegistration",
    "RewardType",
    "RewardShare",
    "Rewards",
]


@dataclass(frozen=True, slots=True)
class Transaction:
    """Base class: every transaction identifies its kind for filtering."""

    @property
    def kind(self) -> str:
        """Snake-case transaction name as it appears in chain dumps."""
        return _KIND_BY_TYPE[type(self)]


@dataclass(frozen=True, slots=True)
class AddGateway(Transaction):
    """Register a new hotspot: "includes the hotspot ID, owner ID,
    location, and time when it was added" (§3).

    Location on the real chain arrives via a follow-up assert_location;
    we keep the schema faithful and leave location out of add_gateway.
    """

    gateway: Address
    owner: Address
    payer: Optional[Address] = None  # maker/vendor pays in practice
    fee_dc: int = 0

    def __post_init__(self) -> None:
        if not self.gateway or not self.owner:
            raise TransactionError("add_gateway requires gateway and owner")


@dataclass(frozen=True, slots=True)
class AssertLocation(Transaction):
    """Publish or change a hotspot's location (H3 cell token).

    ``nonce`` counts asserts for this hotspot (1-based); the ledger uses
    it to enforce ordering and to grant the two fee-free moves.
    """

    gateway: Address
    owner: Address
    location_token: str
    nonce: int
    fee_dc: int = 0
    payer: Optional[Address] = None

    def __post_init__(self) -> None:
        if self.nonce < 1:
            raise TransactionError(f"assert_location nonce must be >= 1, got {self.nonce}")
        if not self.location_token:
            raise TransactionError("assert_location requires a location token")


@dataclass(frozen=True, slots=True)
class TransferHotspot(Transaction):
    """Sell an established hotspot to another wallet (§4.3.3).

    ``amount_dc`` is the on-chain payment; "Over 95.8% of hotspot
    transfer transactions transfer 0 DC", the sale happening off-chain.
    """

    gateway: Address
    seller: Address
    buyer: Address
    amount_dc: int = 0
    fee_dc: int = 0

    def __post_init__(self) -> None:
        if self.amount_dc < 0:
            raise TransactionError("transfer amount cannot be negative")
        if self.seller == self.buyer:
            raise TransactionError("cannot transfer a hotspot to its current owner")


@dataclass(frozen=True, slots=True)
class PocRequest(Transaction):
    """A hotspot constructs a challenge (§2.3)."""

    challenger: Address
    secret_hash: str
    challengee: Address

    def __post_init__(self) -> None:
        if self.challenger == self.challengee:
            raise TransactionError("a hotspot cannot challenge itself")


@dataclass(frozen=True, slots=True)
class WitnessReport:
    """One witness's claim to have heard a challenge packet.

    ``reported_location_token`` is where the witness *actually* was when
    it heard the packet — the silent-mover analysis (§7.1) compares this
    against the witness's asserted location on the ledger.
    """

    witness: Address
    rssi_dbm: float
    snr_db: float
    frequency_mhz: float
    reported_location_token: str
    is_valid: bool = True
    invalid_reason: Optional[str] = None


@dataclass(frozen=True, slots=True)
class PocReceipts(Transaction):
    """Challenge outcome: the challengee's receipt plus witness reports."""

    challenger: Address
    challengee: Address
    challengee_location_token: str
    witnesses: Tuple[WitnessReport, ...] = field(default_factory=tuple)
    frequency_mhz: float = 904.6

    @property
    def valid_witnesses(self) -> Tuple[WitnessReport, ...]:
        """Witnesses that passed the chain's validity heuristics."""
        return tuple(w for w in self.witnesses if w.is_valid)


@dataclass(frozen=True, slots=True)
class StateChannelOpen(Transaction):
    """A router stakes DC to receive packets (§5.1)."""

    channel_id: str
    owner: Address
    oui: int
    amount_dc: int
    expire_within_blocks: int

    def __post_init__(self) -> None:
        if self.amount_dc < 0:
            raise TransactionError("state channel stake cannot be negative")
        if self.expire_within_blocks <= 0:
            raise TransactionError("state channel expiry must be positive")


@dataclass(frozen=True, slots=True)
class StateChannelSummary:
    """Per-hotspot packet totals inside a state-channel close."""

    hotspot: Address
    num_packets: int
    num_dcs: int

    def __post_init__(self) -> None:
        if self.num_packets < 0 or self.num_dcs < 0:
            raise TransactionError("state channel summary counts cannot be negative")


@dataclass(frozen=True, slots=True)
class StateChannelClose(Transaction):
    """Settle a state channel: burn spent DC, refund the rest (§3)."""

    channel_id: str
    owner: Address
    oui: int
    summaries: Tuple[StateChannelSummary, ...] = field(default_factory=tuple)

    @property
    def total_packets(self) -> int:
        """Packets paid for across all hotspots in this closing."""
        return sum(s.num_packets for s in self.summaries)

    @property
    def total_dcs(self) -> int:
        """DC burned by this closing."""
        return sum(s.num_dcs for s in self.summaries)


@dataclass(frozen=True, slots=True)
class Payment(Transaction):
    """HNT payment between wallets (bones)."""

    payer: Address
    payee: Address
    amount_bones: int
    fee_dc: int = 0

    def __post_init__(self) -> None:
        if self.amount_bones <= 0:
            raise TransactionError("payment amount must be positive")
        if self.payer == self.payee:
            raise TransactionError("cannot pay yourself")


@dataclass(frozen=True, slots=True)
class TokenBurn(Transaction):
    """Burn HNT to mint DC into a wallet (§2.4, §5.2).

    ``payee`` lets a user fund the Console's wallet with their own burn —
    "users can either burn their own HNT with the Console wallet as the
    destination — a transaction which is visible per-user".
    """

    payer: Address
    payee: Address
    amount_bones: int
    memo: str = ""

    def __post_init__(self) -> None:
        if self.amount_bones <= 0:
            raise TransactionError("burn amount must be positive")


@dataclass(frozen=True, slots=True)
class OuiRegistration(Transaction):
    """Purchase an Organizationally Unique Identifier for a router (§2.2)."""

    oui: int
    owner: Address
    fee_dc: int = 0
    filter_size: int = 1

    def __post_init__(self) -> None:
        if self.oui < 1:
            raise TransactionError(f"OUI must be >= 1, got {self.oui}")


class RewardType(Enum):
    """Why an HNT reward was minted."""

    POC_CHALLENGER = "poc_challenger"
    POC_CHALLENGEE = "poc_challengee"
    POC_WITNESS = "poc_witness"
    DATA_TRANSFER = "data_transfer"
    CONSENSUS = "consensus"
    SECURITY = "security"


@dataclass(frozen=True, slots=True)
class RewardShare:
    """One account/gateway's share of an epoch's minted HNT."""

    account: Address
    gateway: Optional[Address]
    amount_bones: int
    reward_type: RewardType

    def __post_init__(self) -> None:
        if self.amount_bones < 0:
            raise TransactionError("reward cannot be negative")


@dataclass(frozen=True, slots=True)
class Rewards(Transaction):
    """Epoch reward minting transaction."""

    epoch_start_block: int
    epoch_end_block: int
    shares: Tuple[RewardShare, ...] = field(default_factory=tuple)

    @property
    def total_bones(self) -> int:
        """Total HNT minted by this epoch, in bones."""
        return sum(s.amount_bones for s in self.shares)


_KIND_BY_TYPE = {
    AddGateway: "add_gateway",
    AssertLocation: "assert_location",
    TransferHotspot: "transfer_hotspot",
    PocRequest: "poc_request",
    PocReceipts: "poc_receipts",
    StateChannelOpen: "state_channel_open",
    StateChannelClose: "state_channel_close",
    Payment: "payment",
    TokenBurn: "token_burn",
    OuiRegistration: "oui",
    Rewards: "rewards",
}
