"""Chain serialization: JSONL dump and load.

The paper's methodology notes that "anyone can download and parse the
blockchain" (§3); the DeWi database is an ETL of exactly such dumps. This
module provides the equivalent for the simulated chain: a line-per-block
JSON format that round-trips every transaction type, so analyses can run
against dumped chains without re-simulating (and external tools can
consume them).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import IO, Any, Dict, Iterator, Type, Union

from repro import units
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.chain.transactions import (
    AddGateway,
    AssertLocation,
    OuiRegistration,
    Payment,
    PocReceipts,
    PocRequest,
    Rewards,
    RewardShare,
    RewardType,
    StateChannelClose,
    StateChannelOpen,
    StateChannelSummary,
    TokenBurn,
    Transaction,
    TransferHotspot,
    WitnessReport,
)
from repro.chain.varmap import ChainVars
from repro.errors import ChainError

__all__ = [
    "block_from_record",
    "block_record_text",
    "dump_chain",
    "load_chain",
    "transaction_to_dict",
    "transaction_from_dict",
]

_TXN_TYPES: Dict[str, Type[Transaction]] = {
    "add_gateway": AddGateway,
    "assert_location": AssertLocation,
    "transfer_hotspot": TransferHotspot,
    "poc_request": PocRequest,
    "poc_receipts": PocReceipts,
    "state_channel_open": StateChannelOpen,
    "state_channel_close": StateChannelClose,
    "payment": Payment,
    "token_burn": TokenBurn,
    "oui": OuiRegistration,
    "rewards": Rewards,
}


_FIELD_NAMES: Dict[type, tuple] = {}


def transaction_to_dict(txn: Transaction) -> Dict[str, Any]:
    """Serialise one transaction to a JSON-compatible dict."""
    payload = _dataclass_out(txn)
    payload["type"] = txn.kind
    return payload


def _dataclass_out(obj: Any) -> Dict[str, Any]:
    # Hand-rolled ``dataclasses.asdict`` (same field order, same nested
    # conversion) minus its deep-copy machinery: chain dumps are hot —
    # they run inside every day-level checkpoint save.
    names = _FIELD_NAMES.get(type(obj))
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(obj))
        _FIELD_NAMES[type(obj)] = names
    return {name: _convert_out(getattr(obj, name)) for name in names}


def _convert_out(value: Any) -> Any:
    if isinstance(value, RewardType):
        return value.value
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {k: _convert_out(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_convert_out(v) for v in value]
    if dataclasses.is_dataclass(value):
        return _dataclass_out(value)
    return value


def transaction_from_dict(payload: Dict[str, Any]) -> Transaction:
    """Reconstruct a transaction from :func:`transaction_to_dict` output.

    Raises:
        ChainError: for unknown or malformed payloads.
    """
    kind = payload.get("type")
    txn_type = _TXN_TYPES.get(kind)  # type: ignore[arg-type]
    if txn_type is None:
        raise ChainError(f"unknown transaction type in dump: {kind!r}")
    fields = {k: v for k, v in payload.items() if k != "type"}
    try:
        if txn_type is PocReceipts:
            fields["witnesses"] = tuple(
                WitnessReport(**w) for w in fields.get("witnesses", [])
            )
        elif txn_type in (StateChannelClose,):
            fields["summaries"] = tuple(
                StateChannelSummary(**s) for s in fields.get("summaries", [])
            )
        elif txn_type is Rewards:
            fields["shares"] = tuple(
                RewardShare(
                    account=s["account"],
                    gateway=s.get("gateway"),
                    amount_bones=s["amount_bones"],
                    reward_type=RewardType(s["reward_type"]),
                )
                for s in fields.get("shares", [])
            )
        return txn_type(**fields)
    except (TypeError, KeyError, ValueError) as exc:
        raise ChainError(f"malformed {kind} payload: {exc}") from exc


def block_record_text(block: Block) -> str:
    """One block's exact dump line (compact JSON + newline).

    This is the canonical byte representation everywhere: JSONL dumps
    concatenate these lines, and :mod:`repro.chain.chainlog` frames
    store exactly these bytes as payloads — which is why a log-backed
    chain dumps byte-identically to a resident one.
    """
    record = {
        "height": block.height,
        "time": block.unix_time,
        "prev_hash": block.prev_hash,
        "transactions": [
            transaction_to_dict(t) for t in block.transactions
        ],
    }
    return json.dumps(record, separators=(",", ":")) + "\n"


def block_from_record(record: Dict[str, Any]) -> Block:
    """Reconstruct a trusted block view from one dump record.

    The parent hash is taken from the record (the ``validate=False``
    contract); the block's own hash recomputes lazily to the identical
    value, since transactions round-trip ``repr``-exactly.
    """
    try:
        height = int(record["height"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ChainError(f"malformed block record: {record!r}") from exc
    return Block(
        height=height,
        unix_time=int(record.get("time", units.block_to_unix_time(height))),
        prev_hash=record.get("prev_hash", ""),
        transactions=tuple(
            transaction_from_dict(p) for p in record.get("transactions", [])
        ),
    )


def dump_chain(
    chain: Blockchain,
    destination: Union[str, Path, IO[str]],
    start: int = 0,
) -> int:
    """Write the chain as JSONL (one block per line). Returns line count.

    The genesis block is included so a load reproduces heights exactly.
    ``start`` skips the first ``start`` materialised blocks — the chain
    is append-only, so incremental writers (day-level checkpoints) reuse
    the bytes they already wrote for that prefix and pass a handle
    opened in append mode for the rest.

    Spilled blocks (chain-log residency) are copied byte-for-byte from
    their frames without materialising the objects.
    """
    def _write(handle: IO[str]) -> int:
        lines = 0
        for text in chain.blocks.iter_record_texts(start):
            handle.write(text)
            lines += 1
        return lines

    if hasattr(destination, "write"):
        return _write(destination)  # type: ignore[arg-type]
    with open(destination, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
        return _write(handle)


def _iter_records(source: Union[str, Path, IO[str]]) -> Iterator[Dict[str, Any]]:
    if hasattr(source, "read"):
        for line in source:  # type: ignore[union-attr]
            if line.strip():
                yield json.loads(line)
        return
    with open(source, "r", encoding="utf-8") as handle:  # type: ignore[arg-type]
        for line in handle:
            if line.strip():
                yield json.loads(line)


def load_chain(
    source: Union[str, Path, IO[str]],
    vars: ChainVars = ChainVars(),
    validate: bool = True,
) -> Blockchain:
    """Rebuild a chain from a JSONL dump, replaying every transaction.

    With ``validate=True`` (the default) every block goes through the
    normal mint path, which recomputes each parent hash and re-validates
    everything, so a tampered dump fails loudly rather than producing
    silent corruption.

    With ``validate=False`` blocks are reconstructed directly from the
    dumped fields: transactions still replay through the ledger (so the
    folded state is identical), but the parent hash is trusted from the
    dump instead of being recomputed over the whole parent block. Block
    hashes remain lazily computable to the exact same values. This path
    is several times faster on large dumps and is what the persistent
    scenario cache uses for its own trusted files.

    Raises:
        ChainError: on malformed records, height disorder, or any
            transaction that no longer validates.
    """
    chain = Blockchain(vars)
    for record in _iter_records(source):
        try:
            height = int(record["height"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ChainError(f"malformed block record: {record!r}") from exc
        if height == 0:
            continue  # genesis is implicit
        txns = [transaction_from_dict(p) for p in record.get("transactions", [])]
        # Replay any DC/HNT credits implicitly: dumps produced by the
        # simulation engine already embed funding via burns/rewards, but
        # fee-bearing transactions need their payers solvent. We credit
        # exactly the fees/stakes required, which preserves burn totals.
        for txn in txns:
            _prefund(chain, txn)
        if validate:
            chain.submit_many(txns)
            chain.mint_block(height)
        else:
            if height <= chain.height:
                raise ChainError(
                    f"block height must increase: tip={chain.height}, "
                    f"asked={height}"
                )
            for txn in txns:
                chain.ledger.apply(txn, height)
            chain._append_block(Block(
                height=height,
                unix_time=int(
                    record.get("time", units.block_to_unix_time(height))
                ),
                prev_hash=record.get("prev_hash", ""),
                transactions=tuple(txns),
            ))
    return chain


def _prefund(chain: Blockchain, txn: Transaction) -> None:
    """Credit the DC a transaction is about to spend (dump replay aid)."""
    ledger = chain.ledger
    if isinstance(txn, AssertLocation) and txn.fee_dc:
        ledger.credit_dc(txn.payer or txn.owner, txn.fee_dc)
    elif isinstance(txn, AddGateway) and txn.fee_dc:
        ledger.credit_dc(txn.payer or txn.owner, txn.fee_dc)
    elif isinstance(txn, OuiRegistration) and txn.fee_dc:
        ledger.credit_dc(txn.owner, txn.fee_dc)
    elif isinstance(txn, StateChannelOpen):
        ledger.credit_dc(txn.owner, txn.amount_dc)
    elif isinstance(txn, TransferHotspot) and txn.amount_dc:
        ledger.credit_dc(txn.buyer, txn.amount_dc)
