"""Append-to-disk chain log: framed, digest-chained block records.

The resident-object chain (:class:`~repro.chain.blockchain.Blockchain`
holding every :class:`~repro.chain.block.Block` as live Python objects)
dominates RSS at scale: receipts, witnesses and per-day reward shares
are small dataclasses, but two simulated years of them add up to
gigabytes at the 100× tier. Real DePIN measurement pipelines never hold
the chain resident — the DeWi ETL the paper relies on treats the chain
as an append-only on-disk log that analyses *tail*. This module is that
representation for the simulated chain:

* **Frames.** The log is a magic header followed by one frame per
  block: a fixed 20-byte frame header (little-endian ``u32`` payload
  length, ``u64`` block height, 8-byte chained digest) and the payload.
  The payload is byte-for-byte the JSONL line
  :func:`repro.chain.serialize.dump_chain` writes for that block —
  including the trailing newline — so dumping a log-backed chain is a
  straight byte copy and every pinned digest is unchanged *by
  construction*, not by re-serialization luck.
* **Digest chain.** Frame *i* carries
  ``sha256(digest8(i-1) + payload_i)[:8]``, seeded from the file magic.
  A reader that walks the chain verifies every frame's link; any
  corruption (or a frame spliced in from another run) breaks the chain
  at the exact frame.
* **Torn tails.** A crash mid-append leaves a partial final frame.
  :meth:`ChainLog.open` detects it — a header that does not fit, a
  payload shorter than its declared length, or a digest-chain break —
  and either raises :class:`ChainLogError` or, with ``recover=True``,
  truncates the file back to the last intact frame. A torn tail is
  never silently skipped.
* **Random access.** Frames are indexed in memory as ``(offset,
  length)`` pairs; :meth:`payload` is one ``os.pread``, so lazily
  materialising block *i* never touches the rest of the file.

The default constructor backs the log with an anonymous unlinked
temporary file: the descriptor keeps the bytes alive for the run and
the kernel reclaims them when the process exits, crash included.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple, Union

from repro.errors import ChainError

__all__ = [
    "CHAINLOG_MAGIC",
    "ChainLog",
    "ChainLogError",
    "encode_frame",
    "seed_digest",
]

#: File magic: identifies a framed chain log and versions the layout.
CHAINLOG_MAGIC = b"RPCHLOG1"

_FRAME_HEADER = struct.Struct("<IQ8s")
FRAME_HEADER_SIZE = _FRAME_HEADER.size  # 20 bytes

#: Materialised-block LRU size used by log-backed block sequences.
#: Small on purpose: the working set of a day-loop consumer is the tip,
#: and analyses stream forward, so a handful of slots absorbs the
#: re-read patterns that matter without re-growing the object graph.
BLOCK_CACHE_SLOTS = 64


class ChainLogError(ChainError):
    """A structurally invalid, corrupt, or torn chain log."""


def seed_digest() -> bytes:
    """The digest-chain seed (the link "before" the first frame)."""
    return hashlib.sha256(CHAINLOG_MAGIC).digest()[:8]


def encode_frame(
    height: int, payload: bytes, prev_digest: bytes
) -> Tuple[bytes, bytes]:
    """Encode one frame; returns ``(frame_bytes, digest8)``.

    ``digest8`` chains over ``prev_digest`` and the payload, so two
    logs holding the same block prefix are byte-identical.
    """
    digest = hashlib.sha256(prev_digest + payload).digest()[:8]
    header = _FRAME_HEADER.pack(len(payload), height, digest)
    return header + payload, digest


class ChainLog:
    """One append-only framed record log plus its in-memory frame index.

    Appends go through :meth:`append` (payload serialization) or
    :meth:`append_frame` (verified raw bytes, used when seeding a run
    log from a checkpoint); reads are positional and stateless.
    """

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        if path is None:
            fd, tmp_path = tempfile.mkstemp(prefix="repro-chainlog-")
            os.unlink(tmp_path)  # anonymous: vanishes with the fd
            self.path: Optional[str] = None
        else:
            self.path = str(path)
            fd = os.open(
                self.path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644
            )
        self._fd = fd
        os.write(self._fd, CHAINLOG_MAGIC)
        self.size = len(CHAINLOG_MAGIC)
        self.tail_digest = seed_digest()
        self._offsets: List[int] = []
        self._lengths: List[int] = []
        self.heights: List[int] = []

    # -- append ------------------------------------------------------------

    def append(self, height: int, payload: bytes) -> None:
        """Append one block's payload as the next frame."""
        frame, digest = encode_frame(height, payload, self.tail_digest)
        os.write(self._fd, frame)
        self._offsets.append(self.size)
        self._lengths.append(len(payload))
        self.heights.append(height)
        self.size += len(frame)
        self.tail_digest = digest

    def append_frame(self, frame: bytes, height: int, digest: bytes) -> None:
        """Append pre-encoded frame bytes whose chain digest the caller
        has already verified (checkpoint load seeds the run log this
        way — the scan just proved every link)."""
        os.write(self._fd, frame)
        self._offsets.append(self.size)
        self._lengths.append(len(frame) - FRAME_HEADER_SIZE)
        self.heights.append(height)
        self.size += len(frame)
        self.tail_digest = digest

    # -- read --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._offsets)

    def payload(self, index: int) -> bytes:
        """The payload bytes of frame ``index`` (one positional read)."""
        offset = self._offsets[index]
        length = self._lengths[index]
        data = os.pread(
            self._fd, FRAME_HEADER_SIZE + length, offset
        )
        if len(data) != FRAME_HEADER_SIZE + length:
            raise ChainLogError(
                f"short read at frame {index} (offset {offset})"
            )
        return data[FRAME_HEADER_SIZE:]

    def frame_bytes(self, index: int) -> bytes:
        """Raw frame bytes (header + payload) of frame ``index``."""
        offset = self._offsets[index]
        length = FRAME_HEADER_SIZE + self._lengths[index]
        data = os.pread(self._fd, length, offset)
        if len(data) != length:
            raise ChainLogError(
                f"short read at frame {index} (offset {offset})"
            )
        return data

    def digest_at(self, index: int) -> bytes:
        """The chained digest carried by frame ``index``."""
        header = os.pread(self._fd, FRAME_HEADER_SIZE, self._offsets[index])
        return _FRAME_HEADER.unpack(header)[2]

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except OSError:
            pass

    # -- open / recover ----------------------------------------------------

    @classmethod
    def open(
        cls, path: Union[str, Path], recover: bool = False
    ) -> "ChainLog":
        """Open an existing log, verifying every frame's digest chain.

        A torn final frame (crash mid-append) raises
        :class:`ChainLogError` unless ``recover=True``, which truncates
        the file back to the last intact frame. Corruption *before* the
        tail — a broken digest link with more intact-looking frames
        after it — always raises: that is damage, not a torn append.
        """
        path = str(path)
        log = cls.__new__(cls)
        log.path = path
        log._fd = os.open(path, os.O_RDWR)
        log.size = len(CHAINLOG_MAGIC)
        log.tail_digest = seed_digest()
        log._offsets = []
        log._lengths = []
        log.heights = []
        try:
            file_size = os.fstat(log._fd).st_size
            magic = os.pread(log._fd, len(CHAINLOG_MAGIC), 0)
            if magic != CHAINLOG_MAGIC:
                raise ChainLogError(f"{path} is not a chain log (bad magic)")
            torn_at: Optional[int] = None
            offset = len(CHAINLOG_MAGIC)
            while offset < file_size:
                header = os.pread(log._fd, FRAME_HEADER_SIZE, offset)
                if len(header) < FRAME_HEADER_SIZE:
                    torn_at = offset
                    break
                length, height, digest = _FRAME_HEADER.unpack(header)
                payload = os.pread(
                    log._fd, length, offset + FRAME_HEADER_SIZE
                )
                if len(payload) < length:
                    torn_at = offset
                    break
                expected = hashlib.sha256(
                    log.tail_digest + payload
                ).digest()[:8]
                if digest != expected:
                    if offset + FRAME_HEADER_SIZE + length >= file_size:
                        # Digest-mangled final frame: recoverable tear.
                        torn_at = offset
                        break
                    raise ChainLogError(
                        f"digest chain broken at offset {offset} in {path}"
                    )
                log._offsets.append(offset)
                log._lengths.append(length)
                log.heights.append(height)
                log.tail_digest = digest
                offset += FRAME_HEADER_SIZE + length
                log.size = offset
            if torn_at is not None:
                if not recover:
                    raise ChainLogError(
                        f"torn frame at offset {torn_at} in {path} "
                        f"(file ends mid-frame); pass recover=True to "
                        f"truncate to the last intact frame"
                    )
                os.ftruncate(log._fd, log.size)
            os.lseek(log._fd, log.size, os.SEEK_SET)
        except BaseException:
            os.close(log._fd)
            log._fd = -1
            raise
        return log


def scan_frames(
    handle: IO[bytes], limit_bytes: Optional[int] = None
) -> Iterator[Tuple[bytes, int, bytes, bytes]]:
    """Stream-verify frames from ``handle`` (positioned at the magic).

    Yields ``(frame_bytes, height, payload, digest8)`` per frame,
    verifying the digest chain as it goes; consumes exactly
    ``limit_bytes`` when given (checkpoint metas record the extent —
    a hardlinked file may have grown past it). Raises
    :class:`ChainLogError` on a bad magic, a torn frame inside the
    limit, or a digest-chain break.
    """
    magic = handle.read(len(CHAINLOG_MAGIC))
    if magic != CHAINLOG_MAGIC:
        raise ChainLogError("not a chain log (bad magic)")
    consumed = len(CHAINLOG_MAGIC)
    tail = seed_digest()
    while True:
        if limit_bytes is not None and consumed >= limit_bytes:
            break
        header = handle.read(FRAME_HEADER_SIZE)
        if not header and limit_bytes is None:
            break
        if len(header) < FRAME_HEADER_SIZE:
            raise ChainLogError(
                f"torn frame header at offset {consumed}"
            )
        length, height, digest = _FRAME_HEADER.unpack(header)
        if limit_bytes is not None and (
            consumed + FRAME_HEADER_SIZE + length > limit_bytes
        ):
            raise ChainLogError(
                f"frame at offset {consumed} crosses the recorded "
                f"extent ({limit_bytes} bytes)"
            )
        payload = handle.read(length)
        if len(payload) < length:
            raise ChainLogError(f"torn frame payload at offset {consumed}")
        expected = hashlib.sha256(tail + payload).digest()[:8]
        if digest != expected:
            raise ChainLogError(
                f"digest chain broken at offset {consumed}"
            )
        yield header + payload, height, payload, digest
        tail = digest
        consumed += FRAME_HEADER_SIZE + length
