"""The blockchain: an append-only chain of blocks over a validating ledger.

Provides the iteration and filtering interface the analyses consume —
"most of our analysis stems from an examination of the history of all
transactions on the blockchain" (§3).

The chain is stored **sparsely**: the real network mints a block every
~60 s whether or not anyone transacted, but empty blocks carry no
information, so we only materialise blocks at heights that have
transactions. Height still advances on the nominal 60 s clock
(:func:`repro.units.block_to_unix_time`), and a two-year simulated history
(≈ 1 M nominal heights) stays comfortably in memory.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

from repro import units
from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.chain.transactions import Transaction
from repro.chain.varmap import ChainVars, DEFAULT_VARS
from repro.errors import ChainError

__all__ = ["Blockchain"]

T = TypeVar("T", bound=Transaction)


class Blockchain:
    """Sparse block store plus its folded ledger state.

    Callers stage transactions with :meth:`submit` and commit them with
    :meth:`mint_block`, optionally naming the nominal height at which the
    block lands. Heights must be strictly increasing.
    """

    def __init__(self, vars: ChainVars = DEFAULT_VARS) -> None:
        self.vars = vars
        self.ledger = Ledger(vars)
        self.blocks: List[Block] = [Block.genesis()]
        self._pending: List[Transaction] = []
        self._height_index: Dict[int, Block] = {0: self.blocks[0]}

    # -- chain growth ------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the latest materialised block."""
        return self.blocks[-1].height

    @property
    def tip(self) -> Block:
        """The latest materialised block."""
        return self.blocks[-1]

    def submit(self, txn: Transaction) -> None:
        """Stage a transaction for the next minted block.

        Validation happens at mint time, in order, against the ledger.
        """
        self._pending.append(txn)

    def submit_many(self, txns: Sequence[Transaction]) -> None:
        """Stage several transactions preserving their order."""
        self._pending.extend(txns)

    @property
    def pending_count(self) -> int:
        """Number of staged, not yet minted, transactions."""
        return len(self._pending)

    def mint_block(self, height: Optional[int] = None) -> Block:
        """Commit pending transactions into a block.

        Args:
            height: nominal height of the new block; defaults to the next
                height. Must exceed the current tip height.

        Raises:
            ChainError: on a non-increasing height.
            TransactionError: if a staged transaction is invalid; the
                mint aborts with the invalid transaction still staged so
                tests can inspect it. Transactions staged before it will
                already have been applied — callers that mix valid and
                deliberately-invalid transactions should mint them in
                separate blocks.
        """
        target = self.height + 1 if height is None else height
        if target <= self.height:
            raise ChainError(
                f"block height must increase: tip={self.height}, asked={target}"
            )
        applied: List[Transaction] = []
        for txn in self._pending:
            self.ledger.apply(txn, target)  # raises on invalid input
            applied.append(txn)
        block = Block(
            height=target,
            unix_time=units.block_to_unix_time(target),
            prev_hash=self.tip.hash,
            transactions=tuple(applied),
        )
        self.blocks.append(block)
        self._height_index[target] = block
        self._pending = []
        return block

    def drop_pending(self) -> List[Transaction]:
        """Discard and return staged transactions (test/debug helper)."""
        pending, self._pending = self._pending, []
        return pending

    # -- queries -----------------------------------------------------------

    def block_at(self, height: int) -> Block:
        """The materialised block at exactly ``height``."""
        block = self._height_index.get(height)
        if block is None:
            raise ChainError(f"no block at height {height} (tip={self.height})")
        return block

    def iter_transactions(
        self,
        kind: Optional[Type[T]] = None,
        start_height: int = 0,
        end_height: Optional[int] = None,
        predicate: Optional[Callable[[Transaction], bool]] = None,
    ) -> Iterator[Tuple[int, Transaction]]:
        """Yield ``(height, txn)`` pairs in chain order, filtered.

        Args:
            kind: restrict to one transaction class.
            start_height: inclusive lower bound.
            end_height: inclusive upper bound (default: the tip).
            predicate: extra filter applied after the kind filter.
        """
        stop = self.height if end_height is None else end_height
        for block in self.blocks:
            if block.height < start_height:
                continue
            if block.height > stop:
                break
            for txn in block.transactions:
                if kind is not None and not isinstance(txn, kind):
                    continue
                if predicate is not None and not predicate(txn):
                    continue
                yield block.height, txn

    def transactions_of_kind(self, kind: Type[T]) -> List[Tuple[int, T]]:
        """All ``(height, txn)`` of one class, materialised."""
        return [(h, t) for h, t in self.iter_transactions(kind)]  # type: ignore[misc]

    def count_transactions(self) -> Dict[str, int]:
        """Total applied transactions by kind (from the ledger's tally)."""
        return dict(self.ledger.txn_counts)

    @property
    def total_transactions(self) -> int:
        """Total applied transactions of any kind."""
        return sum(self.ledger.txn_counts.values())

    def time_of(self, height: int) -> int:
        """Nominal Unix timestamp of ``height``."""
        return units.block_to_unix_time(height)

    def __len__(self) -> int:
        """Number of materialised (non-empty + genesis) blocks."""
        return len(self.blocks)
