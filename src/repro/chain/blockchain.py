"""The blockchain: an append-only chain of blocks over a validating ledger.

Provides the iteration and filtering interface the analyses consume —
"most of our analysis stems from an examination of the history of all
transactions on the blockchain" (§3).

The chain is stored **sparsely**: the real network mints a block every
~60 s whether or not anyone transacted, but empty blocks carry no
information, so we only materialise blocks at heights that have
transactions. Height still advances on the nominal 60 s clock
(:func:`repro.units.block_to_unix_time`).

Residency is a second, orthogonal axis: ``chain.blocks`` is a
:class:`BlockSequence` whose finalized prefix may be **spilled** to an
append-to-disk :class:`~repro.chain.chainlog.ChainLog` (frame *i* holds
block position *i*'s exact dump bytes). Spilled blocks materialise
lazily as view objects on access, through a small LRU, so analyses and
the ETL read the same ``Block`` values whether or not the object graph
is resident — only the peak RSS differs.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

from repro import units
from repro.chain.block import Block
from repro.chain.chainlog import BLOCK_CACHE_SLOTS, ChainLog, encode_frame
from repro.chain.ledger import Ledger
from repro.chain.transactions import Transaction
from repro.chain.varmap import ChainVars, DEFAULT_VARS
from repro.errors import ChainError

__all__ = ["BlockSequence", "Blockchain"]

T = TypeVar("T", bound=Transaction)


class BlockSequence:
    """List-like block store whose finalized prefix can live on disk.

    Positions ``[0, spilled)`` have a frame in the attached
    :class:`ChainLog`; their slots may be ``None`` (evicted) and
    materialise on access. Positions at and past ``spilled`` are always
    resident. Without an attached log every slot is resident and this
    behaves exactly like the old ``List[Block]``.
    """

    __slots__ = ("_slots", "_log", "_spilled", "_evicted_to", "_cache")

    def __init__(self) -> None:
        self._slots: List[Optional[Block]] = []
        self._log: Optional[ChainLog] = None
        #: Frames present in the log == positions [0, _spilled).
        self._spilled = 0
        #: Positions below this are all evicted (slot is None).
        self._evicted_to = 0
        self._cache: "OrderedDict[int, Block]" = OrderedDict()

    # -- list surface ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def append(self, block: Block) -> None:
        self._slots.append(block)

    def __iter__(self) -> Iterator[Block]:
        for position in range(len(self._slots)):
            yield self[position]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._slots)))]
        if index < 0:
            index += len(self._slots)
        block = self._slots[index]
        if block is None:
            block = self._materialize(index)
        return block

    # -- log plumbing ------------------------------------------------------

    @property
    def log(self) -> Optional[ChainLog]:
        return self._log

    def attach_log(self, log: ChainLog) -> None:
        """Attach the append-to-disk log evictions spill into.

        The log must describe this sequence's prefix: empty for a fresh
        attach, or (checkpoint resume) holding one frame per existing
        position.
        """
        if self._log is not None and self._log is not log:
            raise ChainError("chain already has a different log attached")
        if len(log) not in (0, len(self._slots)):
            raise ChainError(
                f"log holds {len(log)} frames for {len(self._slots)} blocks"
            )
        self._log = log
        self._spilled = len(log)

    def evict_finalized(self, keep_tail: int = 1) -> int:
        """Spill finalized blocks to the log and drop their objects.

        Keeps the last ``keep_tail`` blocks resident (the tip's hash
        seeds the next mint). Returns the number of slots evicted. A
        no-op without an attached log.
        """
        if self._log is None:
            return 0
        # Import here: serialize imports this module at load time.
        from repro.chain.serialize import block_record_text

        limit = max(len(self._slots) - keep_tail, 0)
        evicted = 0
        for position in range(self._evicted_to, limit):
            block = self._slots[position]
            if position >= self._spilled:
                self._log.append(
                    block.height,
                    block_record_text(block).encode("utf-8"),
                )
                self._spilled = position + 1
            if block is not None:
                self._slots[position] = None
                evicted += 1
        self._evicted_to = max(self._evicted_to, limit)
        return evicted

    def append_spilled(self, height: int) -> None:
        """Register a position whose bytes are already in the log
        (streaming checkpoint load: the frame was just byte-copied)."""
        if self._log is None or len(self._log) != len(self._slots) + 1:
            raise ChainError("append_spilled needs the frame in the log")
        self._slots.append(None)
        self._spilled = len(self._slots)
        self._evicted_to = self._spilled

    def keep_resident(self, position: int) -> Block:
        """Materialise ``position`` and pin it back into its slot (used
        for the tip after a streaming load)."""
        block = self[position]
        self._slots[position] = block
        # Let the next eviction sweep drop it again once it is no
        # longer the tip.
        self._evicted_to = min(self._evicted_to, position)
        return block

    def _materialize(self, position: int) -> Block:
        cached = self._cache.get(position)
        if cached is not None:
            self._cache.move_to_end(position)
            return cached
        if self._log is None or position >= self._spilled:
            raise ChainError(f"block at position {position} unavailable")
        from repro.chain.serialize import block_from_record

        block = block_from_record(
            json.loads(self._log.payload(position))
        )
        self._cache[position] = block
        if len(self._cache) > BLOCK_CACHE_SLOTS:
            self._cache.popitem(last=False)
        return block

    # -- serialization support --------------------------------------------

    def iter_record_texts(self, start: int = 0) -> Iterator[str]:
        """Yield each block's exact JSONL dump line (with newline) from
        position ``start`` — spilled positions as a straight byte copy,
        resident ones serialized; the concatenation is byte-identical
        either way."""
        from repro.chain.serialize import block_record_text

        for position in range(start, len(self._slots)):
            if position < self._spilled and self._slots[position] is None:
                yield self._log.payload(position).decode("utf-8")
            else:
                yield block_record_text(self[position])

    def iter_frames(
        self, start: int, tail_digest: bytes
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(frame_bytes, digest8)`` per block from position
        ``start``, continuing the digest chain from ``tail_digest``
        (which must be the chain state after frame ``start - 1``).
        Spilled positions are raw copies from the log; resident ones
        are encoded fresh — the chaining is deterministic, so both
        produce identical bytes."""
        from repro.chain.serialize import block_record_text

        for position in range(start, len(self._slots)):
            if position < self._spilled:
                frame = self._log.frame_bytes(position)
                digest = frame[12:20]
            else:
                frame, digest = encode_frame(
                    self._slots[position].height,
                    block_record_text(self._slots[position]).encode("utf-8"),
                    tail_digest,
                )
            tail_digest = digest
            yield frame, digest


class Blockchain:
    """Sparse block store plus its folded ledger state.

    Callers stage transactions with :meth:`submit` and commit them with
    :meth:`mint_block`, optionally naming the nominal height at which the
    block lands. Heights must be strictly increasing.
    """

    def __init__(self, vars: ChainVars = DEFAULT_VARS) -> None:
        self.vars = vars
        self.ledger = Ledger(vars)
        self.blocks = BlockSequence()
        self.blocks.append(Block.genesis())
        self._pending: List[Transaction] = []
        #: height -> position in ``blocks`` (positions are stable: the
        #: chain is append-only).
        self._height_index: Dict[int, int] = {0: 0}
        #: Materialised heights in ascending order (bisect support).
        self._heights: List[int] = [0]

    # -- chain growth ------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the latest materialised block."""
        return self._heights[-1]

    @property
    def tip(self) -> Block:
        """The latest materialised block."""
        return self.blocks[-1]

    def submit(self, txn: Transaction) -> None:
        """Stage a transaction for the next minted block.

        Validation happens at mint time, in order, against the ledger.
        """
        self._pending.append(txn)

    def submit_many(self, txns: Sequence[Transaction]) -> None:
        """Stage several transactions preserving their order."""
        self._pending.extend(txns)

    @property
    def pending_count(self) -> int:
        """Number of staged, not yet minted, transactions."""
        return len(self._pending)

    def mint_block(self, height: Optional[int] = None) -> Block:
        """Commit pending transactions into a block.

        Args:
            height: nominal height of the new block; defaults to the next
                height. Must exceed the current tip height.

        Raises:
            ChainError: on a non-increasing height.
            TransactionError: if a staged transaction is invalid; the
                mint aborts with the invalid transaction still staged so
                tests can inspect it. Transactions staged before it will
                already have been applied — callers that mix valid and
                deliberately-invalid transactions should mint them in
                separate blocks.
        """
        target = self.height + 1 if height is None else height
        if target <= self.height:
            raise ChainError(
                f"block height must increase: tip={self.height}, asked={target}"
            )
        applied: List[Transaction] = []
        for txn in self._pending:
            self.ledger.apply(txn, target)  # raises on invalid input
            applied.append(txn)
        block = Block(
            height=target,
            unix_time=units.block_to_unix_time(target),
            prev_hash=self.tip.hash,
            transactions=tuple(applied),
        )
        self._append_block(block)
        self._pending = []
        return block

    def _append_block(self, block: Block) -> None:
        """Register a new tip block (mint and trusted-load paths)."""
        self._height_index[block.height] = len(self.blocks)
        self._heights.append(block.height)
        self.blocks.append(block)

    def _append_spilled(self, height: int) -> None:
        """Register a new tip whose bytes are already in the attached
        log (streaming checkpoint load byte-copies the frame first)."""
        self._height_index[height] = len(self.blocks)
        self._heights.append(height)
        self.blocks.append_spilled(height)

    def drop_pending(self) -> List[Transaction]:
        """Discard and return staged transactions (test/debug helper)."""
        pending, self._pending = self._pending, []
        return pending

    # -- residency ---------------------------------------------------------

    @property
    def chain_log(self) -> Optional["ChainLog"]:
        """The attached append-to-disk log, if any."""
        return self.blocks.log

    def attach_log(self, log: ChainLog) -> None:
        """Attach an append-to-disk log; finalized blocks spill into it
        on :meth:`evict_finalized` and materialise lazily on access."""
        self.blocks.attach_log(log)

    def evict_finalized(self, keep_tail: int = 1) -> int:
        """Spill finalized blocks to the attached log (no-op without
        one); the chain's observable values are unchanged."""
        return self.blocks.evict_finalized(keep_tail)

    # -- queries -----------------------------------------------------------

    def block_at(self, height: int) -> Block:
        """The materialised block at exactly ``height``."""
        position = self._height_index.get(height)
        if position is None:
            raise ChainError(f"no block at height {height} (tip={self.height})")
        return self.blocks[position]

    def position_after(self, height: int) -> int:
        """The position of the first block with height > ``height``."""
        return bisect_right(self._heights, height)

    def iter_blocks(self, start_height: int = 0) -> Iterator[Block]:
        """Yield blocks with height >= ``start_height`` in chain order,
        materialising one at a time (the ETL tail path)."""
        for position in range(
            bisect_left(self._heights, start_height), len(self._heights)
        ):
            yield self.blocks[position]

    def iter_transactions(
        self,
        kind: Optional[Type[T]] = None,
        start_height: int = 0,
        end_height: Optional[int] = None,
        predicate: Optional[Callable[[Transaction], bool]] = None,
    ) -> Iterator[Tuple[int, Transaction]]:
        """Yield ``(height, txn)`` pairs in chain order, filtered.

        Args:
            kind: restrict to one transaction class.
            start_height: inclusive lower bound.
            end_height: inclusive upper bound (default: the tip).
            predicate: extra filter applied after the kind filter.
        """
        stop = self.height if end_height is None else end_height
        for position in range(
            bisect_left(self._heights, start_height), len(self._heights)
        ):
            if self._heights[position] > stop:
                break
            block = self.blocks[position]
            for txn in block.transactions:
                if kind is not None and not isinstance(txn, kind):
                    continue
                if predicate is not None and not predicate(txn):
                    continue
                yield block.height, txn

    def transactions_of_kind(self, kind: Type[T]) -> List[Tuple[int, T]]:
        """All ``(height, txn)`` of one class, materialised."""
        return [(h, t) for h, t in self.iter_transactions(kind)]  # type: ignore[misc]

    def count_transactions(self) -> Dict[str, int]:
        """Total applied transactions by kind (from the ledger's tally)."""
        return dict(self.ledger.txn_counts)

    @property
    def total_transactions(self) -> int:
        """Total applied transactions of any kind."""
        return sum(self.ledger.txn_counts.values())

    def time_of(self, height: int) -> int:
        """Nominal Unix timestamp of ``height``."""
        return units.block_to_unix_time(height)

    def __len__(self) -> int:
        """Number of materialised (non-empty + genesis) blocks."""
        return len(self.blocks)
