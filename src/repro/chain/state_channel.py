"""Runtime state-channel bookkeeping between open and close (§5.1).

A :class:`StateChannelTracker` is the router-side object that lives while
a channel is open: it records signed purchases per hotspot, enforces the
stake ceiling, and emits the closing transaction. It also models the two
failure paths the paper describes:

* a router omitting a hotspot it promised to pay → the hotspot files a
  *signed demand* within the 10-block grace period and the closing is
  amended;
* a hotspot lying about having sent data → the router adds it to a
  blocklist and "not make[s] future offers to purchase its packets".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.chain.crypto import Address
from repro.chain.transactions import StateChannelClose, StateChannelSummary
from repro.errors import StateChannelError

__all__ = ["PurchaseRecord", "StateChannelTracker"]


@dataclass
class PurchaseRecord:
    """Running totals for one hotspot within one channel."""

    packets: int = 0
    dcs: int = 0


@dataclass
class StateChannelTracker:
    """Off-chain ledger of one open state channel.

    Args:
        channel_id: id used in the open transaction.
        owner: router wallet that staked the DC.
        oui: router organisation id.
        amount_dc: staked ceiling; purchases beyond it are refused.
        open_block: height of the open transaction.
        expire_block: height after which the channel must close.
    """

    channel_id: str
    owner: Address
    oui: int
    amount_dc: int
    open_block: int
    expire_block: int
    purchases: Dict[Address, PurchaseRecord] = field(default_factory=dict)
    blocklist: Set[Address] = field(default_factory=set)
    _spent: int = 0

    @property
    def spent_dc(self) -> int:
        """DC committed to purchases so far."""
        return self._spent

    @property
    def remaining_dc(self) -> int:
        """Stake left to spend."""
        return self.amount_dc - self._spent

    def can_purchase(self, hotspot: Address, dcs: int) -> bool:
        """Whether a purchase from ``hotspot`` for ``dcs`` would be accepted."""
        return hotspot not in self.blocklist and dcs <= self.remaining_dc

    def record_purchase(self, hotspot: Address, packets: int = 1, dcs: int = 1) -> None:
        """Record a signed offer-to-buy that the hotspot honoured.

        Raises:
            StateChannelError: for blocklisted hotspots or overspend.
        """
        if hotspot in self.blocklist:
            raise StateChannelError(
                f"{hotspot} is blocklisted on channel {self.channel_id}"
            )
        if dcs > self.remaining_dc:
            raise StateChannelError(
                f"channel {self.channel_id} stake exhausted: "
                f"{dcs} > {self.remaining_dc} remaining"
            )
        record = self.purchases.setdefault(hotspot, PurchaseRecord())
        record.packets += packets
        record.dcs += dcs
        self._spent += dcs

    def block_hotspot(self, hotspot: Address) -> None:
        """Stop buying from a hotspot caught lying about sent data (§5.1)."""
        self.blocklist.add(hotspot)

    def build_close(
        self, omit: Set[Address] = frozenset()
    ) -> StateChannelClose:
        """The closing transaction, optionally omitting some hotspots.

        ``omit`` models a router leaving out offers whose packets never
        arrived; an omitted hotspot that *did* deliver can later amend
        the closing via :meth:`amend_close`.
        """
        summaries = tuple(
            StateChannelSummary(hotspot=hs, num_packets=rec.packets, num_dcs=rec.dcs)
            for hs, rec in sorted(self.purchases.items())
            if hs not in omit
        )
        return StateChannelClose(
            channel_id=self.channel_id,
            owner=self.owner,
            oui=self.oui,
            summaries=summaries,
        )

    def amend_close(
        self,
        close: StateChannelClose,
        demands: Dict[Address, PurchaseRecord],
        demand_block: int,
        close_block: int,
        grace_blocks: int = 10,
    ) -> StateChannelClose:
        """Apply hotspots' signed demands to an under-reporting closing.

        "there is a 10-block grace period for the hotspot to submit a
        signed demand that amends the closing" (§5.1). Demands after the
        grace period are rejected.

        Raises:
            StateChannelError: if the demand arrives too late or the
                amended total would exceed the stake.
        """
        if demand_block > close_block + grace_blocks:
            raise StateChannelError(
                f"demand at block {demand_block} outside grace window "
                f"(close {close_block} + {grace_blocks})"
            )
        merged: Dict[Address, StateChannelSummary] = {
            s.hotspot: s for s in close.summaries
        }
        for hotspot, record in demands.items():
            existing = merged.get(hotspot)
            packets = record.packets + (existing.num_packets if existing else 0)
            dcs = record.dcs + (existing.num_dcs if existing else 0)
            merged[hotspot] = StateChannelSummary(
                hotspot=hotspot, num_packets=packets, num_dcs=dcs
            )
        total = sum(s.num_dcs for s in merged.values())
        if total > self.amount_dc:
            raise StateChannelError(
                f"amended closing spends {total} DC > stake {self.amount_dc}"
            )
        return StateChannelClose(
            channel_id=self.channel_id,
            owner=self.owner,
            oui=self.oui,
            summaries=tuple(merged[h] for h in sorted(merged)),
        )
