"""Helium-style three-word hotspot names.

Helium derives a human-readable "Adjective Color Animal" name from each
hotspot's public key (e.g. the paper's pseudonymous "Joyful Pink Skunk"
and "Striped Yellow Bird", §7.1). We reproduce the scheme: the name is a
pure function of the hotspot address, so analyses can use names and
addresses interchangeably.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

__all__ = ["hotspot_name", "ADJECTIVES", "COLORS", "ANIMALS"]

ADJECTIVES: Tuple[str, ...] = (
    "Joyful", "Striped", "Brave", "Quiet", "Rapid", "Gentle", "Clever",
    "Mellow", "Fierce", "Sunny", "Frosty", "Ancient", "Bold", "Calm",
    "Dapper", "Eager", "Fluffy", "Glorious", "Hidden", "Icy", "Jolly",
    "Keen", "Lively", "Mighty", "Noble", "Odd", "Proud", "Quick",
    "Rustic", "Sleepy", "Tiny", "Upbeat", "Vivid", "Wild", "Young",
    "Zesty", "Breezy", "Crispy", "Dizzy", "Electric", "Fancy", "Giant",
    "Humble", "Itchy", "Jumpy", "Kind", "Loud", "Modern", "Nimble",
    "Obedient", "Polished", "Quaint", "Rough", "Smooth", "Tangy",
    "Unique", "Velvet", "Warm", "Xenial", "Yummy", "Zigzag", "Amateur",
    "Blunt", "Chubby", "Dandy",
)

COLORS: Tuple[str, ...] = (
    "Pink", "Yellow", "Crimson", "Azure", "Emerald", "Ivory", "Jade",
    "Lavender", "Maroon", "Navy", "Olive", "Pearl", "Ruby", "Sapphire",
    "Teal", "Umber", "Violet", "White", "Amber", "Bronze", "Copper",
    "Denim", "Ebony", "Fuchsia", "Gold", "Hazel", "Indigo", "Khaki",
    "Lime", "Magenta", "Obsidian", "Peach",
)

ANIMALS: Tuple[str, ...] = (
    "Skunk", "Bird", "Otter", "Falcon", "Badger", "Cobra", "Dolphin",
    "Elk", "Ferret", "Gecko", "Heron", "Ibex", "Jaguar", "Koala",
    "Lemur", "Mole", "Newt", "Ocelot", "Panther", "Quail", "Raccoon",
    "Seal", "Tapir", "Urchin", "Vulture", "Walrus", "Yak", "Zebra",
    "Armadillo", "Bison", "Crane", "Dragonfly", "Eagle", "Fox",
    "Giraffe", "Hamster", "Iguana", "Jellyfish", "Kangaroo", "Llama",
    "Mantis", "Narwhal", "Octopus", "Penguin", "Rooster", "Shark",
    "Tortoise", "Unicorn", "Viper", "Wombat", "Salamander", "Porcupine",
    "Mongoose", "Hedgehog", "Chinchilla", "Pelican", "Toucan", "Wolf",
    "Lynx", "Moose", "Puffin", "Stork", "Swan", "Turtle",
)


def hotspot_name(address: str) -> str:
    """Deterministic three-word name for a hotspot address.

    >>> hotspot_name("hs_abc123")  # doctest: +SKIP
    'Quiet Amber Heron'
    """
    digest = hashlib.sha256(address.encode("utf-8")).digest()
    adjective = ADJECTIVES[digest[0] % len(ADJECTIVES)]
    color = COLORS[digest[1] % len(COLORS)]
    animal = ANIMALS[digest[2] % len(ANIMALS)]
    return f"{adjective} {color} {animal}"
