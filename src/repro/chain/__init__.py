"""Helium-compatible blockchain substrate.

The paper's primary data source is "the history of all transactions on the
blockchain" (§3). This package implements that blockchain: the transaction
schema the paper analyses, a validating ledger state machine, 60-second
blocks, wallets, and the state-channel machinery behind payment-for-data.

The simulation layer (:mod:`repro.simulation`) *writes* this chain; the
analysis layer (:mod:`repro.core`) *reads* it — mirroring how the authors
read the DeWi ETL replica of the live chain.
"""

from repro.chain.blockchain import Blockchain
from repro.chain.block import Block
from repro.chain.crypto import Address, Keypair
from repro.chain.ledger import HotspotRecord, Ledger, WalletState
from repro.chain.naming import hotspot_name
from repro.chain.transactions import (
    AddGateway,
    AssertLocation,
    OuiRegistration,
    Payment,
    PocReceipts,
    PocRequest,
    Rewards,
    RewardShare,
    RewardType,
    StateChannelClose,
    StateChannelOpen,
    StateChannelSummary,
    TokenBurn,
    Transaction,
    TransferHotspot,
    WitnessReport,
)
from repro.chain.varmap import ChainVars

__all__ = [
    "Blockchain",
    "Block",
    "Address",
    "Keypair",
    "Ledger",
    "HotspotRecord",
    "WalletState",
    "hotspot_name",
    "Transaction",
    "AddGateway",
    "AssertLocation",
    "TransferHotspot",
    "PocRequest",
    "PocReceipts",
    "WitnessReport",
    "StateChannelOpen",
    "StateChannelClose",
    "StateChannelSummary",
    "Payment",
    "TokenBurn",
    "OuiRegistration",
    "Rewards",
    "RewardShare",
    "RewardType",
    "ChainVars",
]
