"""Toy deterministic key material for the simulated blockchain.

The real Helium chain uses ed25519; the analyses in the paper never verify
signatures, they only need (a) stable addresses that tie hotspots to
owners and (b) a signature scheme sufficient to model the state-channel
"signed offer to buy" handshake. A hash-based construction gives both,
deterministically from the scenario seed, with no external dependencies.

This is explicitly **not** cryptographically secure — it models protocol
structure, not adversarial cryptography.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import ChainError

__all__ = ["Address", "Keypair", "sign", "verify"]

#: Printable address: a prefix plus a truncated hex digest.
Address = str

_ADDRESS_BYTES = 16


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@dataclass(frozen=True)
class Keypair:
    """A deterministic keypair derived from a secret string.

    Addresses carry a role prefix (``wal_`` for wallets, ``hs_`` for
    hotspots, ``oui_`` for router organisations) so that transaction dumps
    stay human-readable, mirroring how Helium explorers label entities.
    """

    secret: str = field(repr=False)
    prefix: str = "wal"

    @property
    def public_key(self) -> str:
        """Hex public key (hash of the secret)."""
        return _digest("pub", self.secret)

    @property
    def address(self) -> Address:
        """Printable on-chain address."""
        return f"{self.prefix}_{self.public_key[: 2 * _ADDRESS_BYTES]}"

    @classmethod
    def generate(cls, seed: str, prefix: str = "wal") -> "Keypair":
        """Derive a keypair deterministically from a seed string."""
        if not seed:
            raise ChainError("keypair seed must be non-empty")
        return cls(secret=_digest("secret", seed), prefix=prefix)

    def sign(self, message: str) -> str:
        """Sign ``message`` with this keypair."""
        return sign(self, message)


def sign(keypair: Keypair, message: str) -> str:
    """Hash-based signature: binds message, secret, and public key."""
    return _digest("sig", keypair.secret, message)


def verify(public_key: str, message: str, signature: str, secret_hint: str) -> bool:
    """Verify a signature given the signer's secret (simulation only).

    Real verification needs only the public key; our hash construction
    requires the secret, which the simulation can always supply because
    it owns every keypair. Callers outside the simulation should treat a
    signature's presence as authentication, exactly as the paper treats
    signed offers in state-channel closings.
    """
    expected_pub = _digest("pub", secret_hint)
    if expected_pub != public_key:
        return False
    return signature == _digest("sig", secret_hint, message)
