"""Validating ledger: the state machine the blockchain folds into.

The ledger holds *current* state (wallet balances, hotspot ownership and
location, OUIs, open state channels). History stays in the chain itself —
analyses that need move or transfer histories scan transactions, exactly
as the paper scans the DeWi replica, and join against ledger state when
they need "who owns this now".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import units
from repro.chain.crypto import Address
from repro.chain.naming import hotspot_name
from repro.chain.transactions import (
    AddGateway,
    AssertLocation,
    OuiRegistration,
    Payment,
    PocReceipts,
    PocRequest,
    Rewards,
    StateChannelClose,
    StateChannelOpen,
    TokenBurn,
    Transaction,
    TransferHotspot,
)
from repro.chain.varmap import ChainVars, DEFAULT_VARS
from repro.errors import (
    InsufficientFunds,
    StateChannelError,
    TransactionError,
)

__all__ = ["WalletState", "HotspotRecord", "ChannelState", "Ledger"]


@dataclass
class WalletState:
    """Balances of one wallet."""

    hnt_bones: int = 0
    dc: int = 0

    @property
    def hnt(self) -> float:
        """Balance in whole HNT."""
        return units.bones_to_hnt(self.hnt_bones)


@dataclass
class HotspotRecord:
    """Current chain state of one hotspot."""

    gateway: Address
    owner: Address
    location_token: Optional[str] = None
    nonce: int = 0  # number of location asserts so far
    added_block: int = 0
    last_assert_block: Optional[int] = None

    @property
    def name(self) -> str:
        """Three-word display name derived from the gateway address."""
        return hotspot_name(self.gateway)

    @property
    def has_location(self) -> bool:
        """True once the hotspot has asserted any location."""
        return self.location_token is not None


@dataclass
class ChannelState:
    """An open state channel (stake escrowed, awaiting close)."""

    channel_id: str
    owner: Address
    oui: int
    amount_dc: int
    open_block: int
    expire_block: int


class Ledger:
    """Applies transactions, enforcing Helium's validity rules.

    All mutation goes through :meth:`apply`; reads go through the query
    helpers. The blockchain object owns exactly one ledger and applies
    each block's transactions in order.
    """

    def __init__(self, vars: ChainVars = DEFAULT_VARS) -> None:
        self.vars = vars
        self.wallets: Dict[Address, WalletState] = {}
        self.hotspots: Dict[Address, HotspotRecord] = {}
        self.ouis: Dict[int, Address] = {}
        self.open_channels: Dict[str, ChannelState] = {}
        self.oracle_price_usd: float = 10.0
        self.total_dc_burned: int = 0
        self.total_hnt_minted_bones: int = 0
        self.txn_counts: Dict[str, int] = {}

    # -- wallets -----------------------------------------------------------

    def wallet(self, address: Address) -> WalletState:
        """The wallet for ``address``, created empty on first touch."""
        state = self.wallets.get(address)
        if state is None:
            state = WalletState()
            self.wallets[address] = state
        return state

    def credit_dc(self, address: Address, amount: int) -> None:
        """Mint DC into a wallet (credit-card purchase path, §5.2)."""
        if amount < 0:
            raise TransactionError(f"cannot credit negative DC: {amount}")
        self.wallet(address).dc += amount

    def _charge_dc(self, address: Address, amount: int, what: str) -> None:
        if amount == 0:
            return
        wallet = self.wallet(address)
        if wallet.dc < amount:
            raise InsufficientFunds(
                f"{address} has {wallet.dc} DC, needs {amount} for {what}"
            )
        wallet.dc -= amount
        self.total_dc_burned += amount

    # -- application -------------------------------------------------------

    def apply(self, txn: Transaction, height: int) -> None:
        """Validate and apply one transaction at block ``height``.

        Raises a :class:`~repro.errors.TransactionError` subclass and
        leaves the ledger untouched when the transaction is invalid.
        """
        handler = self._HANDLERS.get(type(txn))
        if handler is None:
            raise TransactionError(f"unsupported transaction type: {type(txn).__name__}")
        handler(self, txn, height)
        self.txn_counts[txn.kind] = self.txn_counts.get(txn.kind, 0) + 1

    def _apply_add_gateway(self, txn: AddGateway, height: int) -> None:
        if txn.gateway in self.hotspots:
            raise TransactionError(f"gateway already on chain: {txn.gateway}")
        payer = txn.payer if txn.payer is not None else txn.owner
        self._charge_dc(payer, txn.fee_dc, "add_gateway fee")
        self.hotspots[txn.gateway] = HotspotRecord(
            gateway=txn.gateway, owner=txn.owner, added_block=height
        )
        self.wallet(txn.owner)  # materialise the owner wallet

    def _apply_assert_location(self, txn: AssertLocation, height: int) -> None:
        record = self.hotspots.get(txn.gateway)
        if record is None:
            raise TransactionError(f"assert_location for unknown gateway {txn.gateway}")
        if record.owner != txn.owner:
            raise TransactionError(
                f"assert_location owner mismatch for {txn.gateway}: "
                f"{txn.owner} is not {record.owner}"
            )
        if txn.nonce != record.nonce + 1:
            raise TransactionError(
                f"assert_location nonce {txn.nonce} != expected {record.nonce + 1}"
            )
        payer = txn.payer if txn.payer is not None else txn.owner
        self._charge_dc(payer, txn.fee_dc, "assert_location fee")
        record.location_token = txn.location_token
        record.nonce = txn.nonce
        record.last_assert_block = height

    def _apply_transfer(self, txn: TransferHotspot, height: int) -> None:
        record = self.hotspots.get(txn.gateway)
        if record is None:
            raise TransactionError(f"transfer of unknown gateway {txn.gateway}")
        if record.owner != txn.seller:
            raise TransactionError(
                f"transfer seller {txn.seller} does not own {txn.gateway}"
            )
        if txn.amount_dc > 0:
            buyer = self.wallet(txn.buyer)
            if buyer.dc < txn.amount_dc:
                raise InsufficientFunds(
                    f"buyer {txn.buyer} has {buyer.dc} DC, sale needs {txn.amount_dc}"
                )
            buyer.dc -= txn.amount_dc
            self.wallet(txn.seller).dc += txn.amount_dc
        self._charge_dc(txn.seller, txn.fee_dc, "transfer fee")
        record.owner = txn.buyer

    def _apply_poc_request(self, txn: PocRequest, height: int) -> None:
        if txn.challenger not in self.hotspots:
            raise TransactionError(f"poc_request from unknown hotspot {txn.challenger}")

    def _apply_poc_receipts(self, txn: PocReceipts, height: int) -> None:
        if txn.challengee not in self.hotspots:
            raise TransactionError(f"poc_receipts for unknown hotspot {txn.challengee}")

    def _apply_sc_open(self, txn: StateChannelOpen, height: int) -> None:
        if txn.channel_id in self.open_channels:
            raise StateChannelError(f"state channel already open: {txn.channel_id}")
        if self.ouis.get(txn.oui) != txn.owner:
            raise StateChannelError(
                f"{txn.owner} does not own OUI {txn.oui}; cannot open channel"
            )
        if not (
            self.vars.state_channel_min_expire_blocks
            <= txn.expire_within_blocks
            <= self.vars.state_channel_max_expire_blocks
        ):
            raise StateChannelError(
                f"state channel expiry {txn.expire_within_blocks} outside "
                f"[{self.vars.state_channel_min_expire_blocks}, "
                f"{self.vars.state_channel_max_expire_blocks}]"
            )
        wallet = self.wallet(txn.owner)
        if wallet.dc < txn.amount_dc:
            raise InsufficientFunds(
                f"router {txn.owner} has {wallet.dc} DC, stake needs {txn.amount_dc}"
            )
        wallet.dc -= txn.amount_dc
        self.open_channels[txn.channel_id] = ChannelState(
            channel_id=txn.channel_id,
            owner=txn.owner,
            oui=txn.oui,
            amount_dc=txn.amount_dc,
            open_block=height,
            expire_block=height + txn.expire_within_blocks,
        )

    def _apply_sc_close(self, txn: StateChannelClose, height: int) -> None:
        channel = self.open_channels.get(txn.channel_id)
        if channel is None:
            raise StateChannelError(f"close of unknown/closed channel {txn.channel_id}")
        if channel.owner != txn.owner:
            raise StateChannelError(
                f"channel {txn.channel_id} owned by {channel.owner}, "
                f"close attempted by {txn.owner}"
            )
        spent = txn.total_dcs
        if spent > channel.amount_dc:
            raise StateChannelError(
                f"channel {txn.channel_id} overspent: {spent} > {channel.amount_dc}"
            )
        # Spent DC are burned; unspent DC return to the router (§3).
        self.total_dc_burned += spent
        self.wallet(txn.owner).dc += channel.amount_dc - spent
        del self.open_channels[txn.channel_id]

    def _apply_payment(self, txn: Payment, height: int) -> None:
        payer = self.wallet(txn.payer)
        if payer.hnt_bones < txn.amount_bones:
            raise InsufficientFunds(
                f"{txn.payer} has {payer.hnt_bones} bones, "
                f"payment needs {txn.amount_bones}"
            )
        self._charge_dc(txn.payer, txn.fee_dc, "payment fee")
        payer.hnt_bones -= txn.amount_bones
        self.wallet(txn.payee).hnt_bones += txn.amount_bones

    def _apply_token_burn(self, txn: TokenBurn, height: int) -> None:
        payer = self.wallet(txn.payer)
        if payer.hnt_bones < txn.amount_bones:
            raise InsufficientFunds(
                f"{txn.payer} has {payer.hnt_bones} bones, "
                f"burn needs {txn.amount_bones}"
            )
        payer.hnt_bones -= txn.amount_bones
        usd_value = units.bones_to_hnt(txn.amount_bones) * self.oracle_price_usd
        self.wallet(txn.payee).dc += units.usd_to_dc(usd_value)

    def _apply_oui(self, txn: OuiRegistration, height: int) -> None:
        if txn.oui in self.ouis:
            raise TransactionError(f"OUI {txn.oui} already registered")
        self._charge_dc(txn.owner, txn.fee_dc, "OUI fee")
        self.ouis[txn.oui] = txn.owner

    def _apply_rewards(self, txn: Rewards, height: int) -> None:
        for share in txn.shares:
            self.wallet(share.account).hnt_bones += share.amount_bones
            self.total_hnt_minted_bones += share.amount_bones

    _HANDLERS = {
        AddGateway: _apply_add_gateway,
        AssertLocation: _apply_assert_location,
        TransferHotspot: _apply_transfer,
        PocRequest: _apply_poc_request,
        PocReceipts: _apply_poc_receipts,
        StateChannelOpen: _apply_sc_open,
        StateChannelClose: _apply_sc_close,
        Payment: _apply_payment,
        TokenBurn: _apply_token_burn,
        OuiRegistration: _apply_oui,
        Rewards: _apply_rewards,
    }

    # -- queries -----------------------------------------------------------

    def hotspots_of(self, owner: Address) -> List[HotspotRecord]:
        """All hotspots currently owned by ``owner``."""
        return [r for r in self.hotspots.values() if r.owner == owner]

    def owner_counts(self) -> Dict[Address, int]:
        """Map owner wallet → number of hotspots currently owned."""
        counts: Dict[Address, int] = {}
        for record in self.hotspots.values():
            counts[record.owner] = counts.get(record.owner, 0) + 1
        return counts

    def location_of(self, gateway: Address) -> Optional[str]:
        """Current asserted location token of a hotspot, if any."""
        record = self.hotspots.get(gateway)
        return record.location_token if record else None

    @property
    def hotspot_count(self) -> int:
        """Number of hotspots ever added to the chain."""
        return len(self.hotspots)
