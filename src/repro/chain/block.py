"""Blocks of the simulated chain."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Tuple

from repro import units
from repro.chain.transactions import Transaction
from repro.errors import ChainError

__all__ = ["Block"]


@dataclass(frozen=True)
class Block:
    """One block: height, nominal timestamp, parent hash, transactions.

    Blocks are value objects produced only by :class:`~repro.chain.
    blockchain.Blockchain`, which guarantees height continuity and the
    nominal 60-second cadence the paper's time analyses assume.
    """

    height: int
    unix_time: int
    prev_hash: str
    transactions: Tuple[Transaction, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ChainError(f"block height must be non-negative, got {self.height}")

    @property
    def hash(self) -> str:
        """Deterministic block hash over height, time, parent and tx kinds."""
        h = hashlib.sha256()
        h.update(f"{self.height}:{self.unix_time}:{self.prev_hash}".encode())
        for txn in self.transactions:
            h.update(repr(txn).encode())
        return h.hexdigest()

    @classmethod
    def genesis(cls) -> "Block":
        """The empty genesis block at the paper's 2019-07-29 start date."""
        return cls(height=0, unix_time=units.GENESIS_UNIX_TIME, prev_hash="0" * 64)

    def __len__(self) -> int:
        return len(self.transactions)
