"""Chain variables: the tunable constants of the Helium blockchain.

Helium governs protocol behaviour through on-chain "chain vars" that HIPs
modify (§7). Collecting them in one dataclass lets scenarios flip a HIP on
or off — the HIP 10 ablation bench literally toggles
``hip10_data_reward_cap``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units

__all__ = ["ChainVars", "DEFAULT_VARS"]


@dataclass(frozen=True)
class ChainVars:
    """Protocol constants, with defaults matching the period under study."""

    #: DC fee for assert_location: "this transaction carries a
    #: 1,000,000 DC fee ($10 USD)" (§3).
    assert_location_fee_dc: int = 1_000_000

    #: Additional staking fee for asserting location (raises the paper's
    #: §7.1 figure of "$40 USD cost to re-assert" = fee + staking fee).
    assert_location_staking_fee_dc: int = 3_000_000

    #: "The Helium network permits hotspots to move up to two times for
    #: 'free' (the Helium company pays the assert_location fee)" (§4.1).
    free_location_asserts: int = 2

    #: DC fee to add a gateway to the chain.
    add_gateway_fee_dc: int = 4_000_000

    #: DC fee to transfer a hotspot between owners.
    transfer_hotspot_fee_dc: int = 55_000

    #: DC staked to register an OUI (routers).
    oui_fee_dc: int = 10_000_000

    #: Minimum / maximum state-channel lifetime in blocks. The paper
    #: documents 10 blocks (~10 min) to one week (§5.1 footnote).
    state_channel_min_expire_blocks: int = 10
    state_channel_max_expire_blocks: int = 7 * units.BLOCKS_PER_DAY

    #: Grace period for hotspots to dispute a state-channel close (§5.1).
    state_channel_grace_blocks: int = 10

    #: DC price of one 24-byte packet: "$0.00001 USD" per DC, 1 DC/packet.
    dc_per_packet: int = 1

    #: Blocks between PoC challenges a hotspot may issue: "any hotspot can
    #: send a challenge every 480 blocks" (§7.1).
    poc_challenge_interval_blocks: int = 480

    #: HIP 15: "hotspots within 300 meters of each other cannot act as a
    #: witness for one another" (§8.2.1).
    poc_witness_min_distance_km: float = 0.3

    #: Maximum plausible witness distance heuristic used by validity
    #: checks (the paper picks "a generous 25 km cutoff" analytically;
    #: the chain's own RSSI heuristics are looser).
    poc_witness_max_distance_km: float = 100.0

    #: Maximum witnesses rewarded per challenge (reward decay beyond).
    poc_max_witnesses_rewarded: int = 4

    #: HIP 10 in force: cap data-transfer rewards at the DC-equivalent
    #: value instead of splitting the fixed pool pro rata (§5.3.2).
    hip10_data_reward_cap: bool = True

    #: Epoch length in blocks for reward minting.
    epoch_blocks: int = units.BLOCKS_PER_EPOCH

    #: Monthly net HNT emission (pre-halving schedule), in whole HNT.
    monthly_hnt_emission: float = 5_000_000.0

    def with_updates(self, **changes: object) -> "ChainVars":
        """A copy with the given chain vars changed (HIP application)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def hnt_per_epoch(self) -> float:
        """Whole HNT minted per reward epoch."""
        epochs_per_month = 30.0 * units.BLOCKS_PER_DAY / self.epoch_blocks
        return self.monthly_hnt_emission / epochs_per_month


#: Shared immutable default chain vars.
DEFAULT_VARS = ChainVars()
