"""Simulation engine: phase scheduling over a serializable WorldState.

The engine is now a thin shell: all mutable run state lives in
:class:`repro.simulation.state.WorldState`, each slice of the day's work
is a :class:`~repro.simulation.phases.base.Phase` subsystem under
:mod:`repro.simulation.phases`, and
:class:`~repro.simulation.scheduler.PhaseScheduler` runs them in order —
deploys, transfers, moves, availability, the weekly index rebuild,
Proof-of-Coverage, traffic, rewards, encashment, the mint, and the
growth log. The engine owns only the run loop itself: bootstrap,
day iteration, day-level checkpointing (``WorldState.save``), and the
end-of-run peerbook assembly.

The result bundles the chain (what analyses read) with the world (ground
truth analyses score against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Union

from repro import obs
from repro.chain.blockchain import Blockchain
from repro.chain.crypto import Address
from repro.economics.oracle import PriceOracle
from repro.errors import SimulationError
from repro.p2p.peerbook import Peerbook
from repro.rng import RngHub
from repro.simulation.phases import Phase
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.scheduler import PhaseScheduler
from repro.simulation.state import GrowthLogRow, WorldState
from repro.simulation.world import World

__all__ = ["GrowthLogRow", "SimulationResult", "SimulationEngine"]


@dataclass
class SimulationResult:
    """Everything one scenario run produced."""

    config: ScenarioConfig
    chain: Blockchain
    world: World
    peerbook: Peerbook
    oracle: PriceOracle
    growth_log: List[GrowthLogRow]
    console_owner: Address
    oui_owners: Dict[int, Address]
    spammer_owners: List[Address] = field(default_factory=list)
    #: Cumulative wall-clock seconds per day-loop phase, filled by a cold
    #: :meth:`SimulationEngine.run` (``None`` on snapshot reloads). Not
    #: part of the snapshot payload, so recording it never perturbs the
    #: scenario digest.
    day_loop_timings: Optional[Dict[str, float]] = None

    @property
    def scale_factor(self) -> float:
        """Fleet scale relative to the real network."""
        return self.config.scale_factor


class SimulationEngine:
    """Runs one scenario end to end. Use :meth:`run`.

    Construct from a :class:`ScenarioConfig` for a fresh run, from a
    prepared :class:`WorldState` (``state=``) to continue one, or via
    :meth:`resume` to restart from an on-disk checkpoint. A custom
    ``phases`` list replaces :func:`~repro.simulation.phases.
    default_phases` — order is semantic, see that function.
    """

    def __init__(
        self,
        config: Optional[ScenarioConfig] = None,
        *,
        state: Optional[WorldState] = None,
        phases: Optional[List[Phase]] = None,
    ) -> None:
        if state is None:
            if config is None:
                raise SimulationError(
                    "SimulationEngine needs a config or a state"
                )
            state = WorldState.create(config)
        elif config is not None and config != state.config:
            raise SimulationError(
                "config does not match the supplied state's config"
            )
        self.state = state
        self.scheduler = PhaseScheduler(phases)

    @classmethod
    def resume(
        cls,
        checkpoint_dir: Union[str, Path],
        *,
        phases: Optional[List[Phase]] = None,
        chain_log: bool = True,
    ) -> "SimulationEngine":
        """Engine positioned at a checkpoint's next unsimulated day.

        ``chain_log`` selects the chain residency of the restored state
        (see :meth:`WorldState.load`); it defaults to the bounded-RSS
        on-disk log, matching :meth:`run`'s default.
        """
        return cls(
            state=WorldState.load(checkpoint_dir, chain_log=chain_log),
            phases=phases,
        )

    # Back-compat accessors: the run state used to live directly on the
    # engine; analyses, tests, and the CLI still reach it this way.

    @property
    def config(self) -> ScenarioConfig:
        return self.state.config

    @property
    def hub(self) -> RngHub:
        return self.state.hub

    @property
    def world(self) -> World:
        return self.state.world

    @property
    def chain(self) -> Blockchain:
        return self.state.chain

    @property
    def oracle(self) -> PriceOracle:
        return self.state.oracle

    @property
    def phase_timings(self) -> Dict[str, float]:
        """Cumulative per-phase wall-clock (the ``--profile`` source)."""
        return self.scheduler.timings

    # ------------------------------------------------------------------ run --

    def run(
        self,
        *,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        stop_after_day: Optional[int] = None,
        shard_workers: int = 0,
        chain_log: bool = True,
    ) -> Optional[SimulationResult]:
        """Execute the scenario and return the result bundle.

        ``chain_log=True`` (the default) attaches an append-to-disk
        :class:`~repro.chain.chainlog.ChainLog` and spills each day's
        finalized blocks out of memory at the day boundary, keeping the
        chain's RSS footprint bounded regardless of run length; blocks
        rematerialize lazily wherever the result is read, so the chain,
        digests, and dumps are byte-identical to ``chain_log=False``
        (the fully resident object graph — the pre-log behaviour).

        With ``checkpoint_every=N`` (requires ``checkpoint_dir``), the
        full run state is saved after every N-th completed day — each
        save atomically replaces the previous one, so the directory
        always holds the latest consistent checkpoint. With
        ``stop_after_day=D``, the run halts once D days are complete,
        saves a final checkpoint, and returns ``None``; a later
        :meth:`resume` continues bit-identically to an uninterrupted
        run.

        ``shard_workers=N`` (default 0 = fully serial) attaches a
        persistent :class:`~repro.parallel.shards.ShardPool` for the
        run: phases scatter their randomness-free work over N worker
        processes and merge deterministically, so the result — chain,
        digests, RNG streams — is byte-identical to the serial path.
        Checkpoints compose freely with sharding: saves happen at day
        boundaries with no shard work in flight, the pool is never
        serialized, and a resume may use any worker count (including
        zero).
        """
        state = self.state
        n_days = state.config.n_days
        if checkpoint_every is not None and checkpoint_every < 1:
            raise SimulationError("checkpoint_every must be >= 1")
        if checkpoint_every and checkpoint_dir is None:
            raise SimulationError("checkpoint_every requires checkpoint_dir")
        if shard_workers < 0:
            raise SimulationError("shard_workers must be >= 0")

        if chain_log and state.chain.chain_log is None:
            from repro.chain.chainlog import ChainLog

            state.chain.attach_log(ChainLog())
        if shard_workers > 0:
            from repro.parallel.shards import ShardPool

            state.shard_pool = ShardPool(shard_workers)
        try:
            return self._run_loop(
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
                stop_after_day=stop_after_day,
                chain_log=chain_log,
            )
        finally:
            pool = state.shard_pool
            state.shard_pool = None
            if pool is not None:
                pool.close()

    def _run_loop(
        self,
        *,
        checkpoint_every: Optional[int],
        checkpoint_dir: Optional[Union[str, Path]],
        stop_after_day: Optional[int],
        chain_log: bool,
    ) -> Optional[SimulationResult]:
        state = self.state
        n_days = state.config.n_days
        run_started = perf_counter()
        if state.console_owner is None:
            state.bootstrap_routers()

        for day in range(state.day, n_days):
            self.scheduler.run_day(state, day)
            state.day = day + 1
            if chain_log:
                # Day boundary: the batch is minted and nothing holds a
                # block reference, so spill the finalized prefix. Runs
                # before the checkpoint so a save raw-copies frames.
                state.chain.evict_finalized()
            if state.day >= n_days:
                break
            if stop_after_day is not None and state.day >= stop_after_day:
                if checkpoint_dir is None:
                    raise SimulationError(
                        "stop_after_day requires checkpoint_dir"
                    )
                self._checkpoint(checkpoint_dir)
                return None
            if (
                checkpoint_every
                and checkpoint_dir is not None
                and state.day % checkpoint_every == 0
            ):
                self._checkpoint(checkpoint_dir)

        peerbook = self._build_peerbook()
        wall_s = perf_counter() - run_started
        obs.counter("engine.runs")
        obs.counter("engine.days", state.config.n_days)
        self.scheduler.publish_metrics()
        obs.trace_event(
            "engine.run",
            seed=state.config.seed,
            n_days=state.config.n_days,
            blocks=state.chain.height,
            wall_s=round(wall_s, 4),
            phases={
                name: round(seconds, 4)
                for name, seconds in self.scheduler.timings.items()
            },
        )
        return SimulationResult(
            config=state.config,
            chain=state.chain,
            world=state.world,
            peerbook=peerbook,
            oracle=state.oracle,
            growth_log=state.growth_log,
            console_owner=state.console_owner,
            oui_owners=state.oui_owners,
            spammer_owners=list(state.spammers),
            day_loop_timings=dict(self.scheduler.timings),
        )

    def _checkpoint(self, directory: Union[str, Path]) -> None:
        started = perf_counter()
        self.state.save(directory)
        obs.counter("engine.checkpoints")
        obs.observe("engine.checkpoint_save", perf_counter() - started)

    # ------------------------------------------------------------------ p2p --

    def _build_peerbook(self) -> Peerbook:
        state = self.state
        rng = state.hub.stream("relay")
        peerbook = Peerbook()
        publics: List[Address] = []
        for hotspot in state.world.hotspots.values():
            if not hotspot.online or hotspot.backhaul is None:
                continue
            if hotspot.backhaul.has_public_ip:
                peerbook.add_direct(hotspot.gateway, hotspot.backhaul.ip)
                publics.append(hotspot.gateway)
        if not publics:
            return peerbook
        # Selection is geography-blind (the Fig. 11 result) but not
        # perfectly uniform: some relays are far more discoverable
        # (long-lived, well-connected), which produces the heavy tail of
        # Fig. 10 — one relay carrying dozens of peers.
        weights = rng.pareto(1.7, size=len(publics)) + 0.10
        weights = weights / weights.sum()
        for hotspot in state.world.hotspots.values():
            if not hotspot.online or hotspot.backhaul is None:
                continue
            if hotspot.backhaul.has_public_ip:
                continue
            relay = publics[int(rng.choice(len(publics), p=weights))]
            peerbook.add_relayed(hotspot.gateway, relay)
        for hotspot in state.world.hotspots.values():
            if not hotspot.online:
                peerbook.add_empty(hotspot.gateway)
        return peerbook
