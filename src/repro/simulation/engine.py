"""Simulation engine: the day loop that writes the synthetic chain.

Each simulated day the engine: updates the HNT price; deploys the day's
hotspot batch (add_gateway + assert_location, occasionally at (0,0));
executes scheduled moves (silent movers move *without* re-asserting) and
resales; toggles online status; runs thinned Proof-of-Coverage over real
radio geometry; generates data traffic and settles it through state
channels; mints a daily reward batch; and lets mining-pool owners encash.
At the end it assembles the p2p peerbook (backhaul, NAT, circuit relays).

The result bundles the chain (what analyses read) with the world (ground
truth analyses score against).
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs, units
from repro.chain.blockchain import Blockchain
from repro.chain.crypto import Address, Keypair
from repro.chain.transactions import (
    AddGateway,
    AssertLocation,
    OuiRegistration,
    Payment,
    StateChannelClose,
    StateChannelOpen,
    StateChannelSummary,
    Transaction,
    TransferHotspot,
)
from repro.chain.varmap import ChainVars
from repro.economics.oracle import PriceOracle
from repro.economics.rewards import EpochActivity, RewardEngine
from repro.errors import SimulationError
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexGrid
from repro.p2p.backhaul import assign_backhaul
from repro.p2p.peerbook import Peerbook
from repro.poc.challenge import PocParticipant, run_challenge
from repro.poc.cheats import GossipClique, RssiLiar, SilentMover
from repro.poc.validity import WitnessValidityChecker
from repro.radio.lora import plan_for_country
from repro.radio.propagation import Environment, environment_for_city
from repro.rng import RngHub
from repro.simulation.growth import build_adoption_schedule
from repro.simulation.moves import MovePlanner, PlannedMove
from repro.simulation.owners import OwnerModel
from repro.simulation.resale import PlannedTransfer, ResalePlanner, pick_buyer
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.traffic import TrafficModel
from repro.simulation.world import SimHotspot, World

__all__ = ["GrowthLogRow", "SimulationResult", "SimulationEngine"]

#: Blocks per simulated day.
_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


@dataclass
class GrowthLogRow:
    """Daily fleet snapshot (drives the Figure 5 reproduction)."""

    day: int
    added_today: int
    connected: int
    online: int
    online_us: int
    online_international: int


@dataclass
class SimulationResult:
    """Everything one scenario run produced."""

    config: ScenarioConfig
    chain: Blockchain
    world: World
    peerbook: Peerbook
    oracle: PriceOracle
    growth_log: List[GrowthLogRow]
    console_owner: Address
    oui_owners: Dict[int, Address]
    spammer_owners: List[Address] = field(default_factory=list)
    #: Cumulative wall-clock seconds per day-loop phase, filled by a cold
    #: :meth:`SimulationEngine.run` (``None`` on snapshot reloads). Not
    #: part of the snapshot payload, so recording it never perturbs the
    #: scenario digest.
    day_loop_timings: Optional[Dict[str, float]] = None

    @property
    def scale_factor(self) -> float:
        """Fleet scale relative to the real network."""
        return self.config.scale_factor


class SimulationEngine:
    """Runs one scenario end to end. Use :meth:`run`."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.hub = RngHub(config.seed)
        # Density-true scaling: shrink city footprints by √scale so the
        # scaled-down fleet reproduces the real network's local density
        # (see City.radius_scale).
        self.world = World(
            rng_cities=self.hub.stream("cities"),
            rng_isps=self.hub.stream("isps"),
            tail_isps=config.tail_isps,
            city_radius_scale=math.sqrt(config.scale_factor),
        )
        self.chain = Blockchain(ChainVars())
        self.oracle = PriceOracle(self.hub.stream("oracle"))
        self.owners = OwnerModel(config, self.world)
        self.moves = MovePlanner(config)
        self.resale = ResalePlanner(config)
        self.traffic = TrafficModel(config)
        self.checker = WitnessValidityChecker(
            min_distance_km=self.chain.vars.poc_witness_min_distance_km
        )
        self.schedule = build_adoption_schedule(config, self.hub.stream("growth"))
        self._move_queue: Dict[int, List[Tuple[Address, PlannedMove]]] = {}
        self._transfer_queue: Dict[int, List[Tuple[Address, PlannedTransfer]]] = {}
        self._participants: Dict[Address, PocParticipant] = {}
        self._uptime: Dict[Address, float] = {}
        # Fleet arrays: one slot per deployed hotspot, in deployment
        # order — the order the old per-gateway dict walks used — so the
        # batched uptime draw consumes the "uptime" stream identically
        # and attribution maps keep their deployment-order iteration.
        self._fleet_hotspots: List[SimHotspot] = []
        self._fleet_participants: List[Optional[PocParticipant]] = []
        self._fleet_uptime: List[float] = []
        self._fleet_in_us: List[bool] = []
        self._fleet_is_poc: List[bool] = []
        self._fleet_index: Dict[Address, int] = {}
        self._fleet_online = np.zeros(0, dtype=bool)
        self._fleet_poc_online = np.zeros(0, dtype=bool)
        # Incrementally maintained ferry-weight base: gateway → (hotspot,
        # weight) for every hotspot that would carry organic data when
        # online. Maintained on deploy and ownership change; the daily
        # online filter reads hotspot refs directly.
        self._ferry_base: Dict[Address, Tuple[SimHotspot, float]] = {}
        self._ferry_order_stale = False
        #: Cumulative day-loop wall-clock per phase (see ``--profile``).
        self.phase_timings: Dict[str, float] = {
            name: 0.0
            for name in (
                "deploy", "transfers", "moves", "online", "index",
                "poc", "traffic", "rewards", "encash", "mint", "log",
            )
        }
        self._flippers: List[Address] = []
        self._spammers: List[Address] = []
        self._clique_registry: Dict[int, GossipClique] = {}
        self._clique_pending: List[Tuple[int, str, int]] = []  # (id, city, left)
        self._exchange = Keypair.generate("exchange", "wal").address
        self._helium_co = Keypair.generate("helium-co", "wal").address
        self._growth_log: List[GrowthLogRow] = []
        self._channel_seq = 0
        for clique_id, (size, city) in enumerate(config.gossip_cliques):
            clique = GossipClique(clique_id=clique_id)
            self._clique_registry[clique_id] = clique
            self._clique_pending.append((clique_id, city, size))

    # ------------------------------------------------------------------ run --

    @contextlib.contextmanager
    def _phase(self, name: str):
        """Accumulate one day-loop phase's wall-clock into
        :attr:`phase_timings` (the ``--profile`` source; aggregated into
        ``engine.phase.*`` metrics when the run completes)."""
        started = perf_counter()
        try:
            yield
        finally:
            self.phase_timings[name] += perf_counter() - started

    def run(self) -> SimulationResult:
        """Execute the scenario and return the result bundle."""
        run_started = perf_counter()
        console_owner, oui_owners = self._bootstrap_routers()
        reward_engine_pre = RewardEngine(hip10_cap=False)
        reward_engine_post = RewardEngine(hip10_cap=True)
        rng_day = self.hub.stream("dayloop")

        phase = self._phase
        for day in range(self.config.n_days):
            price = self.oracle.price_on_day(day)
            self.chain.ledger.oracle_price_usd = price
            batch: List[Tuple[int, Transaction]] = []
            activity = EpochActivity(
                epoch_start_block=day * _BLOCKS_PER_DAY,
                epoch_end_block=(day + 1) * _BLOCKS_PER_DAY - 1,
            )

            with phase("deploy"):
                added = self._deploy_day(day, batch)
            with phase("transfers"):
                transferred = self._execute_transfers(day, batch)
            with phase("moves"):
                self._execute_moves(day, batch, transferred)
            with phase("online"):
                self._update_online(day)
            with phase("index"):
                if day % 7 == 0:
                    self.world.rebuild_index()
            with phase("poc"):
                self._run_poc(day, batch, activity)
            with phase("traffic"):
                self._run_traffic(
                    day, batch, activity, console_owner, oui_owners
                )
            with phase("rewards"):
                engine = (
                    reward_engine_post if day >= self.config.hip10_day
                    else reward_engine_pre
                )
                self._mint_rewards(day, batch, activity, engine, price)
            with phase("encash"):
                self._encash(day, batch)
            with phase("mint"):
                self._mint_day(day, batch)
            with phase("log"):
                self._log_growth(day, added)

        peerbook = self._build_peerbook()
        wall_s = perf_counter() - run_started
        obs.counter("engine.runs")
        obs.counter("engine.days", self.config.n_days)
        for name, seconds in self.phase_timings.items():
            obs.observe(f"engine.phase.{name}", seconds)
        obs.trace_event(
            "engine.run",
            seed=self.config.seed,
            n_days=self.config.n_days,
            blocks=self.chain.height,
            wall_s=round(wall_s, 4),
            phases={
                name: round(seconds, 4)
                for name, seconds in self.phase_timings.items()
            },
        )
        return SimulationResult(
            config=self.config,
            chain=self.chain,
            world=self.world,
            peerbook=peerbook,
            oracle=self.oracle,
            growth_log=self._growth_log,
            console_owner=console_owner,
            oui_owners=oui_owners,
            spammer_owners=list(self._spammers),
            day_loop_timings=dict(self.phase_timings),
        )

    # -------------------------------------------------------------- plumbing --

    def _mint_day(self, day: int, batch: List[Tuple[int, Transaction]]) -> None:
        """Mint the day's transactions grouped by target block."""
        if not batch:
            return
        by_block: Dict[int, List[Transaction]] = {}
        floor = self.chain.height + 1
        for block, txn in batch:
            by_block.setdefault(max(block, floor), []).append(txn)
        for block in sorted(by_block):
            target = max(block, self.chain.height + 1)
            self.chain.submit_many(by_block[block])
            self.chain.mint_block(target)

    def _bootstrap_routers(self) -> Tuple[Address, Dict[int, Address]]:
        console_owner = Keypair.generate("console", "wal").address
        oui_owners: Dict[int, Address] = {1: console_owner, 2: console_owner}
        self.chain.ledger.credit_dc(console_owner, 10 * self.chain.vars.oui_fee_dc)
        self.chain.submit(OuiRegistration(oui=1, owner=console_owner,
                                          fee_dc=self.chain.vars.oui_fee_dc))
        self.chain.submit(OuiRegistration(oui=2, owner=console_owner,
                                          fee_dc=self.chain.vars.oui_fee_dc))
        for oui in range(3, 3 + self.config.third_party_ouis):
            owner = Keypair.generate(f"router-{oui}", "wal").address
            oui_owners[oui] = owner
            self.chain.ledger.credit_dc(owner, 2 * self.chain.vars.oui_fee_dc)
            self.chain.submit(OuiRegistration(oui=oui, owner=owner,
                                              fee_dc=self.chain.vars.oui_fee_dc))
        self.chain.mint_block(1)
        return console_owner, oui_owners

    # ------------------------------------------------------------ deployment --

    def _deploy_day(self, day: int, batch: List[Tuple[int, Transaction]]) -> int:
        rng = self.hub.stream("deploy")
        count = self.schedule.daily_counts[day]
        intl_share = self.schedule.international_share[day]
        for i in range(count):
            self._deploy_one(day, intl_share, rng, batch)
        return count

    def _deploy_one(
        self,
        day: int,
        intl_share: float,
        rng: np.random.Generator,
        batch: List[Tuple[int, Transaction]],
    ) -> None:
        config = self.config
        owner = self.owners.assign(day, rng)
        city = self.owners.deployment_city(owner, day, intl_share, rng)
        actual = self.world.cities.sample_location_in_city(rng, city)
        gateway = self.world.new_gateway_address()

        is_validator = float(rng.random()) < config.validator_fraction
        cheat = None
        mismatched_assert = False
        if not is_validator:
            cheat, mismatched_assert = self._maybe_cheat(gateway, city, rng)

        environment = environment_for_city(
            city.population,
            city.location.distance_km(actual),
            city.scatter_radius_km(),
        )
        gain = 1.2
        if float(rng.random()) < config.high_gain_fraction:
            gain = float(rng.uniform(5.0, 9.0))
            environment = (
                Environment.RURAL if rng.random() < 0.85
                else Environment.OVER_WATER
            )

        initial_null = self.moves.initial_assert_is_null(rng)
        if initial_null:
            asserted = LatLon(0.0, 0.0)
        elif mismatched_assert:
            wrong_city = self.world.cities.sample_city(rng, country=city.country)
            asserted = self.world.cities.sample_location_in_city(rng, wrong_city)
        else:
            asserted = HexGrid.quantize(actual)

        backhaul = assign_backhaul(
            self.world.isps, city, self.hub.stream("backhaul"), cloud=is_validator
        )
        hotspot = SimHotspot(
            gateway=gateway,
            owner=owner.wallet,
            city=city,
            actual_location=actual,
            asserted_location=asserted,
            environment=environment,
            antenna_gain_dbi=gain,
            backhaul=backhaul,
            is_validator=is_validator,
            added_day=day,
            assert_nonce=1,
            cheat=cheat,
        )
        hotspot.ferries_data = (
            city.population > 400_000 and float(rng.random()) < 0.05
        )
        self.world.add_hotspot(hotspot)
        uptime = self._draw_uptime(rng)
        self._uptime[gateway] = uptime

        block = day * _BLOCKS_PER_DAY + int(rng.integers(_BLOCKS_PER_DAY // 4))
        hotspot.added_block = block
        batch.append((block, AddGateway(gateway=gateway, owner=owner.wallet)))
        batch.append((block, AssertLocation(
            gateway=gateway,
            owner=owner.wallet,
            location_token=HexGrid.encode_cell(asserted).token,
            nonce=1,
        )))

        transfers = self.resale.plan(day, rng)
        for transfer in transfers:
            self._transfer_queue.setdefault(transfer.day, []).append(
                (gateway, transfer)
            )
        first_transfer = transfers[0].day if transfers else None
        planned = self.moves.plan(
            day, rng,
            initial_null=initial_null,
            will_transfer_on=first_transfer,
        )
        if isinstance(cheat, SilentMover) and not mismatched_assert:
            # Guarantee the silent mover actually moves mid-life, early
            # enough to accumulate contradictory witnessing afterwards.
            move_day = min(
                day + float(rng.uniform(20, 120)), config.n_days - 15.0
            )
            move_day = max(move_day, day + 3.0)
            planned.append(PlannedMove(day=move_day, kind="long"))
        for move in planned:
            self._move_queue.setdefault(int(move.day), []).append((gateway, move))

        participant = None
        if not is_validator:
            participant = PocParticipant(
                gateway=gateway,
                owner=owner.wallet,
                asserted_location=asserted,
                actual_location=actual,
                environment=environment,
                antenna_gain_dbi=gain,
                online=True,
                cheat=cheat,
            )
            self._participants[gateway] = participant
        self._register_fleet(hotspot, participant, uptime)

    def _register_fleet(
        self,
        hotspot: SimHotspot,
        participant: Optional[PocParticipant],
        uptime: float,
    ) -> None:
        """Append one deployed hotspot to the fleet arrays (deployment order)."""
        self._fleet_index[hotspot.gateway] = len(self._fleet_hotspots)
        self._fleet_hotspots.append(hotspot)
        self._fleet_participants.append(participant)
        self._fleet_uptime.append(uptime)
        self._fleet_in_us.append(hotspot.in_us)
        self._fleet_is_poc.append(participant is not None)
        base = self._ferry_base_weight(hotspot)
        if base is not None:
            self._ferry_base[hotspot.gateway] = (hotspot, base)

    def _maybe_cheat(self, gateway: Address, city, rng: np.random.Generator):
        """Assign a cheat strategy (and whether the assert lies from day 1)."""
        config = self.config
        for i, (clique_id, clique_city, left) in enumerate(self._clique_pending):
            if left > 0 and city.name == clique_city:
                clique = self._clique_registry[clique_id]
                clique.members.add(gateway)
                self._clique_pending[i] = (clique_id, clique_city, left - 1)
                return clique, False
        roll = float(rng.random())
        if roll < config.silent_mover_fraction:
            # Half move later silently; half asserted a lie from day one
            # (the "Striped Yellow Bird" pattern, §7.1).
            return SilentMover(), bool(rng.random() < 0.5)
        if roll < config.silent_mover_fraction + config.rssi_liar_fraction:
            return RssiLiar(), False
        return None, False

    def _draw_uptime(self, rng: np.random.Generator) -> float:
        """Per-hotspot daily availability, mixing to the online target."""
        target = self.config.online_fraction
        roll = float(rng.random())
        # Mixture calibrated so the expected value ≈ the online target:
        # 0.70·(t+0.15) + 0.22·(t−0.24) + 0.08·0.12 ≈ t for t = 0.78.
        if roll < 0.70:
            return min(0.97, target + 0.15)
        if roll < 0.92:
            return max(0.05, target - 0.24)
        return 0.12  # the mostly-dead tail

    # ----------------------------------------------------------------- moves --

    def _execute_moves(
        self,
        day: int,
        batch: List[Tuple[int, Transaction]],
        transferred_today: Optional[set] = None,
    ) -> None:
        rng = self.hub.stream("moves")
        vars = self.chain.vars
        transferred_today = transferred_today or set()
        last_block_today: Dict[Address, int] = {}
        for gateway, move in self._move_queue.pop(day, []):
            hotspot = self.world.hotspots.get(gateway)
            if hotspot is None:
                continue
            if gateway in transferred_today:
                # Transfer and move in one day would interleave blocks
                # inconsistently with ledger ownership; defer the move.
                if day + 1 < self.config.n_days:
                    move.day = float(day + 1)
                    self._move_queue.setdefault(day + 1, []).append((gateway, move))
                continue
            if move.kind == "short":
                target = self.moves.short_move_target(
                    hotspot.actual_location, hotspot.city, rng
                )
                new_city = hotspot.city
            elif move.kind == "long":
                new_city = self.moves.long_move_target(
                    day, hotspot.in_us, self.world.cities, rng
                )
                target = self.world.cities.sample_location_in_city(rng, new_city)
            elif move.kind == "to_null":
                target = LatLon(0.0, 0.0)
                new_city = hotspot.city
            elif move.kind == "from_null":
                target = self.world.cities.sample_location_in_city(rng, hotspot.city)
                new_city = hotspot.city
            else:
                raise SimulationError(f"unknown move kind {move.kind!r}")

            silent = isinstance(hotspot.cheat, SilentMover) and move.kind == "long"
            self.world.relocate(hotspot, target, new_city)
            self._fleet_in_us[self._fleet_index[gateway]] = hotspot.in_us
            if hotspot.antenna_gain_dbi <= 2.0:
                hotspot.environment = environment_for_city(
                    new_city.population,
                    new_city.location.distance_km(target),
                    new_city.scatter_radius_km(),
                )
            participant = self._participants.get(gateway)
            if participant is not None:
                participant.actual_location = target
                participant.environment = hotspot.environment
            if silent:
                continue  # physically moved, never re-asserts (§7.1)

            nonce = hotspot.assert_nonce + 1
            fee = 0
            if nonce > vars.free_location_asserts:
                fee = vars.assert_location_fee_dc + vars.assert_location_staking_fee_dc
                self.chain.ledger.credit_dc(hotspot.owner, fee)
            asserted = (
                LatLon(0.0, 0.0) if move.kind == "to_null"
                else HexGrid.quantize(target)
            )
            hotspot.asserted_location = asserted
            hotspot.assert_nonce = nonce
            hotspot.move_days.append(day)
            if participant is not None:
                participant.asserted_location = asserted
            block = day * _BLOCKS_PER_DAY + int(
                (move.day - int(move.day)) * _BLOCKS_PER_DAY
            )
            # Same-day moves must land after the deployment's block and
            # after this hotspot's earlier asserts (nonce ordering).
            block = max(
                block,
                hotspot.added_block + 1,
                last_block_today.get(gateway, -1) + 1,
            )
            last_block_today[gateway] = block
            batch.append((block, AssertLocation(
                gateway=gateway,
                owner=hotspot.owner,
                location_token=HexGrid.encode_cell(asserted).token,
                nonce=nonce,
                fee_dc=fee,
            )))

    # -------------------------------------------------------------- transfers --

    def _execute_transfers(
        self, day: int, batch: List[Tuple[int, Transaction]]
    ) -> set:
        rng = self.hub.stream("resale")
        transferred = set()
        for gateway, transfer in self._transfer_queue.pop(day, []):
            hotspot = self.world.hotspots.get(gateway)
            if hotspot is None:
                continue
            seller = hotspot.owner
            if transfer.to_flipper and not self._flippers:
                flipper = self.world.new_owner("repeat")
                flipper.encashes = True
                self._flippers.append(flipper.wallet)
            buyer = pick_buyer(
                world_owners=[
                    o.wallet for o in self.world.owners.values()
                    if o.archetype in ("individual", "repeat")
                ],
                new_owner_factory=lambda: self.world.new_owner("individual").wallet,
                flippers=self._flippers,
                to_flipper=transfer.to_flipper,
                seller=seller,
                rng=rng,
            )
            if buyer is None or buyer == seller:
                continue
            if transfer.amount_dc > 0:
                self.chain.ledger.credit_dc(buyer, transfer.amount_dc)
            block = day * _BLOCKS_PER_DAY + int(rng.integers(_BLOCKS_PER_DAY))
            batch.append((block, TransferHotspot(
                gateway=gateway, seller=seller, buyer=buyer,
                amount_dc=transfer.amount_dc,
            )))
            seller_rec = self.world.owners.get(seller)
            if seller_rec is not None:
                seller_rec.hotspot_count -= 1
            buyer_rec = self.world.owners.get(buyer)
            if buyer_rec is not None:
                buyer_rec.hotspot_count += 1
            hotspot.owner = buyer
            hotspot.transfer_days.append(day)
            self._refresh_ferry_entry(hotspot)
            transferred.add(gateway)
            participant = self._participants.get(gateway)
            if participant is not None:
                participant.owner = buyer
        return transferred

    # ------------------------------------------------------------------ uptime --

    def _update_online(self, day: int) -> None:
        """Daily availability flip, fully vectorised.

        One batched roll over the fleet (identical stream consumption to
        the per-gateway loop it replaced: same count, same deployment
        order), one array compare against the uptime thresholds, and
        Python-level writes only where the state actually changed —
        unchanged hotspots already hold the target value, so skipping
        them is bit-identical by construction.
        """
        rng = self.hub.stream("uptime")
        n = len(self._fleet_hotspots)
        if n == 0:
            return
        rolls = rng.random(n)
        flags = rolls < np.asarray(self._fleet_uptime)
        previous = self._fleet_online
        if len(previous) < n:
            # Hotspots deployed since the last update start online (the
            # SimHotspot/PocParticipant constructor default), so a True
            # baseline makes "changed" mean "needs a write".
            previous = np.concatenate(
                [previous, np.ones(n - len(previous), dtype=bool)]
            )
        hotspots = self._fleet_hotspots
        participants = self._fleet_participants
        for i in np.flatnonzero(flags != previous).tolist():
            online = bool(flags[i])
            hotspots[i].online = online
            participant = participants[i]
            if participant is not None:
                participant.online = online
        self._fleet_online = flags
        self._fleet_poc_online = flags & np.asarray(
            self._fleet_is_poc, dtype=bool
        )

    def _update_online_reference(self, day: int) -> None:
        """Pre-vectorisation twin of :meth:`_update_online`.

        Replays the per-gateway Python loop (dict walk, scalar compare,
        unconditional attribute writes) including its costs; equivalence
        tests and ``bench_parallel.py`` compare the two paths.
        """
        rng = self.hub.stream("uptime")
        gateways = list(self._uptime.keys())
        if not gateways:
            return
        rolls = rng.random(len(gateways))
        for gateway, roll in zip(gateways, rolls):
            online = bool(roll < self._uptime[gateway])
            self.world.hotspots[gateway].online = online
            participant = self._participants.get(gateway)
            if participant is not None:
                participant.online = online

    # --------------------------------------------------------------------- PoC --

    def _run_poc(
        self,
        day: int,
        batch: List[Tuple[int, Transaction]],
        activity: EpochActivity,
    ) -> None:
        rng = self.hub.stream("poc")
        online = [p for p in self._participants.values() if p.online]
        if len(online) < 2:
            return
        n_challenges = int(round(
            len(online) * self.config.challenges_per_hotspot_day
        ))
        n_challenges = max(n_challenges, 1 if len(online) >= 10 else 0)
        for _ in range(n_challenges):
            challenger = online[int(rng.integers(len(online)))]
            challengee = challenger
            while challengee.gateway == challenger.gateway:
                challengee = online[int(rng.integers(len(online)))]
            candidates, candidate_km = self._candidates_for(challengee, rng)
            plan = plan_for_country(
                self.world.hotspots[challengee.gateway].city.country
            )
            outcome = run_challenge(
                challenger=challenger,
                challengee=challengee,
                candidates=candidates,
                rng=rng,
                checker=self.checker,
                plan=plan,
                distances_km=candidate_km,
            )
            block = day * _BLOCKS_PER_DAY + int(rng.integers(_BLOCKS_PER_DAY))
            # Challenges involving hotspots deployed today must land
            # after their add_gateway blocks.
            block = max(
                block,
                self.world.hotspots[challenger.gateway].added_block + 1,
                self.world.hotspots[challengee.gateway].added_block + 1,
            )
            batch.append((block, outcome.request))
            batch.append((block, outcome.receipts))
            activity.poc_events.append(outcome.event)

    def _candidates_for(
        self, challengee: PocParticipant, rng: np.random.Generator
    ) -> Tuple[List[PocParticipant], Optional[np.ndarray]]:
        """Capped nearest-first witness candidates, with their distances.

        Returns the candidate list plus the challengee→candidate actual
        distances already computed by the spatial index (``None`` when
        gossip-clique members were appended without one), which
        :func:`run_challenge` accepts to skip its own haversine pass.
        """
        nearby, distances = self.world.index.within_radius_distances(
            challengee.actual_location, 120.0
        )
        # Nearest-first cap: every in-range hotspot witnesses on the real
        # network, and the close ones dominate both counts and the RSSI
        # distribution — random subsampling would bias toward mid-range.
        # The stable argsort runs before the online filter (filtering
        # preserves relative order among equal distances, so the kept set
        # matches a filter-then-sort), and the boolean mask over the
        # sorted order plus a [:cap] slice replaces the old Python
        # nearest-first walk — same candidates, no per-element branching.
        cap = self.config.max_witness_candidates
        fleet_index = self._fleet_index
        idx = np.fromiter(
            (fleet_index[hotspot.gateway] for _, hotspot in nearby),
            dtype=np.intp,
            count=len(nearby),
        )
        order = np.argsort(distances, kind="stable")
        keep = order[self._fleet_poc_online[idx[order]]][:cap]
        participants_by_slot = self._fleet_participants
        kept: List[PocParticipant] = [
            participants_by_slot[int(slot)] for slot in idx[keep]
        ]
        # The index may lag a silent mover's relocation until the next
        # rebuild; its distance would then describe the stale point, so
        # hand none to the physics (object identity proves liveness).
        kept_km: Optional[np.ndarray] = distances[keep]
        for i, participant in zip(keep.tolist(), kept):
            if nearby[i][0] is not participant.actual_location:
                kept_km = None
                break
        if isinstance(challengee.cheat, GossipClique):
            participants = self._participants
            present = {c.gateway for c in kept}
            for member in sorted(challengee.cheat.members):
                participant = participants.get(member)
                if (
                    participant is not None
                    and participant.online
                    and member not in present
                ):
                    kept.append(participant)
                    kept_km = None
        if kept_km is None:
            return kept, None
        return kept, np.asarray(kept_km, dtype=float)

    def _candidates_for_reference(
        self, challengee: PocParticipant, rng: np.random.Generator
    ) -> Tuple[List[PocParticipant], Optional[np.ndarray]]:
        """Pre-vectorisation twin of :meth:`_candidates_for`.

        Replays the ``distances.tolist()`` materialisation and the
        per-element nearest-first walk; equivalence tests assert the
        fast path returns exactly the same candidates and distances.
        """
        nearby, distances = self.world.index.within_radius_distances(
            challengee.actual_location, 120.0
        )
        cap = self.config.max_witness_candidates
        participants = self._participants
        distance_list = distances.tolist()
        kept: List[PocParticipant] = []
        kept_km: Optional[List[float]] = []
        for i in np.argsort(distances, kind="stable").tolist():
            point, hotspot = nearby[i]
            participant = participants.get(hotspot.gateway)
            if participant is not None and participant.online:
                kept.append(participant)
                if kept_km is not None:
                    if point is participant.actual_location:
                        kept_km.append(distance_list[i])
                    else:
                        kept_km = None
                if len(kept) >= cap:
                    break
        if isinstance(challengee.cheat, GossipClique):
            present = {c.gateway for c in kept}
            for member in sorted(challengee.cheat.members):
                participant = participants.get(member)
                if (
                    participant is not None
                    and participant.online
                    and member not in present
                ):
                    kept.append(participant)
                    kept_km = None
        if kept_km is None:
            return kept, None
        return kept, np.asarray(kept_km, dtype=float)

    # ----------------------------------------------------------------- traffic --

    def _run_traffic(
        self,
        day: int,
        batch: List[Tuple[int, Transaction]],
        activity: EpochActivity,
        console_owner: Address,
        oui_owners: Dict[int, Address],
    ) -> None:
        rng = self.hub.stream("traffic")
        traffic = self.traffic.day_traffic(day, rng)
        weights = self._ferry_weights(day, rng)
        if not weights:
            return

        if traffic.spam_packets > 0 and not self._spammers:
            self._designate_spammers(rng)
        spam_weights = {
            gw: 1.0
            for gw, hs in self.world.hotspots.items()
            if hs.owner in self._spammers and hs.online
        }

        # Console channels: one open/close pair per close slot.
        closes = max(1, int(1440 / self.config.console_close_blocks / 2))
        per_close = traffic.console_packets // closes
        spam_per_close = traffic.spam_packets // closes
        for slot in range(closes):
            close_block = day * _BLOCKS_PER_DAY + (slot + 1) * (
                _BLOCKS_PER_DAY // closes
            ) - 1
            open_block = close_block - self.config.console_close_blocks
            alloc = self.traffic.attribute_packets(per_close, weights, rng)
            if spam_per_close > 0 and spam_weights:
                spam_alloc = self.traffic.attribute_packets(
                    spam_per_close, spam_weights, rng
                )
                for gw, count in spam_alloc.items():
                    alloc[gw] = alloc.get(gw, 0) + count
            self._emit_channel(
                batch, activity, console_owner, oui=1 + slot % 2,
                open_block=open_block, close_block=close_block, alloc=alloc,
                expire_blocks=self.config.console_close_blocks * 2,
            )

        # Third-party routers: later, sparser, longer channels.
        third_closes = self.traffic.channels_per_day(third_party=True)
        n_third = int(third_closes) + (
            1 if rng.random() < (third_closes % 1.0) else 0
        )
        if traffic.third_party_packets > 0 and n_third > 0:
            per_third = traffic.third_party_packets // n_third
            third_ouis = [oui for oui in oui_owners if oui > 2]
            for i in range(n_third):
                oui = third_ouis[int(rng.integers(len(third_ouis)))]
                close_block = day * _BLOCKS_PER_DAY + int(
                    rng.integers(500, _BLOCKS_PER_DAY)
                )
                alloc = self.traffic.attribute_packets(per_third, weights, rng)
                self._emit_channel(
                    batch, activity, oui_owners[oui], oui=oui,
                    open_block=close_block - 480, close_block=close_block,
                    alloc=alloc, expire_blocks=960,
                )

    def _emit_channel(
        self,
        batch: List[Tuple[int, Transaction]],
        activity: EpochActivity,
        owner: Address,
        oui: int,
        open_block: int,
        close_block: int,
        alloc: Dict[Address, int],
        expire_blocks: int,
    ) -> None:
        self._channel_seq += 1
        channel_id = f"sc-{oui}-{self._channel_seq}"
        total_dcs = sum(alloc.values())
        stake = max(total_dcs, 10_000)
        self.chain.ledger.credit_dc(owner, stake)
        batch.append((max(open_block, 2), StateChannelOpen(
            channel_id=channel_id, owner=owner, oui=oui,
            amount_dc=stake, expire_within_blocks=expire_blocks,
        )))
        summaries = tuple(
            StateChannelSummary(hotspot=gw, num_packets=count, num_dcs=count)
            for gw, count in sorted(alloc.items())
        )
        batch.append((close_block, StateChannelClose(
            channel_id=channel_id, owner=owner, oui=oui, summaries=summaries,
        )))
        for gw, count in alloc.items():
            hotspot = self.world.hotspots.get(gw)
            if hotspot is None:
                continue
            key = (gw, hotspot.owner)
            activity.data_packets[key] = activity.data_packets.get(key, 0) + count
            activity.data_dcs[key] = activity.data_dcs.get(key, 0) + count

    def _ferry_weights(
        self, day: int, rng: np.random.Generator
    ) -> Dict[Address, float]:
        """Which hotspots ferry organic data: commercial fleets dominate.

        Membership in the ferrying set is a stable property of where
        devices actually are (``SimHotspot.ferries_data``, fixed at
        deployment) — not a daily redraw, which would eventually hand
        every city hotspot a data transaction and erase the paper's
        application-vs-mining owner split (§4.3).

        The daily O(fleet) rebuild is gone: ``_ferry_base`` holds the
        would-ferry set (a few percent of the fleet) in deployment
        order, maintained on deploy and ownership change, and this
        method only applies the day's online filter to it. No RNG is
        involved, and the comprehension preserves the base map's
        deployment order, so packet attribution (which tie-breaks equal
        weights by insertion order) is bit-identical to the rebuild.
        """
        if self._ferry_order_stale:
            self._rebuild_ferry_base()
        return {
            gateway: weight
            for gateway, (hotspot, weight) in self._ferry_base.items()
            if hotspot.online
        }

    def _ferry_weights_reference(
        self, day: int, rng: np.random.Generator
    ) -> Dict[Address, float]:
        """Pre-elimination twin of :meth:`_ferry_weights`: the daily
        O(fleet) rebuild, kept as equivalence oracle and bench baseline."""
        weights: Dict[Address, float] = {}
        for hotspot in self.world.hotspots.values():
            if not hotspot.online or hotspot.is_validator:
                continue
            owner = self.world.owners.get(hotspot.owner)
            if owner is not None and owner.archetype == "commercial":
                weights[hotspot.gateway] = 30.0
            elif hotspot.ferries_data:
                weights[hotspot.gateway] = 1.0
        return weights

    def _ferry_base_weight(self, hotspot: SimHotspot) -> Optional[float]:
        """The weight ``hotspot`` would carry when online, else ``None``."""
        if hotspot.is_validator:
            return None
        owner = self.world.owners.get(hotspot.owner)
        if owner is not None and owner.archetype == "commercial":
            return 30.0
        if hotspot.ferries_data:
            return 1.0
        return None

    def _refresh_ferry_entry(self, hotspot: SimHotspot) -> None:
        """Keep the ferry base map current across an ownership change."""
        base = self._ferry_base_weight(hotspot)
        current = self._ferry_base.get(hotspot.gateway)
        if base is None:
            if current is not None:
                del self._ferry_base[hotspot.gateway]
        elif current is not None:
            if current[1] != base:
                # In-place value update: dict position (deployment
                # order) is preserved.
                self._ferry_base[hotspot.gateway] = (hotspot, base)
        else:
            # Re-inserting would append at the wrong position; rebuild
            # in deployment order on next use so attribution keeps its
            # stable tie-break. (Unreachable with the current buyer
            # model — buyers are never commercial — but cheap to keep
            # correct by construction.)
            self._ferry_order_stale = True

    def _rebuild_ferry_base(self) -> None:
        """Recompute the ferry base map in deployment order."""
        self._ferry_base = {}
        for hotspot in self.world.hotspots.values():
            base = self._ferry_base_weight(hotspot)
            if base is not None:
                self._ferry_base[hotspot.gateway] = (hotspot, base)
        self._ferry_order_stale = False

    def _designate_spammers(self, rng: np.random.Generator) -> None:
        """Pick the arbitrage gamers once DC rewards go live (§5.3.2)."""
        individuals = [
            o.wallet for o in self.world.owners.values()
            if o.archetype in ("individual", "repeat") and o.hotspot_count >= 1
        ]
        n = min(6, len(individuals))
        if n == 0:
            return
        picks = rng.choice(len(individuals), size=n, replace=False)
        self._spammers = [individuals[int(i)] for i in picks]

    # ----------------------------------------------------------------- rewards --

    def _mint_rewards(
        self,
        day: int,
        batch: List[Tuple[int, Transaction]],
        activity: EpochActivity,
        engine: RewardEngine,
        price: float,
    ) -> None:
        emission = (
            self.chain.vars.monthly_hnt_emission / 30.0
        ) * self.config.scale_factor
        owners = list(self.world.owners.keys())
        rng = self.hub.stream("consensus")
        if owners:
            n = min(16, len(owners))
            picks = rng.choice(len(owners), size=n, replace=False)
            activity.consensus_members = [owners[int(i)] for i in picks]
        activity.security_holders = [self._helium_co]
        rewards = engine.compute(activity, emission, price)
        if rewards.shares:
            batch.append((day * _BLOCKS_PER_DAY + _BLOCKS_PER_DAY - 1, rewards))

    def _encash(self, day: int, batch: List[Tuple[int, Transaction]]) -> None:
        """Weekly: speculator archetypes cash out most of their HNT (§4.3)."""
        if day % 7 != 3:
            return
        for owner in self.world.owners.values():
            if not owner.encashes:
                continue
            wallet = self.chain.ledger.wallets.get(owner.wallet)
            if wallet is None or wallet.hnt_bones < units.hnt_to_bones(5.0):
                continue
            amount = int(wallet.hnt_bones * 0.9)
            batch.append((day * _BLOCKS_PER_DAY + _BLOCKS_PER_DAY - 1, Payment(
                payer=owner.wallet, payee=self._exchange, amount_bones=amount,
            )))

    # ------------------------------------------------------------------ logging --

    def _log_growth(self, day: int, added: int) -> None:
        # Counted from the fleet arrays _update_online refreshed earlier
        # the same day (and _execute_moves keeps in_us current), so no
        # per-hotspot Python walk is needed.
        flags = self._fleet_online
        if len(flags) != len(self._fleet_hotspots):
            # The availability path was swapped out (reference twin in
            # an equivalence test); fall back to the authoritative
            # per-object state the twin does maintain.
            flags = np.fromiter(
                (hotspot.online for hotspot in self._fleet_hotspots),
                dtype=bool,
                count=len(self._fleet_hotspots),
            )
        online = int(np.count_nonzero(flags))
        online_us = int(np.count_nonzero(
            flags & np.asarray(self._fleet_in_us, dtype=bool)
        ))
        self._growth_log.append(GrowthLogRow(
            day=day,
            added_today=added,
            connected=len(self._fleet_hotspots),
            online=online,
            online_us=online_us,
            online_international=online - online_us,
        ))

    # ------------------------------------------------------------------ p2p --

    def _build_peerbook(self) -> Peerbook:
        rng = self.hub.stream("relay")
        peerbook = Peerbook()
        publics: List[Address] = []
        for hotspot in self.world.hotspots.values():
            if not hotspot.online or hotspot.backhaul is None:
                continue
            if hotspot.backhaul.has_public_ip:
                peerbook.add_direct(hotspot.gateway, hotspot.backhaul.ip)
                publics.append(hotspot.gateway)
        if not publics:
            return peerbook
        # Selection is geography-blind (the Fig. 11 result) but not
        # perfectly uniform: some relays are far more discoverable
        # (long-lived, well-connected), which produces the heavy tail of
        # Fig. 10 — one relay carrying dozens of peers.
        weights = rng.pareto(1.7, size=len(publics)) + 0.10
        weights = weights / weights.sum()
        for hotspot in self.world.hotspots.values():
            if not hotspot.online or hotspot.backhaul is None:
                continue
            if hotspot.backhaul.has_public_ip:
                continue
            relay = publics[int(rng.choice(len(publics), p=weights))]
            peerbook.add_relayed(hotspot.gateway, relay)
        for hotspot in self.world.hotspots.values():
            if not hotspot.online:
                peerbook.add_empty(hotspot.gateway)
        return peerbook
