"""Adoption process: how many hotspots come online each day (§4.2).

"Qualitatively, growth seems mostly limited by hotspot availability. New
production runs ('batches') are quickly placed into service." (Fig. 5)
We model exactly that: demand always exceeds supply; supply arrives in
monthly production batches that grow geometrically; daily placements
drain the current inventory with a short sell-out transient after each
batch lands.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import SimulationError
from repro.simulation.scenario import ScenarioConfig

__all__ = ["AdoptionSchedule", "build_adoption_schedule"]


class AdoptionSchedule:
    """Per-day deployment counts plus international share."""

    def __init__(self, daily_counts: List[int], international_share: List[float]) -> None:
        if len(daily_counts) != len(international_share):
            raise SimulationError("schedule arrays must align")
        self.daily_counts = daily_counts
        self.international_share = international_share

    @property
    def total(self) -> int:
        """Total hotspots deployed over the run."""
        return sum(self.daily_counts)

    def cumulative(self) -> List[int]:
        """Cumulative deployment curve (Fig. 5 upper series)."""
        out = []
        running = 0
        for count in self.daily_counts:
            running += count
            out.append(running)
        return out


def build_adoption_schedule(
    config: ScenarioConfig, rng: np.random.Generator
) -> AdoptionSchedule:
    """Build the day-by-day deployment schedule.

    Batches arrive every ``batch_interval_days``, each larger than the
    last by ``batch_growth``; batch sizes are normalised so the run ends
    at ``target_hotspots``. Within a batch window, placements front-load
    (hotspots sell out fast), with small multiplicative noise.
    """
    n_days = config.n_days
    n_batches = max(1, math.ceil(n_days / config.batch_interval_days))
    raw_batches = [config.batch_growth ** i for i in range(n_batches)]
    norm = config.target_hotspots / sum(raw_batches)
    batch_sizes = [raw * norm for raw in raw_batches]

    daily = [0.0] * n_days
    for batch_index, size in enumerate(batch_sizes):
        start = batch_index * config.batch_interval_days
        end = min(start + config.batch_interval_days, n_days)
        window = end - start
        if window <= 0:
            continue
        # Front-loaded drain: weight day d within the window by a
        # geometric decay — most units ship in the first week.
        weights = np.array([0.82 ** d for d in range(window)])
        weights = weights / weights.sum()
        noise = rng.uniform(0.7, 1.3, size=window)
        shaped = weights * noise
        shaped = shaped / shaped.sum() * size
        for offset in range(window):
            daily[start + offset] += shaped[offset]

    counts = _integerise(daily, config.target_hotspots)

    intl: List[float] = []
    ramp_days = 120.0
    for day in range(n_days):
        if day < config.international_launch_day:
            intl.append(0.0)
        else:
            progress = min(1.0, (day - config.international_launch_day) / ramp_days)
            intl.append(config.international_share_final * progress)
    return AdoptionSchedule(counts, intl)


def _integerise(daily: List[float], target: int) -> List[int]:
    """Round a fractional schedule to integers summing exactly to target."""
    counts = [int(x) for x in daily]
    remainders = sorted(
        range(len(daily)), key=lambda i: daily[i] - counts[i], reverse=True
    )
    deficit = target - sum(counts)
    for i in range(abs(deficit)):
        index = remainders[i % len(remainders)]
        counts[index] += 1 if deficit > 0 else -1
    return [max(0, c) for c in counts]
