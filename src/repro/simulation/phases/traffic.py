"""TrafficPhase: LoRaWAN data traffic settled through state channels."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro import units
from repro.chain.crypto import Address
from repro.chain.transactions import (
    StateChannelClose,
    StateChannelOpen,
    StateChannelSummary,
)
from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["TrafficPhase", "ferry_weights"]

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


def ferry_weights(
    state: WorldState, day: int, rng: np.random.Generator
) -> Dict[Address, float]:
    """Which hotspots ferry organic data: commercial fleets dominate.

    Membership in the ferrying set is a stable property of where
    devices actually are (``SimHotspot.ferries_data``, fixed at
    deployment) — not a daily redraw, which would eventually hand
    every city hotspot a data transaction and erase the paper's
    application-vs-mining owner split (§4.3).

    The daily O(fleet) rebuild is gone: ``state.ferry_base`` holds the
    would-ferry set (a few percent of the fleet) in deployment
    order, maintained on deploy and ownership change, and this
    function only applies the day's online filter to it. No RNG is
    involved, and the comprehension preserves the base map's
    deployment order, so packet attribution (which tie-breaks equal
    weights by insertion order) is bit-identical to the rebuild.
    """
    if state.ferry_order_stale:
        state.rebuild_ferry_base()
    return {
        gateway: weight
        for gateway, (hotspot, weight) in state.ferry_base.items()
        if hotspot.online
    }


class TrafficPhase(Phase):
    """Generates the day's traffic and its on-chain state channels.

    ``ferry_impl`` is swappable: equivalence tests monkeypatch it with
    :func:`repro.simulation.reference.ferry_weights_reference`.
    """

    name = "traffic"
    ferry_impl = staticmethod(ferry_weights)

    def run_day(self, state: WorldState, day: int) -> None:
        rng = state.hub.stream("traffic")
        traffic = state.traffic.day_traffic(day, rng)
        weights = self.ferry_impl(state, day, rng)
        if not weights:
            return

        if traffic.spam_packets > 0 and not state.spammers:
            self._designate_spammers(state, rng)
        spam_weights = {
            gw: 1.0
            for gw, hs in state.world.hotspots.items()
            if hs.owner in state.spammers and hs.online
        }

        # Console channels: one open/close pair per close slot.
        closes = max(1, int(1440 / state.config.console_close_blocks / 2))
        per_close = traffic.console_packets // closes
        spam_per_close = traffic.spam_packets // closes
        for slot in range(closes):
            close_block = day * _BLOCKS_PER_DAY + (slot + 1) * (
                _BLOCKS_PER_DAY // closes
            ) - 1
            open_block = close_block - state.config.console_close_blocks
            alloc = state.traffic.attribute_packets(per_close, weights, rng)
            if spam_per_close > 0 and spam_weights:
                spam_alloc = state.traffic.attribute_packets(
                    spam_per_close, spam_weights, rng
                )
                for gw, count in spam_alloc.items():
                    alloc[gw] = alloc.get(gw, 0) + count
            self._emit_channel(
                state, state.console_owner, oui=1 + slot % 2,
                open_block=open_block, close_block=close_block, alloc=alloc,
                expire_blocks=state.config.console_close_blocks * 2,
            )

        # Third-party routers: later, sparser, longer channels.
        third_closes = state.traffic.channels_per_day(third_party=True)
        n_third = int(third_closes) + (
            1 if rng.random() < (third_closes % 1.0) else 0
        )
        if traffic.third_party_packets > 0 and n_third > 0:
            per_third = traffic.third_party_packets // n_third
            third_ouis = [oui for oui in state.oui_owners if oui > 2]
            for _ in range(n_third):
                oui = third_ouis[int(rng.integers(len(third_ouis)))]
                close_block = day * _BLOCKS_PER_DAY + int(
                    rng.integers(500, _BLOCKS_PER_DAY)
                )
                alloc = state.traffic.attribute_packets(
                    per_third, weights, rng
                )
                self._emit_channel(
                    state, state.oui_owners[oui], oui=oui,
                    open_block=close_block - 480, close_block=close_block,
                    alloc=alloc, expire_blocks=960,
                )

    @staticmethod
    def _emit_channel(
        state: WorldState,
        owner: Address,
        oui: int,
        open_block: int,
        close_block: int,
        alloc: Dict[Address, int],
        expire_blocks: int,
    ) -> None:
        state.channel_seq += 1
        channel_id = f"sc-{oui}-{state.channel_seq}"
        total_dcs = sum(alloc.values())
        stake = max(total_dcs, 10_000)
        state.chain.ledger.credit_dc(owner, stake)
        state.batch.append((max(open_block, 2), StateChannelOpen(
            channel_id=channel_id, owner=owner, oui=oui,
            amount_dc=stake, expire_within_blocks=expire_blocks,
        )))
        summaries = tuple(
            StateChannelSummary(hotspot=gw, num_packets=count, num_dcs=count)
            for gw, count in sorted(alloc.items())
        )
        state.batch.append((close_block, StateChannelClose(
            channel_id=channel_id, owner=owner, oui=oui, summaries=summaries,
        )))
        for gw, count in alloc.items():
            hotspot = state.world.hotspots.get(gw)
            if hotspot is None:
                continue
            key = (gw, hotspot.owner)
            activity = state.activity
            activity.data_packets[key] = (
                activity.data_packets.get(key, 0) + count
            )
            activity.data_dcs[key] = activity.data_dcs.get(key, 0) + count

    @staticmethod
    def _designate_spammers(
        state: WorldState, rng: np.random.Generator
    ) -> None:
        """Pick the arbitrage gamers once DC rewards go live (§5.3.2)."""
        individuals = [
            o.wallet for o in state.world.owners.values()
            if o.archetype in ("individual", "repeat") and o.hotspot_count >= 1
        ]
        n = min(6, len(individuals))
        if n == 0:
            return
        picks = rng.choice(len(individuals), size=n, replace=False)
        state.spammers = [individuals[int(i)] for i in picks]
