"""TrafficPhase: LoRaWAN data traffic settled through state channels.

The phase is split into the same leader/worker halves as PoC
(:mod:`repro.simulation.phases.poc`): a *plan* half that owns the
``"traffic"`` RNG stream and draws volumes, spammer designation and
per-channel packet attribution serially, and a randomness-free *finish*
half — building the ``StateChannelOpen``/``StateChannelClose``
transaction pair (sorted summaries, stake arithmetic) for each planned
channel — that can scatter over the shard pool grouped by hex region.
The leader then applies ledger credits, batch appends and activity
updates in channel order, so ``--shard-workers N`` is byte-identical to
serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro import units
from repro.chain.crypto import Address
from repro.chain.transactions import (
    StateChannelClose,
    StateChannelOpen,
    StateChannelSummary,
)
from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["ChannelPlan", "TrafficPhase", "ferry_weights", "finish_channel"]

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


def ferry_weights(
    state: WorldState, day: int, rng: np.random.Generator
) -> Dict[Address, float]:
    """Which hotspots ferry organic data: commercial fleets dominate.

    Membership in the ferrying set is a stable property of where
    devices actually are (``SimHotspot.ferries_data``, fixed at
    deployment) — not a daily redraw, which would eventually hand
    every city hotspot a data transaction and erase the paper's
    application-vs-mining owner split (§4.3).

    Columnar: the would-ferry set is the ``ferry_weight`` fleet column
    (non-zero for a few percent of slots, maintained on deploy and
    ownership change), and the day's online filter is one vectorised
    mask. No RNG is involved, and ascending slot order *is* deployment
    order, so packet attribution (which tie-breaks equal weights by
    insertion order) is bit-identical to the old incrementally
    maintained dict — with no insertion-order staleness to track.
    """
    cols = state.fleet
    if cols.n == 0:
        return {}
    mask = cols.ferry_weight > 0.0
    mask &= cols.online_mask(day)
    weights = cols.ferry_weight
    gateways = cols.gateways
    return {
        gateways[i]: float(weights[i])
        for i in np.flatnonzero(mask).tolist()
    }


@dataclass(frozen=True)
class ChannelPlan:
    """One planned state channel: everything the randomness-free finish
    half needs, as picklable primitives. ``region`` is the shard key —
    the res-4 hex token of the channel's heaviest gateway (where its
    traffic concentrates), '' when unknown."""

    owner: Address
    oui: int
    channel_id: str
    open_block: int
    close_block: int
    alloc: Tuple[Tuple[Address, int], ...]
    expire_blocks: int
    region: str


def finish_channel(plan: ChannelPlan) -> Tuple[StateChannelOpen, StateChannelClose]:
    """Build the open/close transaction pair for a planned channel.

    Pure function of the plan — no RNG, no world state — so it runs
    identically on the leader or on any shard worker.
    """
    total_dcs = sum(count for _, count in plan.alloc)
    stake = max(total_dcs, 10_000)
    open_txn = StateChannelOpen(
        channel_id=plan.channel_id, owner=plan.owner, oui=plan.oui,
        amount_dc=stake, expire_within_blocks=plan.expire_blocks,
    )
    summaries = tuple(
        StateChannelSummary(hotspot=gw, num_packets=count, num_dcs=count)
        for gw, count in sorted(plan.alloc)
    )
    close_txn = StateChannelClose(
        channel_id=plan.channel_id, owner=plan.owner, oui=plan.oui,
        summaries=summaries,
    )
    return open_txn, close_txn


class TrafficPhase(Phase):
    """Generates the day's traffic and its on-chain state channels.

    ``ferry_impl`` is swappable: equivalence tests monkeypatch it with
    :func:`repro.simulation.reference.ferry_weights_reference`.
    """

    name = "traffic"
    ferry_impl = staticmethod(ferry_weights)

    def run_day(self, state: WorldState, day: int) -> None:
        plans = self._plan_day(state, day)
        if not plans:
            return
        pool = state.shard_pool
        if pool is not None and len(plans) > 1:
            finished = self._finish_sharded(state, plans)
        else:
            finished = [finish_channel(plan) for plan in plans]
        for plan, (open_txn, close_txn) in zip(plans, finished):
            self._apply_channel(state, plan, open_txn, close_txn)

    # ------------------------------------------------------------- plan --

    def _plan_day(self, state: WorldState, day: int) -> List[ChannelPlan]:
        """The leader half: every ``"traffic"`` stream draw — volumes,
        spammer designation, per-channel attribution — happens here, in
        exactly the order the unsplit phase consumed it (transaction
        assembly never drew randomness, so hoisting it out changes no
        draw)."""
        rng = state.hub.stream("traffic")
        traffic = state.traffic.day_traffic(day, rng)
        weights = self.ferry_impl(state, day, rng)
        if not weights:
            return []

        if traffic.spam_packets > 0 and not state.spammers:
            self._designate_spammers(state, rng)
        spam_weights = self._spam_weights(state, day)

        plans: List[ChannelPlan] = []
        # Console channels: one open/close pair per close slot.
        closes = max(1, int(1440 / state.config.console_close_blocks / 2))
        per_close = traffic.console_packets // closes
        spam_per_close = traffic.spam_packets // closes
        for slot in range(closes):
            close_block = day * _BLOCKS_PER_DAY + (slot + 1) * (
                _BLOCKS_PER_DAY // closes
            ) - 1
            open_block = close_block - state.config.console_close_blocks
            alloc = state.traffic.attribute_packets(per_close, weights, rng)
            if spam_per_close > 0 and spam_weights:
                spam_alloc = state.traffic.attribute_packets(
                    spam_per_close, spam_weights, rng
                )
                for gw, count in spam_alloc.items():
                    alloc[gw] = alloc.get(gw, 0) + count
            plans.append(self._plan_channel(
                state, state.console_owner, oui=1 + slot % 2,
                open_block=open_block, close_block=close_block, alloc=alloc,
                expire_blocks=state.config.console_close_blocks * 2,
            ))

        # Third-party routers: later, sparser, longer channels.
        third_closes = state.traffic.channels_per_day(third_party=True)
        n_third = int(third_closes) + (
            1 if rng.random() < (third_closes % 1.0) else 0
        )
        if traffic.third_party_packets > 0 and n_third > 0:
            per_third = traffic.third_party_packets // n_third
            third_ouis = [oui for oui in state.oui_owners if oui > 2]
            for _ in range(n_third):
                oui = third_ouis[int(rng.integers(len(third_ouis)))]
                close_block = day * _BLOCKS_PER_DAY + int(
                    rng.integers(500, _BLOCKS_PER_DAY)
                )
                alloc = state.traffic.attribute_packets(
                    per_third, weights, rng
                )
                plans.append(self._plan_channel(
                    state, state.oui_owners[oui], oui=oui,
                    open_block=close_block - 480, close_block=close_block,
                    alloc=alloc, expire_blocks=960,
                ))
        return plans

    @staticmethod
    def _plan_channel(
        state: WorldState,
        owner: Address,
        oui: int,
        open_block: int,
        close_block: int,
        alloc: Dict[Address, int],
        expire_blocks: int,
    ) -> ChannelPlan:
        state.channel_seq += 1
        region = ""
        if alloc:
            # Heaviest gateway, count-descending with the gateway as a
            # deterministic tie-break.
            top = min(alloc.items(), key=lambda kv: (-kv[1], kv[0]))[0]
            slot = state.fleet.index.get(top)
            if slot is not None:
                region = state.fleet.regions[slot]
        return ChannelPlan(
            owner=owner,
            oui=oui,
            channel_id=f"sc-{oui}-{state.channel_seq}",
            open_block=open_block,
            close_block=close_block,
            alloc=tuple(alloc.items()),
            expire_blocks=expire_blocks,
            region=region,
        )

    # ----------------------------------------------------------- finish --

    @staticmethod
    def _finish_sharded(
        state: WorldState, plans: List[ChannelPlan]
    ) -> List[Tuple[StateChannelOpen, StateChannelClose]]:
        """Scatter channel finishes over the shard pool; gather aligned
        with ``plans``.

        Partition: channel indices sort by (region, index) and split
        into contiguous chunks, one per worker — the same geographic
        grouping as the PoC phase. Merge: every transaction pair comes
        back tagged with its channel index, so the apply loop replays in
        channel order and the output is byte-identical to serial for
        any worker count.
        """
        pool = state.shard_pool
        order = sorted(
            range(len(plans)), key=lambda i: (plans[i].region, i)
        )
        n_chunks = min(pool.workers, len(order))
        base, extra = divmod(len(order), n_chunks)
        chunks = []
        start = 0
        for c in range(n_chunks):
            size = base + (1 if c < extra else 0)
            chunks.append(order[start:start + size])
            start += size
        gathered = pool.run([
            ("traffic_finish", ([plans[i] for i in chunk], chunk))
            for chunk in chunks
        ])
        finished: Dict[int, Tuple] = {}
        for part in gathered:
            for index, pair in part:
                finished[index] = pair
        return [finished[i] for i in range(len(plans))]

    # ------------------------------------------------------------ apply --

    @staticmethod
    def _apply_channel(
        state: WorldState,
        plan: ChannelPlan,
        open_txn: StateChannelOpen,
        close_txn: StateChannelClose,
    ) -> None:
        """Leader-side mutations, replayed in channel order: ledger
        stake credit, batch appends, per-hotspot activity tallies."""
        state.chain.ledger.credit_dc(plan.owner, open_txn.amount_dc)
        state.batch.append((max(plan.open_block, 2), open_txn))
        state.batch.append((plan.close_block, close_txn))
        activity = state.activity
        for gw, count in plan.alloc:
            hotspot = state.world.hotspots.get(gw)
            if hotspot is None:
                continue
            key = (gw, hotspot.owner)
            activity.data_packets[key] = (
                activity.data_packets.get(key, 0) + count
            )
            activity.data_dcs[key] = activity.data_dcs.get(key, 0) + count

    # --------------------------------------------------------- spammers --

    @staticmethod
    def _spam_weights(state: WorldState, day: int) -> Dict[Address, float]:
        """Online hotspots owned by designated spammers, columnar: an
        owner-id membership mask against the owner column instead of
        the old O(fleet) Python walk over ``world.hotspots``. Ascending
        slot order preserves the walk's deployment-order iteration."""
        cols = state.fleet
        if not state.spammers or cols.n == 0:
            return {}
        spammer_ids = [
            cols.owner_slots[wallet]
            for wallet in state.spammers
            if wallet in cols.owner_slots
        ]
        if not spammer_ids:
            return {}
        mask = np.isin(
            cols.owner_index, np.asarray(spammer_ids, dtype=np.int32)
        )
        mask &= cols.online_mask(day)
        gateways = cols.gateways
        return {gateways[i]: 1.0 for i in np.flatnonzero(mask).tolist()}

    @staticmethod
    def _designate_spammers(
        state: WorldState, rng: np.random.Generator
    ) -> None:
        """Pick the arbitrage gamers once DC rewards go live (§5.3.2)."""
        individuals = [
            o.wallet for o in state.world.owners.values()
            if o.archetype in ("individual", "repeat") and o.hotspot_count >= 1
        ]
        n = min(6, len(individuals))
        if n == 0:
            return
        picks = rng.choice(len(individuals), size=n, replace=False)
        state.spammers = [individuals[int(i)] for i in picks]
