"""MintPhase: flush the day's transaction batch into blocks."""

from __future__ import annotations

from typing import Dict, List

from repro.chain.transactions import Transaction
from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["MintPhase"]


class MintPhase(Phase):
    """Mints the day's transactions grouped by target block."""

    name = "mint"

    def run_day(self, state: WorldState, day: int) -> None:
        batch = state.batch
        if not batch:
            return
        by_block: Dict[int, List[Transaction]] = {}
        floor = state.chain.height + 1
        for block, txn in batch:
            by_block.setdefault(max(block, floor), []).append(txn)
        for block in sorted(by_block):
            target = max(block, state.chain.height + 1)
            state.chain.submit_many(by_block[block])
            state.chain.mint_block(target)
