"""RewardsPhase: the day's HNT emission split across activity."""

from __future__ import annotations

from repro import units
from repro.economics.rewards import RewardEngine
from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["RewardsPhase"]

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


class RewardsPhase(Phase):
    """Computes and enqueues the daily rewards transaction.

    The two :class:`RewardEngine` variants are stateless (pure splits
    over the day's activity), so holding them on the phase — rather
    than in :class:`WorldState` — is resume-safe.
    """

    name = "rewards"

    def __init__(self) -> None:
        self._pre_hip10 = RewardEngine(hip10_cap=False)
        self._post_hip10 = RewardEngine(hip10_cap=True)

    def run_day(self, state: WorldState, day: int) -> None:
        engine = (
            self._post_hip10 if day >= state.config.hip10_day
            else self._pre_hip10
        )
        emission = (
            state.chain.vars.monthly_hnt_emission / 30.0
        ) * state.config.scale_factor
        # The world maintains the wallet list in registration order —
        # identical to the old list(owners.keys()) materialisation, so
        # the consensus draw (and with it every digest) is unchanged,
        # without an O(owners) copy every simulated day.
        owners = state.world.owner_wallets
        rng = state.hub.stream("consensus")
        if owners:
            n = min(16, len(owners))
            picks = rng.choice(len(owners), size=n, replace=False)
            state.activity.consensus_members = [
                owners[int(i)] for i in picks
            ]
        state.activity.security_holders = [state.helium_co]
        rewards = engine.compute(state.activity, emission, state.price_today)
        if rewards.shares:
            state.batch.append(
                (day * _BLOCKS_PER_DAY + _BLOCKS_PER_DAY - 1, rewards)
            )
