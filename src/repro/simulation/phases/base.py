"""Phase protocol: one day-loop subsystem.

A phase owns no mutable run state — everything lives on the
:class:`~repro.simulation.state.WorldState` it receives — so phases are
freely reorderable in tests, swappable for reference twins, and a
resumed run constructs fresh phase objects without any behavioural
drift. A phase *may* hold immutable configuration built in
``__init__`` (e.g. the reward engines), never per-run data.
"""

from __future__ import annotations

from repro.simulation.state import WorldState

__all__ = ["Phase"]


class Phase:
    """One ordered subsystem of the simulation day loop."""

    #: Stable phase key: names the scheduler timing bucket, the
    #: ``--profile`` entry and the ``engine.phase.<name>`` metric.
    name: str = ""

    def run_day(self, state: WorldState, day: int) -> None:
        raise NotImplementedError
