"""LogPhase: end-of-day fleet growth bookkeeping."""

from __future__ import annotations

import numpy as np

from repro.simulation.phases.base import Phase
from repro.simulation.state import GrowthLogRow, WorldState

__all__ = ["LogPhase"]


class LogPhase(Phase):
    name = "log"

    def run_day(self, state: WorldState, day: int) -> None:
        # Counted from the fleet columns the online phase stamped
        # earlier the same day (and the moves phase keeps in_us
        # current). online_mask falls back to the authoritative
        # per-object flags when the availability path was swapped for
        # its reference twin, which only writes objects.
        cols = state.fleet
        flags = cols.online_mask(day)
        online = int(np.count_nonzero(flags))
        online_us = int(np.count_nonzero(flags & cols.in_us))
        state.growth_log.append(GrowthLogRow(
            day=day,
            added_today=state.added_today,
            connected=cols.n,
            online=online,
            online_us=online_us,
            online_international=online - online_us,
        ))
