"""LogPhase: end-of-day fleet growth bookkeeping."""

from __future__ import annotations

import numpy as np

from repro.simulation.phases.base import Phase
from repro.simulation.state import GrowthLogRow, WorldState

__all__ = ["LogPhase"]


class LogPhase(Phase):
    name = "log"

    def run_day(self, state: WorldState, day: int) -> None:
        # Counted from the fleet arrays the online phase refreshed
        # earlier the same day (and the moves phase keeps in_us
        # current), so no per-hotspot Python walk is needed.
        flags = state.fleet_online
        if len(flags) != len(state.fleet_hotspots):
            # The availability path was swapped out (reference twin in
            # an equivalence test); fall back to the authoritative
            # per-object state the twin does maintain.
            flags = np.fromiter(
                (hotspot.online for hotspot in state.fleet_hotspots),
                dtype=bool,
                count=len(state.fleet_hotspots),
            )
        online = int(np.count_nonzero(flags))
        online_us = int(np.count_nonzero(
            flags & np.asarray(state.fleet_in_us, dtype=bool)
        ))
        state.growth_log.append(GrowthLogRow(
            day=day,
            added_today=state.added_today,
            connected=len(state.fleet_hotspots),
            online=online,
            online_us=online_us,
            online_international=online - online_us,
        ))
