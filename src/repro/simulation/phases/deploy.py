"""DeployPhase: the day's hotspot batch (add_gateway + assert_location)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import units
from repro.chain.crypto import Address
from repro.chain.transactions import AddGateway, AssertLocation
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexGrid
from repro.p2p.backhaul import assign_backhaul
from repro.poc.challenge import PocParticipant
from repro.poc.cheats import RssiLiar, SilentMover
from repro.radio.propagation import Environment, environment_for_city
from repro.simulation.moves import PlannedMove
from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState
from repro.simulation.world import SimHotspot

__all__ = ["DeployPhase"]

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


class DeployPhase(Phase):
    """Deploys the adoption schedule's daily batch of hotspots."""

    name = "deploy"

    def run_day(self, state: WorldState, day: int) -> None:
        rng = state.hub.stream("deploy")
        count = state.schedule.daily_counts[day]
        intl_share = state.schedule.international_share[day]
        for _ in range(count):
            self._deploy_one(state, day, intl_share, rng)
        state.added_today = count

    def _deploy_one(
        self,
        state: WorldState,
        day: int,
        intl_share: float,
        rng: np.random.Generator,
    ) -> None:
        config = state.config
        batch = state.batch
        owner = state.owners.assign(day, rng)
        city = state.owners.deployment_city(owner, day, intl_share, rng)
        actual = state.world.cities.sample_location_in_city(rng, city)
        gateway = state.world.new_gateway_address()

        is_validator = float(rng.random()) < config.validator_fraction
        cheat = None
        mismatched_assert = False
        if not is_validator:
            cheat, mismatched_assert = self._maybe_cheat(
                state, gateway, city, rng
            )

        environment = environment_for_city(
            city.population,
            city.location.distance_km(actual),
            city.scatter_radius_km(),
        )
        gain = 1.2
        if float(rng.random()) < config.high_gain_fraction:
            gain = float(rng.uniform(5.0, 9.0))
            environment = (
                Environment.RURAL if rng.random() < 0.85
                else Environment.OVER_WATER
            )

        initial_null = state.moves.initial_assert_is_null(rng)
        if initial_null:
            asserted = LatLon(0.0, 0.0)
        elif mismatched_assert:
            wrong_city = state.world.cities.sample_city(
                rng, country=city.country
            )
            asserted = state.world.cities.sample_location_in_city(
                rng, wrong_city
            )
        else:
            asserted = HexGrid.quantize(actual)

        backhaul = assign_backhaul(
            state.world.isps, city, state.hub.stream("backhaul"),
            cloud=is_validator,
        )
        hotspot = SimHotspot(
            gateway=gateway,
            owner=owner.wallet,
            city=city,
            actual_location=actual,
            asserted_location=asserted,
            environment=environment,
            antenna_gain_dbi=gain,
            backhaul=backhaul,
            is_validator=is_validator,
            added_day=day,
            assert_nonce=1,
            cheat=cheat,
        )
        hotspot.ferries_data = (
            city.population > 400_000 and float(rng.random()) < 0.05
        )
        state.world.add_hotspot(hotspot)
        uptime = self._draw_uptime(state, rng)
        state.uptime[gateway] = uptime

        block = day * _BLOCKS_PER_DAY + int(rng.integers(_BLOCKS_PER_DAY // 4))
        hotspot.added_block = block
        batch.append((block, AddGateway(gateway=gateway, owner=owner.wallet)))
        batch.append((block, AssertLocation(
            gateway=gateway,
            owner=owner.wallet,
            location_token=HexGrid.encode_cell(asserted).token,
            nonce=1,
        )))

        transfers = state.resale.plan(day, rng)
        for transfer in transfers:
            state.transfer_queue.setdefault(transfer.day, []).append(
                (gateway, transfer)
            )
        first_transfer = transfers[0].day if transfers else None
        planned = state.moves.plan(
            day, rng,
            initial_null=initial_null,
            will_transfer_on=first_transfer,
        )
        if isinstance(cheat, SilentMover) and not mismatched_assert:
            # Guarantee the silent mover actually moves mid-life, early
            # enough to accumulate contradictory witnessing afterwards.
            move_day = min(
                day + float(rng.uniform(20, 120)), config.n_days - 15.0
            )
            move_day = max(move_day, day + 3.0)
            planned.append(PlannedMove(day=move_day, kind="long"))
        for move in planned:
            state.move_queue.setdefault(int(move.day), []).append(
                (gateway, move)
            )

        participant = None
        if not is_validator:
            participant = PocParticipant(
                gateway=gateway,
                owner=owner.wallet,
                asserted_location=asserted,
                actual_location=actual,
                environment=environment,
                antenna_gain_dbi=gain,
                online=True,
                cheat=cheat,
            )
            state.participants[gateway] = participant
        state.register_fleet(hotspot, participant, uptime)

    @staticmethod
    def _maybe_cheat(
        state: WorldState, gateway: Address, city, rng: np.random.Generator
    ):
        """Assign a cheat strategy (and whether the assert lies from day 1)."""
        config = state.config
        for i, (clique_id, clique_city, left) in enumerate(
            state.clique_pending
        ):
            if left > 0 and city.name == clique_city:
                clique = state.clique_registry[clique_id]
                clique.members.add(gateway)
                state.clique_pending[i] = (clique_id, clique_city, left - 1)
                return clique, False
        roll = float(rng.random())
        if roll < config.silent_mover_fraction:
            # Half move later silently; half asserted a lie from day one
            # (the "Striped Yellow Bird" pattern, §7.1).
            return SilentMover(), bool(rng.random() < 0.5)
        if roll < config.silent_mover_fraction + config.rssi_liar_fraction:
            return RssiLiar(), False
        return None, False

    @staticmethod
    def _draw_uptime(state: WorldState, rng: np.random.Generator) -> float:
        """Per-hotspot daily availability, mixing to the online target."""
        target = state.config.online_fraction
        roll = float(rng.random())
        # Mixture calibrated so the expected value ≈ the online target:
        # 0.70·(t+0.15) + 0.22·(t−0.24) + 0.08·0.12 ≈ t for t = 0.78.
        if roll < 0.70:
            return min(0.97, target + 0.15)
        if roll < 0.92:
            return max(0.05, target - 0.24)
        return 0.12  # the mostly-dead tail
