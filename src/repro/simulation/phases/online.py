"""OnlinePhase: the daily availability flip over the whole fleet."""

from __future__ import annotations

import numpy as np

from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["OnlinePhase", "update_online"]


def update_online(state: WorldState, day: int) -> None:
    """Daily availability flip over the fleet columns.

    One batched roll over the fleet (identical stream consumption to
    the per-gateway loop it replaced: same count, same deployment
    order), one array compare against the contiguous uptime column —
    no per-day list materialisation — and Python-level writes only
    where the state actually changed: unchanged hotspots already hold
    the target value, so skipping them is bit-identical by
    construction. New deploys append with ``online=True`` (the
    SimHotspot/PocParticipant constructor default), so the column is
    always fleet-length and needs no padding.
    """
    rng = state.hub.stream("uptime")
    cols = state.fleet
    n = cols.n
    if n == 0:
        return
    rolls = rng.random(n)
    flags = rolls < cols.uptime
    hotspots = cols.hotspots
    participants = cols.participants
    for i in np.flatnonzero(flags != cols.online).tolist():
        online = bool(flags[i])
        hotspots[i].online = online
        participant = participants[i]
        if participant is not None:
            participant.online = online
    cols.online[:] = flags
    np.logical_and(flags, cols.is_poc, out=cols.poc_online)
    cols.online_day = day


class OnlinePhase(Phase):
    """Applies the day's online/offline flips.

    The implementation is swappable: equivalence tests monkeypatch
    ``impl`` with :func:`repro.simulation.reference.
    update_online_reference` and assert the digest does not move.
    """

    name = "online"
    impl = staticmethod(update_online)

    def run_day(self, state: WorldState, day: int) -> None:
        self.impl(state, day)
