"""OnlinePhase: the daily availability flip over the whole fleet."""

from __future__ import annotations

import numpy as np

from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["OnlinePhase", "update_online"]


def update_online(state: WorldState, day: int) -> None:
    """Daily availability flip, fully vectorised.

    One batched roll over the fleet (identical stream consumption to
    the per-gateway loop it replaced: same count, same deployment
    order), one array compare against the uptime thresholds, and
    Python-level writes only where the state actually changed —
    unchanged hotspots already hold the target value, so skipping
    them is bit-identical by construction.
    """
    rng = state.hub.stream("uptime")
    n = len(state.fleet_hotspots)
    if n == 0:
        return
    rolls = rng.random(n)
    flags = rolls < np.asarray(state.fleet_uptime)
    previous = state.fleet_online
    if len(previous) < n:
        # Hotspots deployed since the last update start online (the
        # SimHotspot/PocParticipant constructor default), so a True
        # baseline makes "changed" mean "needs a write".
        previous = np.concatenate(
            [previous, np.ones(n - len(previous), dtype=bool)]
        )
    hotspots = state.fleet_hotspots
    participants = state.fleet_participants
    for i in np.flatnonzero(flags != previous).tolist():
        online = bool(flags[i])
        hotspots[i].online = online
        participant = participants[i]
        if participant is not None:
            participant.online = online
    state.fleet_online = flags
    state.fleet_poc_online = flags & np.asarray(
        state.fleet_is_poc, dtype=bool
    )


class OnlinePhase(Phase):
    """Applies the day's online/offline flips.

    The implementation is swappable: equivalence tests monkeypatch
    ``impl`` with :func:`repro.simulation.reference.
    update_online_reference` and assert the digest does not move.
    """

    name = "online"
    impl = staticmethod(update_online)

    def run_day(self, state: WorldState, day: int) -> None:
        self.impl(state, day)
