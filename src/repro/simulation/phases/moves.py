"""MovesPhase: scheduled relocations (silent movers never re-assert)."""

from __future__ import annotations

from typing import Dict

from repro import units
from repro.chain.crypto import Address
from repro.chain.transactions import AssertLocation
from repro.errors import SimulationError
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexGrid
from repro.poc.cheats import SilentMover
from repro.radio.propagation import environment_for_city
from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["MovesPhase"]

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


class MovesPhase(Phase):
    """Executes the day's move queue against the world and the chain."""

    name = "moves"

    def run_day(self, state: WorldState, day: int) -> None:
        rng = state.hub.stream("moves")
        vars = state.chain.vars
        batch = state.batch
        transferred_today = state.transferred_today
        last_block_today: Dict[Address, int] = {}
        for gateway, move in state.move_queue.pop(day, []):
            hotspot = state.world.hotspots.get(gateway)
            if hotspot is None:
                continue
            if gateway in transferred_today:
                # Transfer and move in one day would interleave blocks
                # inconsistently with ledger ownership; defer the move.
                if day + 1 < state.config.n_days:
                    move.day = float(day + 1)
                    state.move_queue.setdefault(day + 1, []).append(
                        (gateway, move)
                    )
                continue
            if move.kind == "short":
                target = state.moves.short_move_target(
                    hotspot.actual_location, hotspot.city, rng
                )
                new_city = hotspot.city
            elif move.kind == "long":
                new_city = state.moves.long_move_target(
                    day, hotspot.in_us, state.world.cities, rng
                )
                target = state.world.cities.sample_location_in_city(
                    rng, new_city
                )
            elif move.kind == "to_null":
                target = LatLon(0.0, 0.0)
                new_city = hotspot.city
            elif move.kind == "from_null":
                target = state.world.cities.sample_location_in_city(
                    rng, hotspot.city
                )
                new_city = hotspot.city
            else:
                raise SimulationError(f"unknown move kind {move.kind!r}")

            silent = (
                isinstance(hotspot.cheat, SilentMover)
                and move.kind == "long"
            )
            state.world.relocate(hotspot, target, new_city)
            slot = state.fleet.index[gateway]
            state.fleet.relocate(slot, hotspot)
            if hotspot.antenna_gain_dbi <= 2.0:
                hotspot.environment = environment_for_city(
                    new_city.population,
                    new_city.location.distance_km(target),
                    new_city.scatter_radius_km(),
                )
            participant = state.participants.get(gateway)
            if participant is not None:
                participant.actual_location = target
                participant.environment = hotspot.environment
            if silent:
                continue  # physically moved, never re-asserts (§7.1)

            nonce = hotspot.assert_nonce + 1
            fee = 0
            if nonce > vars.free_location_asserts:
                fee = (
                    vars.assert_location_fee_dc
                    + vars.assert_location_staking_fee_dc
                )
                state.chain.ledger.credit_dc(hotspot.owner, fee)
            asserted = (
                LatLon(0.0, 0.0) if move.kind == "to_null"
                else HexGrid.quantize(target)
            )
            hotspot.asserted_location = asserted
            hotspot.assert_nonce = nonce
            hotspot.move_days.append(day)
            if participant is not None:
                participant.asserted_location = asserted
                state.fleet.reassert(slot)
            block = day * _BLOCKS_PER_DAY + int(
                (move.day - int(move.day)) * _BLOCKS_PER_DAY
            )
            # Same-day moves must land after the deployment's block and
            # after this hotspot's earlier asserts (nonce ordering).
            block = max(
                block,
                hotspot.added_block + 1,
                last_block_today.get(gateway, -1) + 1,
            )
            last_block_today[gateway] = block
            batch.append((block, AssertLocation(
                gateway=gateway,
                owner=hotspot.owner,
                location_token=HexGrid.encode_cell(asserted).token,
                nonce=nonce,
                fee_dc=fee,
            )))
