"""PoCPhase: thinned Proof-of-Coverage over real radio geometry."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import units
from repro.poc.challenge import (
    PocParticipant,
    finish_challenge,
    plan_challenge,
)
from repro.poc.cheats import GossipClique
from repro.radio.lora import plan_for_country
from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["PoCPhase", "candidates_for"]

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY

# The geographic shard key (challengee's res-4 parent cell, ~1700 km²
# regions) is now a fleet column maintained on deploy and re-assert
# (state.SHARD_REGION_RESOLUTION); challenges grouped by it before
# being split into contiguous worker chunks share witnesses — and
# therefore cell-encode memo hits — within a chunk.


def candidates_for(
    state: WorldState, challengee: PocParticipant, rng: np.random.Generator
) -> Tuple[List[PocParticipant], Optional[np.ndarray]]:
    """Capped nearest-first witness candidates, with their distances.

    Returns the candidate list plus the challengee→candidate actual
    distances already computed by the spatial index (``None`` when
    gossip-clique members were appended without one), which
    :func:`run_challenge` accepts to skip its own haversine pass.
    """
    nearby, distances = state.world.index.within_radius_distances(
        challengee.actual_location, 120.0
    )
    # Nearest-first cap: every in-range hotspot witnesses on the real
    # network, and the close ones dominate both counts and the RSSI
    # distribution — random subsampling would bias toward mid-range.
    # The stable argsort runs before the online filter (filtering
    # preserves relative order among equal distances, so the kept set
    # matches a filter-then-sort), and the boolean mask over the
    # sorted order plus a [:cap] slice replaces the old Python
    # nearest-first walk — same candidates, no per-element branching.
    cap = state.config.max_witness_candidates
    cols = state.fleet
    fleet_index = cols.index
    idx = np.fromiter(
        (fleet_index[hotspot.gateway] for _, hotspot in nearby),
        dtype=np.intp,
        count=len(nearby),
    )
    order = np.argsort(distances, kind="stable")
    keep = order[cols.poc_online[idx[order]]][:cap]
    participants_by_slot = cols.participants
    kept: List[PocParticipant] = [
        participants_by_slot[int(slot)] for slot in idx[keep]
    ]
    # The index may lag a silent mover's relocation until the next
    # rebuild; its distance would then describe the stale point, so
    # hand none to the physics (object identity proves liveness).
    kept_km: Optional[np.ndarray] = distances[keep]
    for i, participant in zip(keep.tolist(), kept):
        if nearby[i][0] is not participant.actual_location:
            kept_km = None
            break
    if isinstance(challengee.cheat, GossipClique):
        participants = state.participants
        present = {c.gateway for c in kept}
        for member in sorted(challengee.cheat.members):
            participant = participants.get(member)
            if (
                participant is not None
                and participant.online
                and member not in present
            ):
                kept.append(participant)
                kept_km = None
    if kept_km is None:
        return kept, None
    return kept, np.asarray(kept_km, dtype=float)


class PoCPhase(Phase):
    """Runs the day's thinned challenge schedule.

    ``candidates_impl`` is swappable: equivalence tests monkeypatch it
    with :func:`repro.simulation.reference.candidates_for_reference`.
    """

    name = "poc"
    candidates_impl = staticmethod(candidates_for)

    def run_day(self, state: WorldState, day: int) -> None:
        rng = state.hub.stream("poc")
        batch = state.batch
        activity = state.activity
        online = [p for p in state.participants.values() if p.online]
        if len(online) < 2:
            return
        n_challenges = int(round(
            len(online) * state.config.challenges_per_hotspot_day
        ))
        n_challenges = max(n_challenges, 1 if len(online) >= 10 else 0)
        checker = state.checker
        pool = state.shard_pool
        # Sharded or not, the leader thread owns the "poc" stream: every
        # draw — selection, candidate query, challenge physics, block
        # placement — happens here, in challenge order, exactly as the
        # serial path always consumed it. Only the randomness-free
        # finish half (validity verdicts, tokens, transaction assembly)
        # is eligible for worker processes.
        planned = []
        for _ in range(n_challenges):
            challenger = online[int(rng.integers(len(online)))]
            challengee = challenger
            while challengee.gateway == challenger.gateway:
                challengee = online[int(rng.integers(len(online)))]
            candidates, candidate_km = self.candidates_impl(
                state, challengee, rng
            )
            channel_plan = plan_for_country(
                state.world.hotspots[challengee.gateway].city.country
            )
            plan = plan_challenge(
                challenger=challenger,
                challengee=challengee,
                candidates=candidates,
                rng=rng,
                checker=checker,
                plan=channel_plan,
                distances_km=candidate_km,
            )
            block = day * _BLOCKS_PER_DAY + int(rng.integers(_BLOCKS_PER_DAY))
            # Challenges involving hotspots deployed today must land
            # after their add_gateway blocks.
            block = max(
                block,
                state.world.hotspots[challenger.gateway].added_block + 1,
                state.world.hotspots[challengee.gateway].added_block + 1,
            )
            if pool is None:
                outcome = finish_challenge(plan, checker=checker)
                batch.append((block, outcome.request))
                batch.append((block, outcome.receipts))
                activity.poc_events.append(outcome.event)
            else:
                # Shard key straight from the fleet's region column
                # (kept current across re-asserts) — no per-challenge
                # cell encode.
                region = state.fleet.regions[
                    state.fleet.index[challengee.gateway]
                ]
                planned.append((block, plan, region))
        if pool is not None and planned:
            self._finish_sharded(state, planned)

    @staticmethod
    def _finish_sharded(state: WorldState, planned: List[Tuple]) -> None:
        """Scatter planned challenges over the shard pool; merge back in
        challenge order.

        Partition: challenge indices sort by (challengee region, index)
        and split into contiguous chunks, one per worker — geographic
        grouping for worker-side cache locality. Merge: every outcome
        returns tagged with its challenge index, and the batch/activity
        appends replay in index order — so the day's output is
        byte-identical to the serial path for any worker count and any
        chunk boundary placement.
        """
        pool = state.shard_pool
        checker = state.checker
        order = sorted(
            range(len(planned)), key=lambda i: (planned[i][2], i)
        )
        n_chunks = min(pool.workers, len(order))
        base, extra = divmod(len(order), n_chunks)
        chunks = []
        start = 0
        for c in range(n_chunks):
            size = base + (1 if c < extra else 0)
            chunks.append(order[start:start + size])
            start += size
        gathered = pool.run([
            ("poc_finish", (checker, [planned[i][1] for i in chunk], chunk))
            for chunk in chunks
        ])
        outcomes = {}
        for part in gathered:
            for index, outcome in part:
                outcomes[index] = outcome
        batch = state.batch
        activity = state.activity
        for i, (block, _plan, _region) in enumerate(planned):
            outcome = outcomes[i]
            batch.append((block, outcome.request))
            batch.append((block, outcome.receipts))
            activity.poc_events.append(outcome.event)
