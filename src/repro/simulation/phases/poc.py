"""PoCPhase: thinned Proof-of-Coverage over real radio geometry."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import units
from repro.poc.challenge import PocParticipant, run_challenge
from repro.poc.cheats import GossipClique
from repro.radio.lora import plan_for_country
from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["PoCPhase", "candidates_for"]

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


def candidates_for(
    state: WorldState, challengee: PocParticipant, rng: np.random.Generator
) -> Tuple[List[PocParticipant], Optional[np.ndarray]]:
    """Capped nearest-first witness candidates, with their distances.

    Returns the candidate list plus the challengee→candidate actual
    distances already computed by the spatial index (``None`` when
    gossip-clique members were appended without one), which
    :func:`run_challenge` accepts to skip its own haversine pass.
    """
    nearby, distances = state.world.index.within_radius_distances(
        challengee.actual_location, 120.0
    )
    # Nearest-first cap: every in-range hotspot witnesses on the real
    # network, and the close ones dominate both counts and the RSSI
    # distribution — random subsampling would bias toward mid-range.
    # The stable argsort runs before the online filter (filtering
    # preserves relative order among equal distances, so the kept set
    # matches a filter-then-sort), and the boolean mask over the
    # sorted order plus a [:cap] slice replaces the old Python
    # nearest-first walk — same candidates, no per-element branching.
    cap = state.config.max_witness_candidates
    fleet_index = state.fleet_index
    idx = np.fromiter(
        (fleet_index[hotspot.gateway] for _, hotspot in nearby),
        dtype=np.intp,
        count=len(nearby),
    )
    order = np.argsort(distances, kind="stable")
    keep = order[state.fleet_poc_online[idx[order]]][:cap]
    participants_by_slot = state.fleet_participants
    kept: List[PocParticipant] = [
        participants_by_slot[int(slot)] for slot in idx[keep]
    ]
    # The index may lag a silent mover's relocation until the next
    # rebuild; its distance would then describe the stale point, so
    # hand none to the physics (object identity proves liveness).
    kept_km: Optional[np.ndarray] = distances[keep]
    for i, participant in zip(keep.tolist(), kept):
        if nearby[i][0] is not participant.actual_location:
            kept_km = None
            break
    if isinstance(challengee.cheat, GossipClique):
        participants = state.participants
        present = {c.gateway for c in kept}
        for member in sorted(challengee.cheat.members):
            participant = participants.get(member)
            if (
                participant is not None
                and participant.online
                and member not in present
            ):
                kept.append(participant)
                kept_km = None
    if kept_km is None:
        return kept, None
    return kept, np.asarray(kept_km, dtype=float)


class PoCPhase(Phase):
    """Runs the day's thinned challenge schedule.

    ``candidates_impl`` is swappable: equivalence tests monkeypatch it
    with :func:`repro.simulation.reference.candidates_for_reference`.
    """

    name = "poc"
    candidates_impl = staticmethod(candidates_for)

    def run_day(self, state: WorldState, day: int) -> None:
        rng = state.hub.stream("poc")
        batch = state.batch
        activity = state.activity
        online = [p for p in state.participants.values() if p.online]
        if len(online) < 2:
            return
        n_challenges = int(round(
            len(online) * state.config.challenges_per_hotspot_day
        ))
        n_challenges = max(n_challenges, 1 if len(online) >= 10 else 0)
        for _ in range(n_challenges):
            challenger = online[int(rng.integers(len(online)))]
            challengee = challenger
            while challengee.gateway == challenger.gateway:
                challengee = online[int(rng.integers(len(online)))]
            candidates, candidate_km = self.candidates_impl(
                state, challengee, rng
            )
            plan = plan_for_country(
                state.world.hotspots[challengee.gateway].city.country
            )
            outcome = run_challenge(
                challenger=challenger,
                challengee=challengee,
                candidates=candidates,
                rng=rng,
                checker=state.checker,
                plan=plan,
                distances_km=candidate_km,
            )
            block = day * _BLOCKS_PER_DAY + int(rng.integers(_BLOCKS_PER_DAY))
            # Challenges involving hotspots deployed today must land
            # after their add_gateway blocks.
            block = max(
                block,
                state.world.hotspots[challenger.gateway].added_block + 1,
                state.world.hotspots[challengee.gateway].added_block + 1,
            )
            batch.append((block, outcome.request))
            batch.append((block, outcome.receipts))
            activity.poc_events.append(outcome.event)
