"""EncashPhase: weekly speculator cash-outs to the exchange."""

from __future__ import annotations

from repro import units
from repro.chain.transactions import Payment
from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["EncashPhase"]

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


class EncashPhase(Phase):
    """Weekly: speculator archetypes cash out most of their HNT (§4.3)."""

    name = "encash"

    def run_day(self, state: WorldState, day: int) -> None:
        if day % 7 != 3:
            return
        for owner in state.world.owners.values():
            if not owner.encashes:
                continue
            wallet = state.chain.ledger.wallets.get(owner.wallet)
            if wallet is None or wallet.hnt_bones < units.hnt_to_bones(5.0):
                continue
            amount = int(wallet.hnt_bones * 0.9)
            state.batch.append(
                (day * _BLOCKS_PER_DAY + _BLOCKS_PER_DAY - 1, Payment(
                    payer=owner.wallet,
                    payee=state.exchange,
                    amount_bones=amount,
                ))
            )
