"""IndexPhase: the weekly spatial-index rebuild.

The index is deliberately *not* rebuilt after every move — candidate
lookups tolerate a week of staleness (with an object-identity liveness
check in the PoC phase), which is also why checkpoints persist each
hotspot's ``index_location``: a resumed run must see the same stale
index a fresh run would.
"""

from __future__ import annotations

from repro.simulation.phases.base import Phase
from repro.simulation.state import WorldState

__all__ = ["IndexPhase"]


class IndexPhase(Phase):
    name = "index"

    def run_day(self, state: WorldState, day: int) -> None:
        if day % 7 == 0:
            state.world.rebuild_index()
