"""Phase subsystems of the simulation day loop.

Each phase owns one slice of the day's work and exposes
``run_day(state, day)`` over a shared
:class:`~repro.simulation.state.WorldState`. The canonical ordering —
the same ordering the monolithic engine hard-coded — is returned by
:func:`default_phases`; the scheduler runs them in list order, so a
custom list is how experiments insert, drop, or reorder subsystems.
"""

from __future__ import annotations

from typing import List

from repro.simulation.phases.base import Phase
from repro.simulation.phases.deploy import DeployPhase
from repro.simulation.phases.encash import EncashPhase
from repro.simulation.phases.growthlog import LogPhase
from repro.simulation.phases.index import IndexPhase
from repro.simulation.phases.mint import MintPhase
from repro.simulation.phases.moves import MovesPhase
from repro.simulation.phases.online import OnlinePhase
from repro.simulation.phases.poc import PoCPhase
from repro.simulation.phases.rewards import RewardsPhase
from repro.simulation.phases.traffic import TrafficPhase
from repro.simulation.phases.transfers import TransfersPhase

__all__ = [
    "Phase",
    "DeployPhase",
    "TransfersPhase",
    "MovesPhase",
    "OnlinePhase",
    "IndexPhase",
    "PoCPhase",
    "TrafficPhase",
    "RewardsPhase",
    "EncashPhase",
    "MintPhase",
    "LogPhase",
    "default_phases",
]


def default_phases() -> List[Phase]:
    """The canonical day-loop ordering.

    Order is semantic: deploys extend the fleet before transfers and
    moves touch it, availability flips before PoC samples online
    participants, traffic settles before rewards split the day's
    activity, and the mint flushes everything before the growth log
    counts the day.
    """
    return [
        DeployPhase(),
        TransfersPhase(),
        MovesPhase(),
        OnlinePhase(),
        IndexPhase(),
        PoCPhase(),
        TrafficPhase(),
        RewardsPhase(),
        EncashPhase(),
        MintPhase(),
        LogPhase(),
    ]
