"""TransfersPhase: scheduled resales change ownership on-chain."""

from __future__ import annotations

from repro import units
from repro.chain.transactions import TransferHotspot
from repro.simulation.phases.base import Phase
from repro.simulation.resale import pick_buyer
from repro.simulation.state import WorldState

__all__ = ["TransfersPhase"]

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


class TransfersPhase(Phase):
    """Executes the day's transfer queue; records who transferred today
    (the moves phase defers a same-day move to keep block order sane)."""

    name = "transfers"

    def run_day(self, state: WorldState, day: int) -> None:
        rng = state.hub.stream("resale")
        batch = state.batch
        transferred = state.transferred_today
        for gateway, transfer in state.transfer_queue.pop(day, []):
            hotspot = state.world.hotspots.get(gateway)
            if hotspot is None:
                continue
            seller = hotspot.owner
            if transfer.to_flipper and not state.flippers:
                flipper = state.world.new_owner("repeat")
                flipper.encashes = True
                state.flippers.append(flipper.wallet)
            buyer = pick_buyer(
                world_owners=[
                    o.wallet for o in state.world.owners.values()
                    if o.archetype in ("individual", "repeat")
                ],
                new_owner_factory=(
                    lambda: state.world.new_owner("individual").wallet
                ),
                flippers=state.flippers,
                to_flipper=transfer.to_flipper,
                seller=seller,
                rng=rng,
            )
            if buyer is None or buyer == seller:
                continue
            if transfer.amount_dc > 0:
                state.chain.ledger.credit_dc(buyer, transfer.amount_dc)
            block = day * _BLOCKS_PER_DAY + int(rng.integers(_BLOCKS_PER_DAY))
            batch.append((block, TransferHotspot(
                gateway=gateway, seller=seller, buyer=buyer,
                amount_dc=transfer.amount_dc,
            )))
            seller_rec = state.world.owners.get(seller)
            if seller_rec is not None:
                seller_rec.hotspot_count -= 1
            buyer_rec = state.world.owners.get(buyer)
            if buyer_rec is not None:
                buyer_rec.hotspot_count += 1
            hotspot.owner = buyer
            hotspot.transfer_days.append(day)
            state.refresh_ferry_entry(hotspot)
            transferred.add(gateway)
            participant = state.participants.get(gateway)
            if participant is not None:
                participant.owner = buyer
