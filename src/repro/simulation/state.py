"""Serializable world state: everything a simulation run mutates.

The day loop used to live inside a 1,100-line ``SimulationEngine`` whose
mutable state was scattered across private engine attributes. This
module makes that state explicit: :class:`WorldState` owns the world,
chain, RNG hub, schedulers' queues, fleet arrays, ferry maps and growth
log, and every :class:`~repro.simulation.phases.base.Phase` subsystem
operates on it through ``run_day(state, day)``.

Because the state is explicit it is also *serializable*:
``WorldState.save(dir)`` writes a day-boundary checkpoint and
``WorldState.load(dir)`` reconstructs a state that continues the run
**bit-identically** — the pinned scenario digests assert resumed ≡
fresh. The checkpoint reuses the snapshot idioms of
:mod:`repro.experiments.snapshot` (chain as a JSONL dump replayed with
``validate=False``, world reconstructed against the deterministic
city/ISP universe rather than pickled) and adds what a *mid-run* state
needs beyond a finished result:

* exact RNG stream states (``bit_generator.state`` per named stream —
  a few ints; restoring them realigns every stream with the draws the
  interrupted run already consumed),
* the pending move/transfer queues and per-hotspot uptime draws,
* each hotspot's ``index_location`` so the weekly-rebuilt spatial index
  is restored *stale*, exactly as the interrupted run last saw it,
* owner-model linkage (organic order, the whale) and planner flags.

Checkpoints are only taken at day boundaries, where the engine holds no
half-applied state: the day's batch has been minted, every state channel
is closed, and ``EpochActivity`` is per-day. Integrity is guarded by
SHA-256 digests in ``meta.json`` (written last): a torn or corrupted
checkpoint fails loudly instead of resuming into silent divergence.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro import units
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.chain.chainlog import (
    CHAINLOG_MAGIC,
    ChainLog,
    scan_frames,
    seed_digest,
)
from repro.chain.crypto import Address, Keypair
from repro.chain.serialize import (
    _prefund,
    transaction_from_dict,
)
from repro.chain.transactions import OuiRegistration, Transaction
from repro.chain.varmap import ChainVars
from repro.economics.oracle import PriceOracle
from repro.economics.rewards import EpochActivity
from repro.errors import ChainError, SimulationError
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexGrid
from repro.poc.challenge import PocParticipant
from repro.poc.cheats import GossipClique
from repro.poc.validity import WitnessValidityChecker
from repro.rng import RngHub
from repro.simulation.growth import build_adoption_schedule
from repro.simulation.moves import MovePlanner, PlannedMove
from repro.simulation.owners import OwnerModel
from repro.simulation.resale import PlannedTransfer, ResalePlanner
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.traffic import TrafficModel
from repro.simulation.world import SimHotspot, World

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "SHARD_REGION_RESOLUTION",
    "FleetColumns",
    "GrowthLogRow",
    "WorldState",
]

#: Bump when the checkpoint layout changes incompatibly. Independent of
#: the snapshot ``SCHEMA_VERSION``: checkpoints are a superset format
#: with their own compatibility story (finished-result snapshots remain
#: byte-identical across this refactor, so the snapshot version stays).
#:
#: v2: per-hotspot uptime moved from the hotspot payloads into a
#: columnar top-level ``fleet`` section, and the ``ferry_order_stale``
#: flag dropped (ferry weights are a fleet column whose slot *is* the
#: deployment position, so the order can no longer go stale).
#:
#: v3: the chain is stored as a framed binary chain log (``chain.log``,
#: :mod:`repro.chain.chainlog`) instead of a JSONL dump. Frame payloads
#: are the exact JSONL lines of v2, so the information content is
#: identical, but saves extend the log by raw frame copy from the run's
#: own log (no re-serialization of spilled blocks) and loads stream
#: frame-by-frame into a bounded-RSS replay instead of reading the
#: whole dump into memory twice (bytes + decoded str). ``meta.json``
#: additionally records ``chain_log_tail`` (the digest-chain state at
#: the recorded extent) so a *different process* can keep extending the
#: log incrementally after one prefix verification.
CHECKPOINT_SCHEMA_VERSION = 3

#: Hex resolution of the geographic shard key (~1700 km² regions).
#: Fleet slots carry their challengee region token so the sharded PoC
#: and traffic phases can partition work without re-encoding cells.
SHARD_REGION_RESOLUTION = 4

_CHAIN_FILE = "chain.log"
_STATE_FILE = "state.json"
_META_FILE = "meta.json"

_BLOCKS_PER_DAY = units.BLOCKS_PER_DAY


@dataclass
class GrowthLogRow:
    """Daily fleet snapshot (drives the Figure 5 reproduction)."""

    day: int
    added_today: int
    connected: int
    online: int
    online_us: int
    online_international: int


def _region_token(participant: Optional[PocParticipant]) -> str:
    """Res-:data:`SHARD_REGION_RESOLUTION` shard token of a
    participant's asserted cell ('' for validators, who are never
    challengees). Rides the participant's ``_poc_cell`` memo, so the
    encode is free whenever a challenge already touched the assert."""
    if participant is None:
        return ""
    return (
        participant._poc_cell()[1].parent(SHARD_REGION_RESOLUTION).token
    )


class FleetColumns:
    """Struct-of-arrays fleet: one slot per deployed hotspot, in
    deployment order — the order every old per-gateway dict walk used.

    The day loop's per-hotspot scalar reads (uptime thresholds,
    online/PoC flags, US residency, ferry weights, owner identity,
    coordinates) live in contiguous numpy arrays with amortised-doubling
    growth, so a daily phase is one vectorised pass instead of a Python
    list materialisation. :class:`~repro.simulation.world.SimHotspot`
    and :class:`~repro.poc.challenge.PocParticipant` objects remain as
    aligned *views* (``hotspots[slot]`` / ``participants[slot]``) for
    the chain/transaction boundary, which keeps serialization and the
    pinned digests unchanged.

    ``online``/``poc_online`` carry a freshness stamp (``online_day``):
    the columnar availability phase stamps the day it wrote them, and
    consumers that must agree with the per-object flags even when an
    equivalence test swaps in the scalar reference twin (which only
    writes objects) fall back through :meth:`online_mask`.
    """

    __slots__ = (
        "n", "_capacity",
        "_lat", "_lon", "_uptime", "_ferry_weight",
        "_online", "_poc_online", "_is_poc", "_in_us",
        "_deploy_day", "_owner_index",
        "hotspots", "participants", "gateways", "regions",
        "index", "owner_slots", "owner_wallets", "online_day",
    )

    _GROWABLE = (
        ("_lat", np.float64), ("_lon", np.float64),
        ("_uptime", np.float64), ("_ferry_weight", np.float64),
        ("_online", bool), ("_poc_online", bool),
        ("_is_poc", bool), ("_in_us", bool),
        ("_deploy_day", np.int32), ("_owner_index", np.int32),
    )

    def __init__(self, capacity: int = 1024) -> None:
        self.n = 0
        self._capacity = max(int(capacity), 1)
        for name, dtype in self._GROWABLE:
            setattr(self, name, np.zeros(self._capacity, dtype=dtype))
        self.hotspots: List[SimHotspot] = []
        self.participants: List[Optional[PocParticipant]] = []
        self.gateways: List[Address] = []
        self.regions: List[str] = []
        self.index: Dict[Address, int] = {}
        self.owner_slots: Dict[Address, int] = {}
        self.owner_wallets: List[Address] = []
        #: Day for which the columnar availability phase last wrote the
        #: online columns; ``-1`` = never (trust the objects instead).
        self.online_day = -1

    def __len__(self) -> int:
        return self.n

    # -- column views (live slices; writes go through) ----------------------

    @property
    def lat(self) -> np.ndarray:
        return self._lat[: self.n]

    @property
    def lon(self) -> np.ndarray:
        return self._lon[: self.n]

    @property
    def uptime(self) -> np.ndarray:
        return self._uptime[: self.n]

    @property
    def ferry_weight(self) -> np.ndarray:
        return self._ferry_weight[: self.n]

    @property
    def online(self) -> np.ndarray:
        return self._online[: self.n]

    @property
    def poc_online(self) -> np.ndarray:
        return self._poc_online[: self.n]

    @property
    def is_poc(self) -> np.ndarray:
        return self._is_poc[: self.n]

    @property
    def in_us(self) -> np.ndarray:
        return self._in_us[: self.n]

    @property
    def deploy_day(self) -> np.ndarray:
        return self._deploy_day[: self.n]

    @property
    def owner_index(self) -> np.ndarray:
        return self._owner_index[: self.n]

    # -- growth -------------------------------------------------------------

    def _grow(self) -> None:
        self._capacity *= 2
        for name, _ in self._GROWABLE:
            array = getattr(self, name)
            grown = np.zeros(self._capacity, dtype=array.dtype)
            grown[: self.n] = array[: self.n]
            setattr(self, name, grown)

    def owner_id(self, wallet: Address) -> int:
        """Dense id of ``wallet`` (assigned at first fleet appearance)."""
        slot = self.owner_slots.get(wallet)
        if slot is None:
            slot = len(self.owner_wallets)
            self.owner_slots[wallet] = slot
            self.owner_wallets.append(wallet)
        return slot

    def append(
        self,
        hotspot: SimHotspot,
        participant: Optional[PocParticipant],
        uptime: float,
        ferry_weight: float,
    ) -> int:
        """Append one deployed hotspot; returns its slot."""
        slot = self.n
        if slot == self._capacity:
            self._grow()
        self.n = slot + 1
        location = hotspot.actual_location
        self._lat[slot] = location.lat
        self._lon[slot] = location.lon
        self._uptime[slot] = uptime
        self._ferry_weight[slot] = ferry_weight
        self._online[slot] = hotspot.online
        self._is_poc[slot] = participant is not None
        self._poc_online[slot] = hotspot.online and participant is not None
        self._in_us[slot] = hotspot.in_us
        self._deploy_day[slot] = hotspot.added_day
        self._owner_index[slot] = self.owner_id(hotspot.owner)
        self.hotspots.append(hotspot)
        self.participants.append(participant)
        self.gateways.append(hotspot.gateway)
        self.regions.append(_region_token(participant))
        self.index[hotspot.gateway] = slot
        return slot

    # -- maintenance touch points -------------------------------------------

    def relocate(self, slot: int, hotspot: SimHotspot) -> None:
        """Refresh the location-derived columns after a physical move
        (re-asserts refresh the region via :meth:`reassert`)."""
        location = hotspot.actual_location
        self._lat[slot] = location.lat
        self._lon[slot] = location.lon
        self._in_us[slot] = hotspot.in_us

    def reassert(self, slot: int) -> None:
        """Refresh the shard-region column after a re-assert."""
        self.regions[slot] = _region_token(self.participants[slot])

    def set_owner(self, slot: int, wallet: Address) -> None:
        self._owner_index[slot] = self.owner_id(wallet)

    def online_mask(self, day: int) -> np.ndarray:
        """The online column when fresh for ``day``; otherwise rebuilt
        from the authoritative per-object flags (the availability path
        was swapped for its reference twin, which only writes objects).
        """
        if self.online_day == day:
            return self.online
        return np.fromiter(
            (hotspot.online for hotspot in self.hotspots),
            dtype=bool,
            count=self.n,
        )


def _sha256_prefix(
    path: Path, limit: Optional[int] = None
) -> Tuple[str, "hashlib._Hash", int]:
    """SHA-256 of the first ``limit`` bytes of ``path`` (all by default).

    Returns ``(hexdigest, live hash object, bytes hashed)`` — callers
    that keep extending the file reuse the hash object instead of
    re-reading the prefix.
    """
    sha = hashlib.sha256()
    size = 0
    remaining = limit
    with open(path, "rb") as handle:
        while remaining is None or remaining > 0:
            step = 1 << 20 if remaining is None else min(1 << 20, remaining)
            chunk = handle.read(step)
            if not chunk:
                break
            sha.update(chunk)
            size += len(chunk)
            if remaining is not None:
                remaining -= len(chunk)
    return sha.hexdigest(), sha, size


def _sha256_file(path: Path) -> str:
    return _sha256_prefix(path)[0]


class _HashingReader:
    """Binary-handle wrapper that SHA-256-hashes everything read.

    Lets the streaming checkpoint load produce the chain file's
    integrity digest while scanning frames, instead of reading the
    multi-MB file twice (once for the hash, once for the replay).
    """

    def __init__(self, handle, sha: "hashlib._Hash"):
        self._handle = handle
        self.sha = sha
        self.bytes_read = 0

    def read(self, size: int) -> bytes:
        data = self._handle.read(size)
        self.sha.update(data)
        self.bytes_read += len(data)
        return data


@dataclass
class WorldState:
    """All mutable state of one simulation run, phase-agnostic.

    Constructed by :meth:`create` (fresh run) or :meth:`load`
    (checkpoint resume); mutated only by the
    :mod:`repro.simulation.phases` subsystems and the engine's
    bootstrap. Fields ending in ``_today``, plus ``batch`` and
    ``activity``, are day-transients reset by :meth:`begin_day` and
    never serialized.
    """

    config: ScenarioConfig
    hub: RngHub
    world: World
    chain: Blockchain
    oracle: PriceOracle
    owners: OwnerModel
    moves: MovePlanner
    resale: ResalePlanner
    traffic: TrafficModel
    checker: WitnessValidityChecker
    schedule: Any

    #: Next day index to simulate (== number of completed days).
    day: int = 0
    console_owner: Optional[Address] = None
    oui_owners: Dict[int, Address] = field(default_factory=dict)

    move_queue: Dict[int, List[Tuple[Address, PlannedMove]]] = field(
        default_factory=dict
    )
    transfer_queue: Dict[int, List[Tuple[Address, PlannedTransfer]]] = field(
        default_factory=dict
    )
    participants: Dict[Address, PocParticipant] = field(default_factory=dict)
    uptime: Dict[Address, float] = field(default_factory=dict)

    # Columnar fleet: one slot per deployed hotspot, in deployment
    # order — the order the old per-gateway dict walks used — so the
    # batched uptime draw consumes the "uptime" stream identically and
    # attribution maps keep their deployment-order iteration. The
    # object lists inside are the view boundary for chain/transaction
    # code; everything scalar the day loop reads is a numpy column.
    fleet: FleetColumns = field(default_factory=FleetColumns)

    flippers: List[Address] = field(default_factory=list)
    spammers: List[Address] = field(default_factory=list)
    clique_registry: Dict[int, GossipClique] = field(default_factory=dict)
    #: (clique_id, city name, seats left) — drained by the deploy phase.
    clique_pending: List[Tuple[int, str, int]] = field(default_factory=list)
    exchange: Address = ""
    helium_co: Address = ""
    growth_log: List[GrowthLogRow] = field(default_factory=list)
    channel_seq: int = 0

    # -- day transients (reset by begin_day, never serialized) ---------------
    price_today: float = 0.0
    batch: List[Tuple[int, Transaction]] = field(default_factory=list)
    activity: Optional[EpochActivity] = None
    transferred_today: Set[Address] = field(default_factory=set)
    added_today: int = 0

    #: Running SHA-256 of the chain file the last :meth:`save` wrote (or
    #: :meth:`load` verified):
    #: ``{"blocks", "bytes", "sha", "hex", "tail"}``.
    #: Lets a steady-state periodic save extend the previous chain dump
    #: without re-reading a single byte of it. Process-local, never
    #: serialized; ``None`` simply forces one prefix re-verification.
    _chain_cache: Optional[Dict[str, Any]] = field(
        default=None, repr=False, compare=False
    )

    #: The run's intra-run shard pool (``--shard-workers N``), attached
    #: by the engine for the duration of :meth:`SimulationEngine.run`
    #: and read by phases that can scatter randomness-free work.
    #: Process-local and never serialized: a checkpoint resumed with a
    #: different worker count is still byte-identical, because sharding
    #: never changes what is computed — only where.
    shard_pool: Optional[Any] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------- create --

    @classmethod
    def create(cls, config: ScenarioConfig) -> "WorldState":
        """Fresh run state for ``config`` (day 0, nothing deployed)."""
        hub = RngHub(config.seed)
        # Density-true scaling: shrink city footprints by √scale so the
        # scaled-down fleet reproduces the real network's local density
        # (see City.radius_scale).
        world = World(
            rng_cities=hub.stream("cities"),
            rng_isps=hub.stream("isps"),
            tail_isps=config.tail_isps,
            city_radius_scale=math.sqrt(config.scale_factor),
        )
        chain = Blockchain(ChainVars())
        state = cls(
            config=config,
            hub=hub,
            world=world,
            chain=chain,
            oracle=PriceOracle(hub.stream("oracle")),
            owners=OwnerModel(config, world),
            moves=MovePlanner(config),
            resale=ResalePlanner(config),
            traffic=TrafficModel(config),
            checker=WitnessValidityChecker(
                min_distance_km=chain.vars.poc_witness_min_distance_km
            ),
            schedule=build_adoption_schedule(config, hub.stream("growth")),
            exchange=Keypair.generate("exchange", "wal").address,
            helium_co=Keypair.generate("helium-co", "wal").address,
        )
        for clique_id, (size, city) in enumerate(config.gossip_cliques):
            clique = GossipClique(clique_id=clique_id)
            state.clique_registry[clique_id] = clique
            state.clique_pending.append((clique_id, city, size))
        return state

    # -------------------------------------------------------------- day ops --

    def begin_day(self, day: int) -> None:
        """Reset the day-transient fields for ``day``."""
        self.day = day
        self.price_today = self.oracle.price_on_day(day)
        self.chain.ledger.oracle_price_usd = self.price_today
        self.batch = []
        self.activity = EpochActivity(
            epoch_start_block=day * _BLOCKS_PER_DAY,
            epoch_end_block=(day + 1) * _BLOCKS_PER_DAY - 1,
        )
        self.transferred_today = set()
        self.added_today = 0

    def bootstrap_routers(self) -> None:
        """Register the console + third-party OUIs and mint block 1."""
        console_owner = Keypair.generate("console", "wal").address
        oui_owners: Dict[int, Address] = {1: console_owner, 2: console_owner}
        self.chain.ledger.credit_dc(
            console_owner, 10 * self.chain.vars.oui_fee_dc
        )
        self.chain.submit(OuiRegistration(oui=1, owner=console_owner,
                                          fee_dc=self.chain.vars.oui_fee_dc))
        self.chain.submit(OuiRegistration(oui=2, owner=console_owner,
                                          fee_dc=self.chain.vars.oui_fee_dc))
        for oui in range(3, 3 + self.config.third_party_ouis):
            owner = Keypair.generate(f"router-{oui}", "wal").address
            oui_owners[oui] = owner
            self.chain.ledger.credit_dc(owner, 2 * self.chain.vars.oui_fee_dc)
            self.chain.submit(OuiRegistration(
                oui=oui, owner=owner, fee_dc=self.chain.vars.oui_fee_dc
            ))
        self.chain.mint_block(1)
        self.console_owner = console_owner
        self.oui_owners = oui_owners

    # ------------------------------------------------------- fleet plumbing --

    def register_fleet(
        self,
        hotspot: SimHotspot,
        participant: Optional[PocParticipant],
        uptime: float,
    ) -> None:
        """Append one deployed hotspot to the fleet columns (deployment
        order)."""
        base = self.ferry_base_weight(hotspot)
        self.fleet.append(
            hotspot, participant, uptime,
            0.0 if base is None else base,
        )

    def ferry_base_weight(self, hotspot: SimHotspot) -> Optional[float]:
        """The weight ``hotspot`` would carry when online, else ``None``."""
        if hotspot.is_validator:
            return None
        owner = self.world.owners.get(hotspot.owner)
        if owner is not None and owner.archetype == "commercial":
            return 30.0
        if hotspot.ferries_data:
            return 1.0
        return None

    def refresh_ferry_entry(self, hotspot: SimHotspot) -> None:
        """Keep the ownership-derived columns (ferry weight, owner id)
        current across an ownership change. The slot is the deployment
        position, so unlike the old incrementally-maintained dict there
        is no insertion-order staleness to track."""
        slot = self.fleet.index[hotspot.gateway]
        base = self.ferry_base_weight(hotspot)
        self.fleet.ferry_weight[slot] = 0.0 if base is None else base
        self.fleet.set_owner(slot, hotspot.owner)

    # Back-compat views of the pre-columnar fleet fields: external code
    # (and older tests) read these names; each is a live view into the
    # columns.

    @property
    def fleet_hotspots(self) -> List[SimHotspot]:
        return self.fleet.hotspots

    @property
    def fleet_participants(self) -> List[Optional[PocParticipant]]:
        return self.fleet.participants

    @property
    def fleet_index(self) -> Dict[Address, int]:
        return self.fleet.index

    @property
    def fleet_uptime(self) -> np.ndarray:
        return self.fleet.uptime

    @property
    def fleet_in_us(self) -> np.ndarray:
        return self.fleet.in_us

    @property
    def fleet_is_poc(self) -> np.ndarray:
        return self.fleet.is_poc

    @property
    def fleet_online(self) -> np.ndarray:
        return self.fleet.online

    @property
    def fleet_poc_online(self) -> np.ndarray:
        return self.fleet.poc_online

    # -------------------------------------------------------------- save --

    def save(self, directory: Union[str, Path]) -> None:
        """Write a day-boundary checkpoint (atomically replacing any
        previous checkpoint at ``directory``)."""
        directory = Path(directory)
        directory.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(
            prefix=directory.name + ".tmp-", dir=str(directory.parent)
        ))
        previous = directory if (directory / _META_FILE).exists() else None
        try:
            self._write_into(tmp, previous=previous)
            if directory.exists():
                trash = Path(tempfile.mkdtemp(
                    prefix=directory.name + ".old-", dir=str(directory.parent)
                ))
                os.rename(str(directory), str(trash / "prev"))
                os.rename(str(tmp), str(directory))
                shutil.rmtree(trash, ignore_errors=True)
            else:
                os.rename(str(tmp), str(directory))
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise

    def _write_into(
        self, directory: Path, previous: Optional[Path] = None
    ) -> None:
        from repro.experiments import snapshot as snap

        config_digest = snap.config_digest(self.config)
        chain_sha, chain_bytes, chain_tail = self._write_chain(
            directory / _CHAIN_FILE, previous, config_digest
        )

        cliques = {
            str(cid): sorted(clique.members)
            for cid, clique in self.clique_registry.items()
        }
        hotspots = []
        for hotspot in self.world.hotspots.values():
            payload = snap.hotspot_payload(hotspot)
            # null ⇒ indexed under its live position (the common case);
            # coordinates ⇒ the index is stale for this hotspot (moved
            # since the last weekly rebuild).
            index_location = hotspot.index_location
            if index_location is hotspot.actual_location:
                payload["index_loc"] = None
            else:
                payload["index_loc"] = [
                    index_location.lat, index_location.lon
                ]
            hotspots.append(payload)

        state_payload = {
            "config": dataclasses.asdict(self.config),
            "day": self.day,
            "rng_streams": {
                name: generator.bit_generator.state
                for name, generator in sorted(self.hub._streams.items())
            },
            "keypair_seq": self.world._keypair_seq,
            "cliques": cliques,
            "clique_pending": [
                [cid, city, left] for cid, city, left in self.clique_pending
            ],
            "hotspots": hotspots,
            "owners": [
                snap.owner_payload(owner)
                for owner in self.world.owners.values()
            ],
            "organic_owners": [o.wallet for o in self.owners._organic],
            "whale": (
                None if self.owners._whale is None
                else self.owners._whale.wallet
            ),
            "frequent_mover_assigned": self.moves._frequent_mover_assigned,
            "oracle_prices": list(self.oracle._prices),
            "growth_log": [
                dataclasses.asdict(row) for row in self.growth_log
            ],
            "console_owner": self.console_owner,
            "oui_owners": {
                str(oui): owner for oui, owner in self.oui_owners.items()
            },
            "flippers": list(self.flippers),
            "spammers": list(self.spammers),
            "move_queue": {
                str(day): [
                    [gateway, move.day, move.kind]
                    for gateway, move in entries
                ]
                for day, entries in sorted(self.move_queue.items())
            },
            "transfer_queue": {
                str(day): [
                    [gateway, t.day, t.amount_dc, t.to_flipper]
                    for gateway, t in entries
                ]
                for day, entries in sorted(self.transfer_queue.items())
            },
            "channel_seq": self.channel_seq,
            # v2: columnar fleet scalars that are not derivable from the
            # hotspot payloads, in deployment order (== payload order).
            "fleet": {
                "uptime": self.fleet.uptime.tolist(),
            },
        }
        # dumps + write, not json.dump: the latter falls back to the
        # chunked pure-Python encoder and is several times slower on
        # this multi-MB payload. Hashing the in-memory blob also spares
        # re-reading the file for the meta digest.
        state_blob = json.dumps(state_payload, separators=(",", ":"))
        with open(directory / _STATE_FILE, "w", encoding="utf-8") as handle:
            handle.write(state_blob)

        meta = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "snapshot_schema": snap.SCHEMA_VERSION,
            "seed": self.config.seed,
            "day": self.day,
            "config_digest": config_digest,
            "chain_blocks": len(self.chain.blocks),
            "chain_bytes": chain_bytes,
            "chain_sha256": chain_sha,
            "chain_log_tail": chain_tail.hex(),
            "state_sha256": hashlib.sha256(
                state_blob.encode("utf-8")
            ).hexdigest(),
        }
        # meta.json last: a torn write leaves no (or a stale) meta, and
        # load() rejects both — the checkpoint is all-or-nothing.
        with open(directory / _META_FILE, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2)

    def _write_chain(
        self, path: Path, previous: Optional[Path], config_digest: str
    ) -> Tuple[str, int, bytes]:
        """Write ``chain.log``; returns ``(sha256, bytes, tail digest)``.

        The chain is append-only and the run deterministic, so a
        previous checkpoint of the same (config, seed) holds a byte
        prefix of the current chain log. A steady-state periodic save
        therefore hardlinks the previous file into place, truncates it
        to the recorded prefix (discarding bytes a killed append may
        have left), and appends only the frames for blocks minted since
        — raw byte copies from the run's own chain log for spilled
        blocks, freshly encoded frames for the resident tail (the two
        are byte-identical: frame encoding is deterministic given the
        digest-chain state, which ``meta.json`` records as
        ``chain_log_tail``). The running hash extends the cached prefix
        digest instead of re-reading it, so per-checkpoint cost is
        O(new blocks) with no full-file copy, hash, or JSON
        re-serialization. Any doubt (different config, digest mismatch,
        more blocks recorded than we have) falls back to a full write.

        The hardlink shares the inode with the previous checkpoint's
        file, which is safe because :meth:`load` reads exactly
        ``chain_bytes`` bytes: the old meta keeps describing a valid
        prefix of the grown file until the atomic swap replaces it.
        """
        n_blocks = len(self.chain.blocks)
        base = None
        if previous is not None:
            base = self._reusable_prefix(previous, config_digest, n_blocks)
        if base is not None:
            sha, prev_bytes, prev_blocks, tail = base
            sha = sha.copy()
            prev_file = previous / _CHAIN_FILE
            try:
                os.link(str(prev_file), str(path))
            except OSError:
                shutil.copyfile(str(prev_file), str(path))
            with open(path, "r+b") as handle:
                handle.truncate(prev_bytes)
            total = prev_bytes
            start = prev_blocks
            mode = "ab"
        else:
            sha = hashlib.sha256()
            tail = seed_digest()
            total = 0
            start = 0
            mode = "wb"
        with open(path, mode) as handle:
            if start == 0:
                handle.write(CHAINLOG_MAGIC)
                sha.update(CHAINLOG_MAGIC)
                total += len(CHAINLOG_MAGIC)
            for frame, digest in self.chain.blocks.iter_frames(start, tail):
                handle.write(frame)
                sha.update(frame)
                total += len(frame)
                tail = digest
        hexdigest = sha.hexdigest()
        self._chain_cache = {
            "blocks": n_blocks, "bytes": total, "sha": sha,
            "hex": hexdigest, "tail": tail,
        }
        return hexdigest, total, tail

    def _reusable_prefix(
        self, previous: Path, config_digest: str, n_blocks: int
    ) -> Optional[Tuple["hashlib._Hash", int, int, bytes]]:
        """``(hash object, bytes, blocks, tail digest)`` of the previous
        checkpoint's chain log when it is a trusted prefix of the live
        chain, else ``None`` (→ full write)."""
        try:
            meta = self.read_meta(previous)
        except SimulationError:
            return None
        prev_blocks = meta.get("chain_blocks")
        prev_bytes = meta.get("chain_bytes")
        tail_hex = meta.get("chain_log_tail")
        if not (
            meta.get("schema") == CHECKPOINT_SCHEMA_VERSION
            and meta.get("config_digest") == config_digest
            and isinstance(prev_blocks, int)
            and isinstance(prev_bytes, int)
            and isinstance(tail_hex, str)
            and 0 < prev_blocks <= n_blocks
        ):
            return None
        try:
            tail = bytes.fromhex(tail_hex)
        except ValueError:
            return None
        cache = self._chain_cache
        if (
            cache is not None
            and cache["blocks"] == prev_blocks
            and cache["bytes"] == prev_bytes
            and cache["hex"] == meta.get("chain_sha256")
        ):
            # This process wrote (or load-verified) exactly those bytes:
            # trust the running hash, skip re-reading the prefix.
            return cache["sha"], prev_bytes, prev_blocks, cache["tail"]
        try:
            hexdigest, sha, size = _sha256_prefix(
                previous / _CHAIN_FILE, prev_bytes
            )
        except OSError:
            return None
        if size != prev_bytes or hexdigest != meta.get("chain_sha256"):
            return None
        # The prefix hash validates, so the recorded tail describes it.
        return sha, prev_bytes, prev_blocks, tail

    # -------------------------------------------------------------- load --

    @staticmethod
    def read_meta(directory: Union[str, Path]) -> Dict[str, Any]:
        """The checkpoint's meta dict (schema/seed/day/config digest).

        Raises:
            SimulationError: when the directory is not a checkpoint.
        """
        try:
            with open(Path(directory) / _META_FILE, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError) as exc:
            raise SimulationError(
                f"unreadable checkpoint meta in {directory}: {exc}"
            ) from exc

    @classmethod
    def load(
        cls, directory: Union[str, Path], chain_log: bool = True
    ) -> "WorldState":
        """Reconstruct a :meth:`save` checkpoint, bit-exactly.

        With ``chain_log=True`` (the default) the chain stays on disk:
        each verified frame is byte-copied into the run's own anonymous
        :class:`ChainLog` while its transactions replay through the
        ledger, so resume-time peak RSS is bounded by one frame plus
        the folded ledger — the block object graph is never resident.
        ``chain_log=False`` rebuilds resident :class:`Block` objects,
        still streaming one frame at a time (the old path read the whole
        chain file into memory *and* decoded it to a second string-sized
        copy before parsing — a transient double-residency spike that
        grew with the chain).

        Raises:
            SimulationError: when the checkpoint is missing, schema-
                incompatible, or fails its integrity digests (torn or
                corrupted files).
        """
        from repro.experiments import snapshot as snap

        directory = Path(directory)
        meta = cls.read_meta(directory)
        schema = meta.get("schema")
        if schema != CHECKPOINT_SCHEMA_VERSION:
            if isinstance(schema, int) and schema < CHECKPOINT_SCHEMA_VERSION:
                hint = (
                    "it predates the framed chain-log layout; re-run the "
                    "simulation to produce a fresh checkpoint"
                )
            else:
                hint = "it was written by a newer build"
            raise SimulationError(
                f"unsupported checkpoint schema {schema!r} in {directory} "
                f"(this build reads schema {CHECKPOINT_SCHEMA_VERSION}): "
                f"{hint}"
            )
        chain_blocks = meta.get("chain_blocks")
        chain_bytes = meta.get("chain_bytes")
        if not (isinstance(chain_blocks, int) and isinstance(chain_bytes, int)):
            raise SimulationError(
                f"corrupt checkpoint: meta lacks chain extent in {directory}"
            )
        chain_path = directory / _CHAIN_FILE
        if not chain_path.exists():
            raise SimulationError(f"corrupt checkpoint: {chain_path} missing")
        state_path = directory / _STATE_FILE
        if not state_path.exists():
            raise SimulationError(f"corrupt checkpoint: {state_path} missing")
        actual = _sha256_file(state_path)
        if actual != meta.get("state_sha256"):
            raise SimulationError(
                f"corrupt checkpoint: {_STATE_FILE} digest mismatch "
                f"({actual[:12]}… != recorded "
                f"{str(meta.get('state_sha256'))[:12]}…)"
            )
        try:
            with open(state_path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SimulationError(
                f"unreadable checkpoint state: {exc}"
            ) from exc

        config = snap._config_from_dict(payload["config"])
        state = cls.create(config)
        state.day = int(payload["day"])

        # Chain: stream-verify frames (digest chain + file hash in one
        # pass, via the hashing reader) and replay each block's
        # transactions with trusted parent hashes; the folded ledger
        # (balances, gateways, OUIs) is identical to the live one. The
        # scan consumes exactly ``chain_bytes``: an in-progress
        # incremental save may have appended past the recorded extent
        # (hardlinked inode), which this meta does not describe.
        chain = Blockchain(ChainVars())
        run_log = ChainLog() if chain_log else None
        sha = hashlib.sha256()
        tail = seed_digest()
        frames = 0
        try:
            with open(chain_path, "rb") as handle:
                reader = _HashingReader(handle, sha)
                for frame, height, raw, digest in scan_frames(
                    reader, limit_bytes=chain_bytes
                ):
                    if frames == 0:
                        if height != 0:
                            raise SimulationError(
                                f"corrupt checkpoint: first chain frame "
                                f"is height {height}, not genesis"
                            )
                        # Genesis is already resident (Blockchain()
                        # creates it); attach the run log only once it
                        # mirrors the sequence exactly.
                        if run_log is not None:
                            run_log.append_frame(frame, height, digest)
                            chain.attach_log(run_log)
                    else:
                        if height <= chain.height:
                            raise SimulationError(
                                f"corrupt checkpoint: chain height goes "
                                f"{chain.height} -> {height}"
                            )
                        record = json.loads(raw)
                        txns = [
                            transaction_from_dict(p)
                            for p in record.get("transactions", [])
                        ]
                        for txn in txns:
                            _prefund(chain, txn)
                        for txn in txns:
                            chain.ledger.apply(txn, height)
                        if run_log is not None:
                            run_log.append_frame(frame, height, digest)
                            chain._append_spilled(height)
                        else:
                            chain._append_block(Block(
                                height=height,
                                unix_time=int(record.get(
                                    "time", units.block_to_unix_time(height)
                                )),
                                prev_hash=record.get("prev_hash", ""),
                                transactions=tuple(txns),
                            ))
                    frames += 1
                    tail = digest
        except ChainError as exc:
            # Torn frames, digest-chain breaks, malformed payloads.
            raise SimulationError(f"corrupt checkpoint: {exc}") from exc
        if (
            reader.bytes_read != chain_bytes
            or sha.hexdigest() != meta.get("chain_sha256")
        ):
            raise SimulationError(
                f"corrupt checkpoint: {_CHAIN_FILE} digest mismatch "
                f"({sha.hexdigest()[:12]}… != recorded "
                f"{str(meta.get('chain_sha256'))[:12]}…)"
            )
        if frames != chain_blocks:
            raise SimulationError(
                f"corrupt checkpoint: chain has {frames} "
                f"blocks, meta records {chain_blocks}"
            )
        if run_log is not None and frames:
            # Pin the tip: the next mint seeds prev_hash from it.
            chain.blocks.keep_resident(frames - 1)
        state.chain = chain
        # Seed the running-hash cache so the first post-resume periodic
        # save extends this verified prefix without re-reading it.
        state._chain_cache = {
            "blocks": chain_blocks,
            "bytes": chain_bytes,
            "sha": sha,
            "hex": sha.hexdigest(),
            "tail": tail,
        }
        state.checker = WitnessValidityChecker(
            min_distance_km=state.chain.vars.poc_witness_min_distance_km
        )

        world = state.world
        world._keypair_seq = int(payload["keypair_seq"])
        city_by_key = {
            (city.name, city.country): city for city in world.cities.cities
        }

        # Owners: replace the bootstrap-only map with the full saved one
        # (insertion order is semantic: consensus sampling indexes it).
        world.owners = {}
        world.owner_wallets = []
        for owner_payload in payload["owners"]:
            world.register_owner(
                snap.owner_from_payload(owner_payload, city_by_key)
            )

        # Re-link the owner model to the restored objects by wallet; the
        # archetype wallets themselves are deterministic recreations.
        model = state.owners
        model._pools = [world.owners[o.wallet] for o in model._pools]
        model._commercials = [
            world.owners[o.wallet] for o in model._commercials
        ]
        model._organic = [
            world.owners[wallet] for wallet in payload["organic_owners"]
        ]
        model._whale = (
            None if payload["whale"] is None
            else world.owners[payload["whale"]]
        )
        state.moves._frequent_mover_assigned = bool(
            payload["frequent_mover_assigned"]
        )

        # Gossip cliques: one shared instance per id, exactly as live.
        state.clique_registry = {
            int(cid): GossipClique(clique_id=int(cid), members=set(members))
            for cid, members in payload["cliques"].items()
        }
        state.clique_pending = [
            (int(cid), city, int(left))
            for cid, city, left in payload["clique_pending"]
        ]

        # Hotspots, participants and fleet columns, in deployment order.
        # The columnar uptime section is index-aligned with the hotspot
        # payloads; anything else is a torn or hand-edited checkpoint.
        fleet_payload = payload.get("fleet")
        uptime_column = (
            fleet_payload.get("uptime")
            if isinstance(fleet_payload, dict) else None
        )
        if not isinstance(uptime_column, list) or (
            len(uptime_column) != len(payload["hotspots"])
        ):
            raise SimulationError(
                f"corrupt checkpoint: fleet uptime column does not match "
                f"the hotspot payloads in {directory}"
            )
        for hotspot_payload, uptime in zip(
            payload["hotspots"], uptime_column
        ):
            hotspot = snap.hotspot_from_payload(
                hotspot_payload, city_by_key, world.isps,
                state.clique_registry,
            )
            index_loc = hotspot_payload["index_loc"]
            if index_loc is None:
                hotspot.index_location = hotspot.actual_location
            else:
                hotspot.index_location = LatLon(
                    float(index_loc[0]), float(index_loc[1])
                )
            world.hotspots[hotspot.gateway] = hotspot
            state.uptime[hotspot.gateway] = float(uptime)
            participant = None
            if not hotspot.is_validator:
                participant = PocParticipant(
                    gateway=hotspot.gateway,
                    owner=hotspot.owner,
                    asserted_location=hotspot.asserted_location,
                    actual_location=hotspot.actual_location,
                    environment=hotspot.environment,
                    antenna_gain_dbi=hotspot.antenna_gain_dbi,
                    online=hotspot.online,
                    cheat=hotspot.cheat,
                )
                state.participants[hotspot.gateway] = participant
            # register_fleet appends the columns, including the restored
            # online flag (hotspot.online round-trips via the payload),
            # so no post-pass array rebuild is needed.
            state.register_fleet(
                hotspot, participant, state.uptime[hotspot.gateway]
            )
        world.restore_index()

        # Pending schedules.
        state.move_queue = {
            int(day): [
                (gateway, PlannedMove(day=float(move_day), kind=kind))
                for gateway, move_day, kind in entries
            ]
            for day, entries in payload["move_queue"].items()
        }
        state.transfer_queue = {
            int(day): [
                (gateway, PlannedTransfer(
                    day=int(t_day),
                    amount_dc=int(amount),
                    to_flipper=bool(to_flipper),
                ))
                for gateway, t_day, amount, to_flipper in entries
            ]
            for day, entries in payload["transfer_queue"].items()
        }

        # Economics and bookkeeping.
        state.oracle._prices = [float(p) for p in payload["oracle_prices"]]
        state.growth_log = [
            GrowthLogRow(**row) for row in payload["growth_log"]
        ]
        state.console_owner = payload["console_owner"]
        state.oui_owners = {
            int(oui): owner
            for oui, owner in payload["oui_owners"].items()
        }
        state.flippers = list(payload["flippers"])
        state.spammers = list(payload["spammers"])
        state.channel_seq = int(payload["channel_seq"])

        # RNG streams last: every construction-time draw above happened
        # exactly as in the original process; restoring the recorded
        # states realigns each stream with the interrupted run. Streams
        # the original created but this process has not are instantiated
        # here (hub.stream creates on first use; the state overwrite
        # discards the fresh seeding).
        for name, rng_state in payload["rng_streams"].items():
            state.hub.stream(name).bit_generator.state = rng_state

        return state
