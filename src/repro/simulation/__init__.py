"""Generative model of the Helium network's history.

This package *writes* the blockchain the analyses read. Day by day it
deploys hotspots into a synthetic geography (adoption is batch-limited
and US-first, §4.2), assigns them to heavy-tailed owners (§4.3), moves
them (test-then-deploy, (0,0) artifacts, silent movers — §4.1, §7.1),
resells them (§4.3.3), runs thinned Proof-of-Coverage over real radio
geometry (§2.3), generates data traffic including the HIP 10 arbitrage
episode (§5.3), mints rewards, and assigns backhaul/NAT/relays (§6).

Every marginal the paper reports is a *calibration target*; EXPERIMENTS.md
records how close the defaults land.
"""

from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.scenario import ScenarioConfig, paper_scenario, small_scenario
from repro.simulation.world import SimHotspot, World

__all__ = [
    "ScenarioConfig",
    "paper_scenario",
    "small_scenario",
    "World",
    "SimHotspot",
    "SimulationEngine",
    "SimulationResult",
]
