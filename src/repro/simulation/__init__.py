"""Generative model of the Helium network's history.

This package *writes* the blockchain the analyses read. Day by day it
deploys hotspots into a synthetic geography (adoption is batch-limited
and US-first, §4.2), assigns them to heavy-tailed owners (§4.3), moves
them (test-then-deploy, (0,0) artifacts, silent movers — §4.1, §7.1),
resells them (§4.3.3), runs thinned Proof-of-Coverage over real radio
geometry (§2.3), generates data traffic including the HIP 10 arbitrage
episode (§5.3), mints rewards, and assigns backhaul/NAT/relays (§6).

Architecture: all mutable run state lives in
:class:`~repro.simulation.state.WorldState` (serializable to a
day-level checkpoint and back, bit-identically); each slice of the day
loop is a :class:`~repro.simulation.phases.base.Phase` subsystem under
:mod:`repro.simulation.phases`; the
:class:`~repro.simulation.scheduler.PhaseScheduler` runs them in order
and owns the per-phase timings; and
:class:`~repro.simulation.engine.SimulationEngine` is the thin run loop
(bootstrap, day iteration, checkpointing, result assembly) on top.

Every marginal the paper reports is a *calibration target*; EXPERIMENTS.md
records how close the defaults land.
"""

from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.scenario import (
    ScenarioConfig,
    million_hotspot_scenario,
    paper_10x_scenario,
    paper_scenario,
    small_scenario,
)
from repro.simulation.scheduler import PhaseScheduler
from repro.simulation.state import WorldState
from repro.simulation.world import SimHotspot, World

__all__ = [
    "ScenarioConfig",
    "million_hotspot_scenario",
    "paper_10x_scenario",
    "paper_scenario",
    "small_scenario",
    "World",
    "SimHotspot",
    "SimulationEngine",
    "SimulationResult",
    "WorldState",
    "PhaseScheduler",
]
