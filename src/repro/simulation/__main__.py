"""Build a synthetic Helium history and (optionally) dump the chain.

Usage::

    python -m repro.simulation                        # summary only
    python -m repro.simulation --scenario small
    python -m repro.simulation --scenario my-whatif.json   # user spec file
    python -m repro.simulation --list-scenarios       # registry + digests
    python -m repro.simulation --dump chain.jsonl     # explorer-style dump
    python -m repro.simulation --checkpoint-every 30 --checkpoint-dir ck/
    python -m repro.simulation --stop-after 120 --checkpoint-dir ck/
    python -m repro.simulation --resume ck/           # continue from ck/
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.chain.serialize import dump_chain
from repro.simulation import SimulationEngine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulation",
        description="Generate a synthetic Helium blockchain.",
    )
    parser.add_argument(
        "--scenario", default="paper", metavar="NAME|FILE",
        help="registry name (see --list-scenarios) or a path to a "
        ".json/.toml scenario spec file",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's own seed (default: keep it)",
    )
    parser.add_argument(
        "--list-scenarios", action="store_true",
        help="list registry scenarios with their resolved digests and exit",
    )
    parser.add_argument("--dump", metavar="FILE", default=None,
                        help="write the chain as JSONL")
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="save the full run state every N simulated days into "
        "--checkpoint-dir (each save atomically replaces the last)",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="directory for day-level checkpoints",
    )
    parser.add_argument(
        "--resume", metavar="DIR", default=None,
        help="resume from the checkpoint in DIR instead of starting "
        "fresh (the result is bit-identical to an uninterrupted run); "
        "--scenario/--seed are taken from the checkpoint",
    )
    parser.add_argument(
        "--stop-after", type=int, default=None, metavar="D",
        help="halt once D days are simulated, saving a checkpoint to "
        "--checkpoint-dir (exit summary reports the partial state)",
    )
    parser.add_argument(
        "--shard-workers", type=int, default=0, metavar="N",
        help="scatter the day loop's randomness-free work over N "
        "worker processes (0 = serial); the chain is byte-identical "
        "to the serial run for any N",
    )
    parser.add_argument(
        "--chain-log", dest="chain_log", action="store_true", default=True,
        help="spill finalized blocks to an append-to-disk chain log, "
        "bounding chain RSS (the default; results are byte-identical "
        "either way)",
    )
    parser.add_argument(
        "--resident-chain", dest="chain_log", action="store_false",
        help="keep every block resident in memory (the pre-chain-log "
        "behaviour; needs RSS proportional to run length)",
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        from repro.scenarios import format_listing

        print(format_listing())
        return 0

    if (args.checkpoint_every or args.stop_after is not None) and not (
        args.checkpoint_dir or args.resume
    ):
        parser.error("--checkpoint-every/--stop-after need --checkpoint-dir")

    started = time.time()
    if args.resume:
        engine = SimulationEngine.resume(args.resume, chain_log=args.chain_log)
        config = engine.config
        print(f"resuming from {args.resume} at day {engine.state.day} "
              f"(seed {config.seed}, {config.n_days} days total)...")
    else:
        from repro.errors import ScenarioSpecError
        from repro.scenarios import resolve

        try:
            resolved = resolve(args.scenario, seed=args.seed)
        except ScenarioSpecError as exc:
            parser.error(str(exc))
        config = resolved.config
        print(f"building {resolved.label} scenario "
              f"({config.target_hotspots} hotspots, {config.n_days} days, "
              f"digest {resolved.digest[:12]})...")
        engine = SimulationEngine(config)

    checkpoint_dir = args.checkpoint_dir or args.resume
    result = engine.run(
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        stop_after_day=args.stop_after,
        shard_workers=args.shard_workers,
        chain_log=args.chain_log,
    )
    elapsed = time.time() - started

    if result is None:
        print(f"stopped after day {engine.state.day} in {elapsed:.1f}s; "
              f"checkpoint saved to {checkpoint_dir}")
        print(f"resume with: python -m repro.simulation --resume "
              f"{checkpoint_dir}")
        return 0

    chain = result.chain
    counts = chain.count_transactions()
    print(f"done in {elapsed:.1f}s:")
    print(f"  hotspots: {len(result.world.hotspots):,} "
          f"({len(result.world.online_hotspots()):,} online)")
    print(f"  owners:   {len(result.world.owners):,}")
    print(f"  blocks:   {len(chain):,} materialised "
          f"(tip height {chain.height:,})")
    print(f"  txns:     {chain.total_transactions:,} "
          f"({counts.get('poc_receipts', 0):,} PoC receipts)")
    print(f"  relayed:  {result.peerbook.relayed_fraction():.1%} of peers")
    from repro import obs

    peak_rss = obs.peak_rss_bytes(children=args.shard_workers > 0)
    if peak_rss:
        print(f"  peak RSS: {peak_rss / 1e9:.2f} GB")

    if args.dump:
        lines = dump_chain(chain, args.dump)
        print(f"dumped {lines:,} blocks to {args.dump}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
