"""Build a synthetic Helium history and (optionally) dump the chain.

Usage::

    python -m repro.simulation                        # summary only
    python -m repro.simulation --scenario small
    python -m repro.simulation --dump chain.jsonl     # explorer-style dump
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.chain.serialize import dump_chain
from repro.simulation import SimulationEngine, paper_scenario, small_scenario


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulation",
        description="Generate a synthetic Helium blockchain.",
    )
    parser.add_argument("--scenario", default="paper", choices=["paper", "small"])
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--dump", metavar="FILE", default=None,
                        help="write the chain as JSONL")
    args = parser.parse_args(argv)

    builder = paper_scenario if args.scenario == "paper" else small_scenario
    config = builder(seed=args.seed)
    print(f"building {args.scenario} scenario "
          f"({config.target_hotspots} hotspots, {config.n_days} days)...")
    started = time.time()
    result = SimulationEngine(config).run()
    elapsed = time.time() - started

    chain = result.chain
    counts = chain.count_transactions()
    print(f"done in {elapsed:.1f}s:")
    print(f"  hotspots: {len(result.world.hotspots):,} "
          f"({len(result.world.online_hotspots()):,} online)")
    print(f"  owners:   {len(result.world.owners):,}")
    print(f"  blocks:   {len(chain):,} materialised "
          f"(tip height {chain.height:,})")
    print(f"  txns:     {chain.total_transactions:,} "
          f"({counts.get('poc_receipts', 0):,} PoC receipts)")
    print(f"  relayed:  {result.peerbook.relayed_fraction():.1%} of peers")

    if args.dump:
        lines = dump_chain(chain, args.dump)
        print(f"dumped {lines:,} blocks to {args.dump}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
