"""Pre-optimisation reference twins of the swappable hot paths.

Each function replays the original (slower) implementation of a phase
hot path against a :class:`~repro.simulation.state.WorldState`.
Equivalence tests monkeypatch them onto the corresponding phase class
attribute (``OnlinePhase.impl``, ``PoCPhase.candidates_impl``,
``TrafficPhase.ferry_impl``) and assert the scenario digest does not
move; ``benchmarks/bench_parallel.py`` uses them as timing baselines.
They consume the same named RNG streams, in the same order, as the fast
paths — that is what makes the swap bit-transparent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.chain.crypto import Address
from repro.poc.challenge import PocParticipant
from repro.poc.cheats import GossipClique
from repro.simulation.state import WorldState

__all__ = [
    "update_online_reference",
    "candidates_for_reference",
    "ferry_weights_reference",
]


def update_online_reference(state: WorldState, day: int) -> None:
    """Pre-vectorisation twin of
    :func:`repro.simulation.phases.online.update_online`.

    Replays the per-gateway Python loop (dict walk, scalar compare,
    unconditional attribute writes) including its costs.
    """
    rng = state.hub.stream("uptime")
    gateways = list(state.uptime.keys())
    if not gateways:
        return
    rolls = rng.random(len(gateways))
    for gateway, roll in zip(gateways, rolls):
        online = bool(roll < state.uptime[gateway])
        state.world.hotspots[gateway].online = online
        participant = state.participants.get(gateway)
        if participant is not None:
            participant.online = online


def candidates_for_reference(
    state: WorldState, challengee: PocParticipant, rng: np.random.Generator
) -> Tuple[List[PocParticipant], Optional[np.ndarray]]:
    """Pre-vectorisation twin of
    :func:`repro.simulation.phases.poc.candidates_for`.

    Replays the ``distances.tolist()`` materialisation and the
    per-element nearest-first walk; equivalence tests assert the fast
    path returns exactly the same candidates and distances.
    """
    nearby, distances = state.world.index.within_radius_distances(
        challengee.actual_location, 120.0
    )
    cap = state.config.max_witness_candidates
    participants = state.participants
    distance_list = distances.tolist()
    kept: List[PocParticipant] = []
    kept_km: Optional[List[float]] = []
    for i in np.argsort(distances, kind="stable").tolist():
        point, hotspot = nearby[i]
        participant = participants.get(hotspot.gateway)
        if participant is not None and participant.online:
            kept.append(participant)
            if kept_km is not None:
                if point is participant.actual_location:
                    kept_km.append(distance_list[i])
                else:
                    kept_km = None
            if len(kept) >= cap:
                break
    if isinstance(challengee.cheat, GossipClique):
        present = {c.gateway for c in kept}
        for member in sorted(challengee.cheat.members):
            participant = participants.get(member)
            if (
                participant is not None
                and participant.online
                and member not in present
            ):
                kept.append(participant)
                kept_km = None
    if kept_km is None:
        return kept, None
    return kept, np.asarray(kept_km, dtype=float)


def ferry_weights_reference(
    state: WorldState, day: int, rng: np.random.Generator
) -> Dict[Address, float]:
    """Pre-elimination twin of
    :func:`repro.simulation.phases.traffic.ferry_weights`: the daily
    O(fleet) rebuild, kept as equivalence oracle and bench baseline."""
    weights: Dict[Address, float] = {}
    for hotspot in state.world.hotspots.values():
        if not hotspot.online or hotspot.is_validator:
            continue
        owner = state.world.owners.get(hotspot.owner)
        if owner is not None and owner.archetype == "commercial":
            weights[hotspot.gateway] = 30.0
        elif hotspot.ferries_data:
            weights[hotspot.gateway] = 1.0
    return weights
