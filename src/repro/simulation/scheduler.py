"""PhaseScheduler: ordered phase execution with per-phase timing.

The scheduler replaces the engine's inline day loop. It owns the only
phase-timing dict in the codebase — ``--profile`` output, the
``engine.phase.*`` obs metrics, and ``SimulationResult.day_loop_timings``
are all derived from :attr:`PhaseScheduler.timings`, so there is no
hand-kept parallel bookkeeping to drift out of sync.
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Dict, Iterator, List, Optional

from repro import obs
from repro.simulation.phases import Phase, default_phases
from repro.simulation.state import WorldState

__all__ = ["PhaseScheduler"]


class PhaseScheduler:
    """Runs registered phases in order, once per simulated day."""

    def __init__(self, phases: Optional[List[Phase]] = None) -> None:
        self.phases: List[Phase] = (
            list(phases) if phases is not None else default_phases()
        )
        #: Cumulative wall-clock seconds per phase name — the single
        #: source for ``--profile`` and the ``engine.phase.*`` metrics.
        self.timings: Dict[str, float] = {
            phase.name: 0.0 for phase in self.phases
        }

    @contextlib.contextmanager
    def _timed(self, name: str) -> Iterator[None]:
        started = perf_counter()
        try:
            yield
        finally:
            self.timings[name] = (
                self.timings.get(name, 0.0) + perf_counter() - started
            )

    def run_day(self, state: WorldState, day: int) -> None:
        """Prepare the day's transients, then run every phase in order."""
        state.begin_day(day)
        for phase in self.phases:
            with self._timed(phase.name):
                phase.run_day(state, day)

    def publish_metrics(self) -> None:
        """Flush cumulative per-phase wall-clock into obs metrics."""
        for name, seconds in self.timings.items():
            obs.observe(f"engine.phase.{name}", seconds)
