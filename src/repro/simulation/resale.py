"""Resale market: transfer_hotspot transactions (§4.3.3).

Targets: ≈8.6 % of deployed hotspots ever transferred; 95.4 % of
transferred hotspots change hands at most twice; 95.8 % of transfers
carry 0 DC (the money moves on eBay, not on-chain); activity starts in
December 2020 and grows (Figure 7c, 3,819 transfers over six months);
and a small set of heavy traders ("the 200 owners which have
participated in the most hotspot transfers") dominate volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import units
from repro.simulation.scenario import ScenarioConfig

__all__ = ["PlannedTransfer", "ResalePlanner"]

#: eBay-style resale prices, USD (paper: median $989, min $405, max $6,500).
_PRICE_MEDIAN_USD = 989.0
_PRICE_MIN_USD = 405.0
_PRICE_MAX_USD = 6_500.0


@dataclass
class PlannedTransfer:
    """One scheduled ownership transfer."""

    day: int
    #: On-chain payment in DC (0 for off-chain settlements).
    amount_dc: int
    #: Buyer is a flipper who will churn it again quickly.
    to_flipper: bool = False


class ResalePlanner:
    """Decides, at deployment, each hotspot's future transfer schedule."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config

    def plan(
        self, added_day: int, rng: np.random.Generator
    ) -> List[PlannedTransfer]:
        """Transfer schedule for one hotspot (usually empty)."""
        config = self.config
        if float(rng.random()) >= config.resale_fraction:
            return []
        first_possible = max(added_day + 7, config.resale_start_day)
        if first_possible >= config.n_days:
            return []
        transfers: List[PlannedTransfer] = []
        # Volume grows over time (Fig. 7c): bias sale days toward the end.
        span = config.n_days - first_possible
        day = first_possible + int(span * float(rng.beta(2.0, 1.2)))
        to_flipper = float(rng.random()) < 0.12
        transfers.append(PlannedTransfer(
            day=min(day, config.n_days - 1),
            amount_dc=self._sample_amount_dc(rng),
            to_flipper=to_flipper,
        ))
        # Repeat transfers: geometric, boosted for flipper inventory.
        repeat_p = 0.75 if to_flipper else config.repeat_transfer_probability
        while float(rng.random()) < repeat_p and transfers[-1].day + 5 < config.n_days:
            gap = int(rng.uniform(5, 60))
            next_day = transfers[-1].day + gap
            if next_day >= config.n_days:
                break
            transfers.append(PlannedTransfer(
                day=next_day,
                amount_dc=self._sample_amount_dc(rng),
                to_flipper=False,
            ))
            repeat_p = config.repeat_transfer_probability * 0.5
        return transfers

    def _sample_amount_dc(self, rng: np.random.Generator) -> int:
        """On-chain DC amount: almost always zero."""
        if float(rng.random()) < self.config.zero_dc_transfer_fraction:
            return 0
        # Lognormal around the eBay median, clamped to observed bounds.
        price = float(rng.lognormal(np.log(_PRICE_MEDIAN_USD), 0.5))
        price = min(max(price, _PRICE_MIN_USD), _PRICE_MAX_USD)
        return units.usd_to_dc(price)


def pick_buyer(
    world_owners: list,
    new_owner_factory,
    flippers: list,
    to_flipper: bool,
    seller: str,
    rng: np.random.Generator,
) -> Optional[str]:
    """Choose a buyer wallet for one transfer.

    70 % brand-new owners (resale is how latecomers get hardware during
    the shortage), the rest existing owners; flipper-bound transfers go
    to a flipper wallet. Returns ``None`` when no distinct buyer exists.
    """
    if to_flipper and flippers:
        candidates = [f for f in flippers if f != seller]
        if candidates:
            return candidates[int(rng.integers(len(candidates)))]
    if float(rng.random()) < 0.7 or not world_owners:
        return new_owner_factory()
    for _ in range(10):
        buyer = world_owners[int(rng.integers(len(world_owners)))]
        if buyer != seller:
            return buyer
    return None
