"""World model: ground truth for every simulated hotspot.

The chain records what hotspots *claim*; the world records what is
*true* — actual radio location, online status, backhaul, cheat strategy.
Analyses that score chain-derived models against reality (coverage
prediction accuracy, silent-mover detection) join chain data against
this world, exactly as the paper joins blockchain data against its own
field measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.chain.crypto import Address, Keypair
from repro.errors import SimulationError
from repro.geo.cities import City, CityDatabase
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexGrid
from repro.geo.landmass import CONTIGUOUS_US, Landmass
from repro.geo.spatialindex import SpatialIndex
from repro.p2p.backhaul import AsUniverse, BackhaulAssignment
from repro.poc.cheats import CheatStrategy
from repro.radio.propagation import Environment

__all__ = ["SimHotspot", "SimOwner", "World"]


@dataclass
class SimHotspot:
    """Ground truth + chain identity for one hotspot."""

    gateway: Address
    owner: Address
    city: City
    actual_location: LatLon
    asserted_location: Optional[LatLon] = None
    environment: Environment = Environment.SUBURBAN
    antenna_gain_dbi: float = 1.2
    backhaul: Optional[BackhaulAssignment] = None
    is_validator: bool = False
    online: bool = True
    added_day: int = 0
    added_block: int = 0
    #: Whether real application devices cluster near this hotspot (the
    #: §4.3 split: data-ferrying fleets vs pure coverage miners).
    ferries_data: bool = False
    assert_nonce: int = 0
    move_days: List[int] = field(default_factory=list)
    transfer_days: List[int] = field(default_factory=list)
    cheat: Optional[CheatStrategy] = None
    #: The point under which this hotspot is currently registered in the
    #: world's spatial index. Identical *object* to ``actual_location``
    #: right after an insert/rebuild; goes stale (old object, old coords)
    #: when the hotspot moves before the next weekly rebuild. Checkpoints
    #: persist it so a resumed run sees the exact same stale index a
    #: fresh run would.
    index_location: Optional[LatLon] = field(
        default=None, repr=False, compare=False
    )

    @property
    def asserted_token(self) -> Optional[str]:
        """Res-12 hex token of the asserted location, if asserted."""
        if self.asserted_location is None:
            return None
        return HexGrid.encode_cell(self.asserted_location).token

    @property
    def in_us(self) -> bool:
        """Whether the hotspot is *actually* in the US."""
        return self.city.is_us


@dataclass
class SimOwner:
    """One owner wallet and its behavioural archetype.

    Archetypes (§4.3): ``individual`` (1–3 hotspots), ``repeat`` (organic
    multi-hotspot), ``pool`` (mining pool, encashes HNT), ``commercial``
    (application operator, accumulates HNT, generates data), ``whale``
    (the 1,903-hotspot wallet).
    """

    wallet: Address
    archetype: str = "individual"
    home_city: Optional[City] = None
    hotspot_count: int = 0
    encashes: bool = False
    runs_devices: bool = False


class World:
    """All ground truth: cities, ISPs, owners, hotspots, geography."""

    def __init__(
        self,
        rng_cities: np.random.Generator,
        rng_isps: np.random.Generator,
        tail_isps: int = 440,
        landmass: Landmass = CONTIGUOUS_US,
        city_radius_scale: float = 1.0,
    ) -> None:
        self.cities = CityDatabase(rng_cities, radius_scale=city_radius_scale)
        self.isps = AsUniverse(rng_isps, tail_isps=tail_isps)
        self.landmass = landmass
        self.hotspots: Dict[Address, SimHotspot] = {}
        self.owners: Dict[Address, SimOwner] = {}
        #: Owner wallets in registration order — the same order as
        #: ``owners`` (insertion-ordered dict), maintained as a list so
        #: daily consumers (consensus sampling) index it directly
        #: instead of materialising ``list(owners.keys())`` every day.
        self.owner_wallets: List[Address] = []
        self._keypair_seq = 0
        self.index: SpatialIndex[SimHotspot] = SpatialIndex(cell_deg=0.5)

    # -- identity ---------------------------------------------------------------

    def new_gateway_address(self) -> Address:
        """Mint a fresh hotspot address."""
        self._keypair_seq += 1
        return Keypair.generate(f"gw-{self._keypair_seq}", prefix="hs").address

    def new_owner(self, archetype: str = "individual", home_city: Optional[City] = None) -> SimOwner:
        """Mint a fresh owner wallet."""
        self._keypair_seq += 1
        owner = SimOwner(
            wallet=Keypair.generate(f"owner-{self._keypair_seq}", prefix="wal").address,
            archetype=archetype,
            home_city=home_city,
            encashes=archetype in ("pool", "repeat", "whale"),
            runs_devices=archetype == "commercial",
        )
        self.register_owner(owner)
        return owner

    def register_owner(self, owner: SimOwner) -> None:
        """Record ``owner`` in the map and the ordered wallet list
        (the only way owners enter the world; restore paths included)."""
        self.owners[owner.wallet] = owner
        self.owner_wallets.append(owner.wallet)

    # -- hotspot lifecycle --------------------------------------------------------

    def add_hotspot(self, hotspot: SimHotspot) -> None:
        """Register a deployed hotspot in the world."""
        if hotspot.gateway in self.hotspots:
            raise SimulationError(f"duplicate hotspot: {hotspot.gateway}")
        self.hotspots[hotspot.gateway] = hotspot
        hotspot.index_location = hotspot.actual_location
        self.index.insert(hotspot.actual_location, hotspot)
        owner = self.owners.get(hotspot.owner)
        if owner is not None:
            owner.hotspot_count += 1

    def relocate(self, hotspot: SimHotspot, new_location: LatLon, new_city: Optional[City] = None) -> None:
        """Physically move a hotspot (re-asserting is the caller's job)."""
        hotspot.actual_location = new_location
        if new_city is not None:
            hotspot.city = new_city
        # The spatial index is append-only; rebuild lazily on demand.
        self._index_stale = True

    def rebuild_index(self) -> None:
        """Rebuild the actual-location spatial index after moves."""
        self.index = SpatialIndex(cell_deg=0.5)
        for hotspot in self.hotspots.values():
            hotspot.index_location = hotspot.actual_location
            self.index.insert(hotspot.actual_location, hotspot)

    def restore_index(self) -> None:
        """Rebuild the spatial index from each hotspot's recorded
        ``index_location`` (checkpoint restore), reproducing a stale
        index exactly as the interrupted run last saw it — including the
        object-identity property hot paths rely on: a hotspot indexed
        under its live position is indexed under the *same object* as
        ``actual_location``."""
        self.index = SpatialIndex(cell_deg=0.5)
        for hotspot in self.hotspots.values():
            point = hotspot.index_location
            if point is None:
                point = hotspot.actual_location
                hotspot.index_location = point
            self.index.insert(point, hotspot)

    # -- queries -------------------------------------------------------------------

    def online_hotspots(self) -> List[SimHotspot]:
        """Hotspots currently online."""
        return [h for h in self.hotspots.values() if h.online]

    def us_hotspots(self) -> List[SimHotspot]:
        """Hotspots actually located in the US."""
        return [h for h in self.hotspots.values() if h.in_us]

    def density_near(self, location: LatLon, radius_km: float = 5.0) -> int:
        """Hotspot count within ``radius_km`` of a point (actual)."""
        return self.index.count_within_radius(location, radius_km)
