"""Owner assignment: who buys each new hotspot (§4.3).

Calibration targets from the paper: "approximately 5,700 owners (62.1%)
own only one hotspot, about 1,300 owners (14.6%) own two hotspots, about
600 owners (7%) own three"; 83.7 % own ≤ 3; 10.3 % own ≥ 5; max 1,903
(a whale that grew from 160 in March to 1,903 in May). We model this as
new-owner-vs-preferential-attachment with an organic cap, plus injected
archetypes: mining pools (Denver clusters), commercial fleets (Careband/
nowi), and the late-arriving whale.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.geo.cities import City
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.world import SimOwner, World

__all__ = ["OwnerModel"]


class OwnerModel:
    """Assigns each newly deployed hotspot to an owner wallet."""

    def __init__(self, config: ScenarioConfig, world: World) -> None:
        self.config = config
        self.world = world
        self._organic: List[SimOwner] = []
        self._whale: Optional[SimOwner] = None
        self._pools: List[SimOwner] = []
        self._commercials: List[SimOwner] = []
        self._pool_quota: List[int] = []
        self._commercial_quota: List[int] = []
        self._bootstrap_archetypes()

    def _bootstrap_archetypes(self) -> None:
        config = self.config
        for city_name, fleet in config.mining_pools:
            city = self._city_named(city_name)
            owner = self.world.new_owner("pool", home_city=city)
            self._pools.append(owner)
            self._pool_quota.append(fleet)
        for city_name, fleet in config.commercial_fleets:
            city = self._city_named(city_name)
            owner = self.world.new_owner("commercial", home_city=city)
            self._commercials.append(owner)
            self._commercial_quota.append(fleet)

    def _city_named(self, name: str) -> City:
        for city in self.world.cities.cities:
            if city.name == name:
                return city
        raise SimulationError(f"archetype city not in database: {name!r}")

    # -- assignment ---------------------------------------------------------

    def assign(self, day: int, rng: np.random.Generator) -> SimOwner:
        """Pick the owner of a hotspot deployed on ``day``.

        Priority: archetype fleets fill first (they deploy early and
        deliberately), then the whale absorbs late supply, then the
        organic new-owner / preferential-attachment mix.
        """
        config = self.config
        # Archetype fleets trickle in during the first two-thirds of the run.
        if day < config.n_days * 0.67:
            for i, owner in enumerate(self._pools):
                if owner.hotspot_count < self._pool_quota[i] and rng.random() < 0.08:
                    return owner
            for i, owner in enumerate(self._commercials):
                if (
                    owner.hotspot_count < self._commercial_quota[i]
                    and rng.random() < 0.06
                ):
                    return owner
        # The whale: a late bulk buyer (§4.3, max 160 → 1,903 in 10 weeks).
        if day >= config.whale_start_day:
            if self._whale is None:
                self._whale = self.world.new_owner("whale")
            if rng.random() < config.whale_share_of_late_supply:
                return self._whale
        # Organic market.
        if not self._organic or rng.random() < config.new_owner_probability:
            owner = self.world.new_owner("individual")
            self._organic.append(owner)
            return owner
        return self._attach(rng)

    def _attach(self, rng: np.random.Generator) -> SimOwner:
        """Preferential attachment among organic owners, capped."""
        eligible = [
            o for o in self._organic if o.hotspot_count < self.config.organic_owner_cap
        ]
        if not eligible:
            owner = self.world.new_owner("individual")
            self._organic.append(owner)
            return owner
        weights = np.array(
            [max(o.hotspot_count, 1) ** self.config.attachment_alpha for o in eligible],
            dtype=float,
        )
        weights /= weights.sum()
        owner = eligible[int(rng.choice(len(eligible), p=weights))]
        if owner.hotspot_count >= 2:
            owner.archetype = "repeat"
            owner.encashes = True
        return owner

    # -- deployment city ---------------------------------------------------------

    def deployment_city(
        self, owner: SimOwner, day: int, international_share: float, rng: np.random.Generator
    ) -> City:
        """Where this owner deploys a hotspot bought on ``day``.

        Archetype owners cluster near their home city; organic owners
        follow population weights, going international per the launch
        ramp.
        """
        if owner.home_city is not None and owner.archetype in ("pool", "commercial"):
            return owner.home_city
        go_international = rng.random() < international_share
        if go_international:
            return self.world.cities.sample_city(rng, exclude_us=True)
        return self.world.cities.sample_city(rng, country="US")

    @property
    def whale(self) -> Optional[SimOwner]:
        """The whale owner, once created."""
        return self._whale

    @property
    def pools(self) -> List[SimOwner]:
        """Mining-pool archetype owners."""
        return list(self._pools)

    @property
    def commercials(self) -> List[SimOwner]:
        """Commercial archetype owners."""
        return list(self._commercials)
