"""Data traffic process: who sends packets, when, and through whom (§5).

Reproduces the three traffic regimes of Figure 8:

* a pre-DC era (before Aug 12, 2020) with modest free traffic,
* the arbitrage spam spike (Aug 12 – Sep 6, 2020): "Users were gaming
  the network by spamming packets to devices they owned to increase
  their share of mined HNT" until HIP 10 capped data rewards,
* steadily growing organic traffic afterwards, approaching ~14
  packets/second network-wide by late May 2021, dominated by the
  Console (OUI 1/2 hold 81.18 % of state-channel transactions) with
  third-party OUIs "recently started to increase".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.chain.crypto import Address
from repro.errors import SimulationError
from repro.simulation.scenario import ScenarioConfig

__all__ = ["DayTraffic", "TrafficModel"]

#: Seconds in a day, for packets/second ↔ packets/day conversions.
_DAY_S = 86_400.0


@dataclass
class DayTraffic:
    """One day's traffic, split by router class."""

    day: int
    console_packets: int
    third_party_packets: int
    spam_packets: int

    @property
    def total_packets(self) -> int:
        """All packets ferried this day."""
        return self.console_packets + self.third_party_packets + self.spam_packets


class TrafficModel:
    """Generates daily packet volumes and attributes them to hotspots."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config

    # -- volumes ------------------------------------------------------------

    def day_traffic(self, day: int, rng: np.random.Generator) -> DayTraffic:
        """Packet volumes for simulation day ``day``."""
        config = self.config
        if day < 0 or day >= config.n_days:
            raise SimulationError(f"day {day} outside scenario range")
        organic = self._organic_packets(day)
        noise = float(rng.uniform(0.8, 1.25))
        organic = int(organic * noise)
        third_share = self._third_party_share(day)
        third = int(organic * third_share)
        console = organic - third
        return DayTraffic(
            day=day,
            console_packets=console,
            third_party_packets=third,
            spam_packets=self._spam_packets(day, organic),
        )

    def _organic_packets(self, day: int) -> int:
        """Exponential organic growth to the final packets/second."""
        config = self.config
        final_daily = config.final_packets_per_second * _DAY_S
        # Start around 1/400 of the final rate; exponential ramp.
        start_daily = max(final_daily / 400.0, 50.0)
        progress = day / max(config.n_days - 1, 1)
        return int(start_daily * (final_daily / start_daily) ** progress)

    def _third_party_share(self, day: int) -> float:
        """Third-party routers carry a late, growing slice (§5.3.1)."""
        config = self.config
        onset = 0.65 * config.n_days
        if day < onset:
            return 0.0
        progress = (day - onset) / max(config.n_days - onset, 1.0)
        return 0.15 * progress

    def _spam_packets(self, day: int, organic_today: int) -> int:
        """The HIP 10 arbitrage episode (§5.3.2)."""
        config = self.config
        if day < config.dc_payments_live_day or day > config.spam_decay_end_day:
            return 0
        peak = organic_today * config.arbitrage_peak_multiplier
        if day <= config.hip10_day:
            # Ramp up fast once DC rewards go live.
            ramp = (day - config.dc_payments_live_day + 1) / max(
                config.hip10_day - config.dc_payments_live_day + 1, 1
            )
            return int(peak * ramp)
        # HIP 10 landed: spam decays over the following days.
        decay_span = max(config.spam_decay_end_day - config.hip10_day, 1)
        remaining = 1.0 - (day - config.hip10_day) / decay_span
        return int(peak * max(remaining, 0.0))

    # -- attribution ------------------------------------------------------------

    @staticmethod
    def attribute_packets(
        packets: int,
        hotspot_weights: Dict[Address, float],
        rng: np.random.Generator,
        max_hotspots: int = 40,
    ) -> Dict[Address, int]:
        """Split a packet count across ferrying hotspots.

        Weights come from the engine (commercial-fleet hotspots carry the
        most — devices cluster around real applications). A multinomial
        draw over the ``max_hotspots`` heaviest keeps summaries compact.
        """
        if packets <= 0 or not hotspot_weights:
            return {}
        items = sorted(hotspot_weights.items(), key=lambda kv: -kv[1])[:max_hotspots]
        gateways = [gw for gw, _ in items]
        raw = np.array([w for _, w in items], dtype=float)
        probabilities = raw / raw.sum()
        draws = rng.multinomial(packets, probabilities)
        return {
            gateway: int(count)
            for gateway, count in zip(gateways, draws)
            if count > 0
        }

    def channels_per_day(self, third_party: bool) -> float:
        """State-channel close cadence by router class.

        The Console closes every ``console_close_blocks`` (~120 blocks ≈
        2 h → 12/day); third parties collectively produce enough
        open/close volume to leave the Console with its 81.18 % share.
        """
        console_txn_rate = 2.0 * (1440.0 / self.config.console_close_blocks)
        if not third_party:
            return console_txn_rate / 2.0
        total_rate = console_txn_rate / self.config.console_channel_share
        return (total_rate - console_txn_rate) / 2.0
