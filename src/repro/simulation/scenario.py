"""Scenario configuration: every knob of the generative model.

The default (:func:`paper_scenario`) is a 1/10-scale replica of the
network the paper measured (≈ 4,400 hotspots by late May 2021 instead of
44,000) with Proof-of-Coverage thinned relative to the real chain's
~3 challenges/hotspot/day. Both scale factors are recorded here so the
analyses can report descaled figures next to raw ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import SimulationError

__all__ = [
    "ScenarioConfig",
    "million_hotspot_scenario",
    "paper_10x_scenario",
    "paper_scenario",
    "small_scenario",
    "validate_config",
]

#: Days from genesis (2019-07-29) to the paper's snapshot (late May 2021).
PAPER_STUDY_DAYS: int = 667

#: Day index of the March 7, 2021 mid-study snapshot the paper quotes.
MARCH_7_2021_DAY: int = 587

#: Day index when DC payments went live (Aug 12, 2020; §5.3.2).
DC_PAYMENTS_LIVE_DAY: int = 380

#: Day index when HIP 10 stopped the arbitrage (Aug 24, 2020).
HIP10_DAY: int = 392

#: Day the spam traffic finally fell off (Sep 6, 2020).
SPAM_DECAY_END_DAY: int = 405

#: Day hotspot sales opened outside the US (summer 2020, §4.2).
INTERNATIONAL_LAUNCH_DAY: int = 340

#: Day the resale market (transfer_hotspot) got going (Dec 2020, Fig 7c).
RESALE_START_DAY: int = 490


@dataclass(frozen=True)
class ScenarioConfig:
    """Full parameterisation of one simulated Helium history."""

    seed: int = 2021
    #: Simulated days from genesis.
    n_days: int = PAPER_STUDY_DAYS
    #: Target fleet size at the end of the run.
    target_hotspots: int = 4400
    #: Real network size the target represents (sets the scale factor).
    real_network_size: int = 44_000

    # -- timeline milestones (day indices from genesis) ------------------------
    dc_payments_live_day: int = DC_PAYMENTS_LIVE_DAY
    hip10_day: int = HIP10_DAY
    spam_decay_end_day: int = SPAM_DECAY_END_DAY
    international_launch_day: int = INTERNATIONAL_LAUNCH_DAY
    resale_start_day: int = RESALE_START_DAY
    march_snapshot_day: int = MARCH_7_2021_DAY

    # -- adoption (§4.2) -----------------------------------------------------
    #: Fraction of ever-connected hotspots still online at any time
    #: (paper: 34k online of 44k connected ≈ 0.78).
    online_fraction: float = 0.78
    #: Production batch cadence in days and relative batch growth.
    batch_interval_days: int = 30
    batch_growth: float = 1.33
    #: Fraction of new hotspots placed outside the US after the
    #: international launch ramp completes.
    international_share_final: float = 0.52

    # -- ownership (§4.3) ------------------------------------------------------
    #: Probability a new hotspot creates a brand-new owner. Calibrated
    #: with attachment_alpha/organic_owner_cap so the §4.3 ownership
    #: marginals emerge (62 % own one, 10 % own ≥5, whale at top).
    new_owner_probability: float = 0.42
    #: Preferential-attachment exponent for repeat buyers.
    attachment_alpha: float = 1.0
    #: Ceiling on organic repeat-buyer fleet size.
    organic_owner_cap: int = 60
    #: Whale owner (the 1,903-hotspot wallet): share of late supply.
    whale_share_of_late_supply: float = 0.10
    whale_start_day: int = 560
    #: Mining-pool archetypes: (city, fleet size) pairs, paper §4.3.2.
    mining_pools: Tuple[Tuple[str, int], ...] = (("Denver", 14), ("Denver", 14))
    #: Commercial archetypes: (city, fleet size), paper §4.3.1.
    commercial_fleets: Tuple[Tuple[str, int], ...] = (
        ("Chicago", 3),      # Careband-like (25 at full scale)
        ("Stonington", 6),   # nowi-like (61 across 19 owners at full scale)
    )

    # -- moves (§4.1) -------------------------------------------------------------
    #: Fraction of hotspots planned to never move after the initial
    #: assert. Set below the paper's measured 71.9 % because movers
    #: whose first gap falls past the study window end up *measured* as
    #: never-movers.
    never_move_fraction: float = 0.66
    #: Of movers, geometric tail; P(another move | moved k times).
    #: Set above the steady-state Fig. 2 value (q≈0.67 would give
    #: P(≤2|mover)=0.55, P(>5|mover)=0.16) because the study window
    #: right-censors late adopters' move careers.
    extra_move_probability: float = 0.74
    #: One pathological frequent mover (the 20-move outlier).
    frequent_mover_moves: int = 20
    #: Probability an initial assert lands at (0, 0) (GPS-fix failure).
    null_island_initial_probability: float = 0.0085
    #: Probability a *re*assert lands at (0, 0). Calibrated so ~11 % of
    #: (0,0) asserts are relocations (paper: 41 of 372).
    null_island_move_probability: float = 0.0022
    #: Fraction of moves that are long-distance (> 500 km).
    long_move_fraction: float = 0.135
    #: Of long moves, fraction leaving the US (the resale export flow).
    long_move_us_export_fraction: float = 0.62

    # -- resale (§4.3.3) --------------------------------------------------------------
    #: Fraction of the fleet ever transferred on-chain.
    resale_fraction: float = 0.086
    #: Fraction of transfers carrying 0 DC (off-chain settlement).
    zero_dc_transfer_fraction: float = 0.958
    #: Of transferred hotspots, chance of a further transfer.
    repeat_transfer_probability: float = 0.30

    # -- PoC (§2.3, §7) ------------------------------------------------------------------
    #: Challenges per online hotspot per day actually *simulated*. The
    #: real chain runs ≈ 3; the analyses descale by poc_thinning_factor.
    challenges_per_hotspot_day: float = 0.05
    #: Candidate witnesses evaluated per challenge (random subsample cap).
    max_witness_candidates: int = 25
    #: Fraction of hotspots that are silent movers (§7.1).
    silent_mover_fraction: float = 0.004
    #: Fraction of hotspots that forge RSSI (§7.2).
    rssi_liar_fraction: float = 0.010
    #: Gossip cliques: (members, home city) tuples.
    gossip_cliques: Tuple[Tuple[int, str], ...] = ((5, "Miami"), (4, "Las Vegas"))
    #: Fraction of hotspots with high-gain elevated antennas (long links).
    high_gain_fraction: float = 0.012

    # -- traffic (§5) ---------------------------------------------------------------------
    #: Aggregate user traffic at the end of the run, packets/second
    #: (paper: "approaching 14 packets/second across the whole network").
    final_packets_per_second: float = 14.0
    #: Console's share of state-channel transactions (paper: 81.18 %).
    console_channel_share: float = 0.8118
    #: Console channel close cadence in blocks (paper: ~120).
    console_close_blocks: int = 120
    #: Arbitrage spam peak multiplier over contemporary organic traffic.
    arbitrage_peak_multiplier: float = 60.0
    #: Number of third-party OUIs (paper: ten total incl. OUI 1/2).
    third_party_ouis: int = 8

    # -- backhaul / p2p (§6) -----------------------------------------------------------------
    #: Long-tail regional ISPs to generate.
    tail_isps: int = 440
    #: Fraction of hotspots that are actually cloud-hosted validators.
    validator_fraction: float = 0.004

    def __post_init__(self) -> None:
        validate_config(self)

    @property
    def scale_factor(self) -> float:
        """Fleet scale relative to the real May-2021 network."""
        return self.target_hotspots / self.real_network_size

    @property
    def poc_thinning_factor(self) -> float:
        """How much rarer simulated challenges are than real ones (≈3/day)."""
        return 3.0 / self.challenges_per_hotspot_day


#: Fields constrained to [0, 1] (probabilities and shares), checked in
#: strict validation — the one validated spec-load path.
_FRACTION_FIELDS = (
    "online_fraction",
    "international_share_final",
    "new_owner_probability",
    "whale_share_of_late_supply",
    "never_move_fraction",
    "extra_move_probability",
    "null_island_initial_probability",
    "null_island_move_probability",
    "long_move_fraction",
    "long_move_us_export_fraction",
    "resale_fraction",
    "zero_dc_transfer_fraction",
    "repeat_transfer_probability",
    "silent_mover_fraction",
    "rssi_liar_fraction",
    "high_gain_fraction",
    "console_channel_share",
    "validator_fraction",
)

#: Timeline milestones that must land inside the run (strict mode).
_MILESTONE_FIELDS = (
    "dc_payments_live_day",
    "hip10_day",
    "spam_decay_end_day",
    "international_launch_day",
    "resale_start_day",
    "march_snapshot_day",
    "whale_start_day",
)

#: (field, minimum) pairs that must be strictly positive / at least 1.
_POSITIVE_FIELDS = (
    ("real_network_size", 1),
    ("batch_interval_days", 1),
    ("max_witness_candidates", 1),
    ("console_close_blocks", 1),
)

#: Fields that only need to be non-negative.
_NON_NEGATIVE_FIELDS = (
    "seed",
    "attachment_alpha",
    "organic_owner_cap",
    "frequent_mover_moves",
    "final_packets_per_second",
    "arbitrage_peak_multiplier",
    "third_party_ouis",
    "tail_isps",
)


def validate_config(config: "ScenarioConfig", *, strict: bool = False) -> None:
    """Check a scenario's constraints, raising :class:`SimulationError`.

    The non-strict form runs on every construction (``__post_init__``)
    and keeps only the historical cheap checks, so tests and benches
    may still ``dataclasses.replace`` a scenario into unusual corners
    (e.g. capping ``n_days`` below a milestone for a day-capped run).

    ``strict=True`` is the *load-path* contract used by
    :mod:`repro.scenarios` on every spec resolution: every fraction in
    [0, 1], rates and sizes positive, and milestone days ordered and
    inside ``[0, n_days]`` — with the offending field named, so a bad
    knob fails at load time instead of deep inside the engine.
    """
    if config.n_days < 30:
        raise SimulationError("n_days: scenario needs at least 30 days")
    if config.target_hotspots < 50:
        raise SimulationError(
            "target_hotspots: scenario needs at least 50 hotspots"
        )
    if not (0.0 < config.online_fraction <= 1.0):
        raise SimulationError("online_fraction must be in (0, 1]")
    if not (0.0 <= config.never_move_fraction <= 1.0):
        raise SimulationError("never_move_fraction must be in [0, 1]")
    if not strict:
        return
    for name in _FRACTION_FIELDS:
        value = getattr(config, name)
        if not (0.0 <= value <= 1.0):
            raise SimulationError(
                f"{name} must be in [0, 1], got {value!r}"
            )
    if config.challenges_per_hotspot_day <= 0.0:
        raise SimulationError(
            "challenges_per_hotspot_day must be positive, got "
            f"{config.challenges_per_hotspot_day!r}"
        )
    if config.batch_growth <= 0.0:
        raise SimulationError(
            f"batch_growth must be positive, got {config.batch_growth!r}"
        )
    for name, minimum in _POSITIVE_FIELDS:
        value = getattr(config, name)
        if value < minimum:
            raise SimulationError(
                f"{name} must be at least {minimum}, got {value!r}"
            )
    for name in _NON_NEGATIVE_FIELDS:
        value = getattr(config, name)
        if value < 0:
            raise SimulationError(
                f"{name} must be non-negative, got {value!r}"
            )
    for name in _MILESTONE_FIELDS:
        day = getattr(config, name)
        if not (0 <= day <= config.n_days):
            raise SimulationError(
                f"{name} must fall inside the run (0..{config.n_days} "
                f"days), got {day!r}"
            )
    if not (
        config.dc_payments_live_day
        <= config.hip10_day
        <= config.spam_decay_end_day
    ):
        raise SimulationError(
            "milestone days out of order: need dc_payments_live_day <= "
            f"hip10_day <= spam_decay_end_day, got "
            f"{config.dc_payments_live_day} / {config.hip10_day} / "
            f"{config.spam_decay_end_day}"
        )
    for name in ("mining_pools", "commercial_fleets"):
        for city, size in getattr(config, name):
            if size < 1:
                raise SimulationError(
                    f"{name} fleet size for {city!r} must be at least 1, "
                    f"got {size!r}"
                )
    for members, city in config.gossip_cliques:
        if members < 1:
            raise SimulationError(
                f"gossip_cliques members for {city!r} must be at least "
                f"1, got {members!r}"
            )


def paper_scenario(seed: int = 2021) -> ScenarioConfig:
    """The default 1/10-scale replica of the paper's study period.

    Resolved through the declarative registry (the knobs live in
    ``repro/scenarios/builtin/paper.json``); this builder — like its
    three siblings — is a thin compatibility wrapper over
    :func:`repro.scenarios.resolve`.
    """
    from repro.scenarios import resolve

    return resolve("paper", seed=seed).config


def paper_10x_scenario(seed: int = 2021) -> ScenarioConfig:
    """The full-scale tier: 44,000 hotspots — the network the paper
    actually measured, at 1:1 (scale factor 1.0, so descaled figures
    equal raw ones).

    PoC is thinned further than the default tier (0.02 vs 0.05
    challenges/hotspot/day; ``poc_thinning_factor`` records the ratio
    the analyses descale by) because challenge cost grows with local
    density and the 10x fleet is 10x denser everywhere — this keeps an
    end-to-end run in minutes on one core while the fleet, ownership,
    traffic and move machinery all run at true scale. Archetype fleets
    (mining pools, commercial deployments, cliques) scale to their
    real-network sizes from §4.3 — see
    ``repro/scenarios/builtin/paper-10x.json``.
    """
    from repro.scenarios import resolve

    return resolve("paper-10x", seed=seed).config


def million_hotspot_scenario(seed: int = 2021) -> ScenarioConfig:
    """The 100× tier: 1,000,000 hotspots — the "millions of users"
    scale the network grew toward after the study window (ROADMAP north
    star), ~23× the fleet the paper measured.

    Everything structural runs at true scale — adoption batches,
    ownership archetypes (mining pools, commercial fleets and cliques
    scale with the fleet), moves, resale, backhaul diversity — while
    per-hotspot event *rates* are thinned hard (0.001 challenges/
    hotspot/day; ``poc_thinning_factor`` records the ratio) so the
    per-day transaction volume stays tractable. The chain this tier
    produces is orders of magnitude too large to hold resident: it is
    only feasible with the append-to-disk chain log
    (``chain_log=True``, the engine default) bounding chain RSS.
    Capped-day runs (``stop_after_day`` / ``REPRO_SCALE_DAYS``) are the
    intended smoke vehicle; the fleet reaches full size late in the
    adoption schedule. Knobs:
    ``repro/scenarios/builtin/million-hotspot.json``.
    """
    from repro.scenarios import resolve

    return resolve("million-hotspot", seed=seed).config


def small_scenario(seed: int = 7) -> ScenarioConfig:
    """A fast scenario for tests: ~700 hotspots over 180 compressed
    days, with enough §7 cheats for the forensics to have statistical
    teeth. Knobs: ``repro/scenarios/builtin/small.json``."""
    from repro.scenarios import resolve

    return resolve("small", seed=seed).config
