"""Hotspot relocation process (§4.1).

Reproduces the paper's move phenomenology:

* 71.9 % of hotspots never move after the initial assert; movers follow
  a geometric tail (≈55 % of movers stop within two moves, ≈16 % exceed
  five).
* Move *timing* follows Figure 4: 17.9 % of relocations within a day,
  35.8 % within a week, 63.2 % within a month.
* Move *distance* is bimodal (Figure 3): short test-then-deploy hops
  within the city, and long-distance flows — dominated by US→Europe
  resale exports — plus the (0,0) "null island" GPS-fix artifacts.
* One pathological frequent mover (20 relocations) and a handful of
  silent movers who relocate physically but never re-assert (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.geo.cities import City
from repro.geo.geodesy import LatLon, destination
from repro.simulation.scenario import ScenarioConfig

__all__ = ["PlannedMove", "MovePlanner", "sample_move_gap_days"]


@dataclass
class PlannedMove:
    """One scheduled relocation.

    ``day`` is fractional: the integer part is the calendar day, the
    fraction places the assert within the day's blocks so that sub-day
    relocation intervals (17.9 % of them, Fig. 4) exist on-chain.
    """

    day: float
    kind: str  # "short" | "long" | "to_null" | "from_null"


def sample_move_gap_days(
    rng: np.random.Generator, heavy_mover: bool = False
) -> float:
    """Days between consecutive relocations, matching Figure 4's CDF.

    Heavy movers (test-then-deploy churners and the 20-move outlier)
    draw from the same piecewise shape with a compressed tail — they
    must, or their multi-move careers could not fit inside the study
    window at all, given the network's late exponential growth.
    """
    roll = float(rng.random())
    if heavy_mover:
        # Compressed: late churners complete their careers within weeks.
        if roll < 0.15:
            return float(rng.uniform(0.02, 1.0))
        if roll < 0.30:
            return float(rng.uniform(1.0, 5.0))
        if roll < 0.60:
            return float(rng.uniform(5.0, 15.0))
        return float(rng.uniform(15.0, 60.0))
    # Generative anchors sit *below* Fig. 4's measured CDF because the
    # study window right-censors long gaps: under the exponential
    # adoption curve this parameterisation measures out near the paper's
    # 17.9 / 35.8 / 63.2 % anchors (see EXPERIMENTS.md for the residual).
    if roll < 0.12:
        return float(rng.uniform(0.02, 1.0))
    if roll < 0.24:
        return float(rng.uniform(1.0, 7.0))
    if roll < 0.46:
        return float(rng.uniform(7.0, 30.0))
    return float(rng.uniform(30.0, 450.0))


class MovePlanner:
    """Plans each hotspot's relocation schedule at deployment time."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self._frequent_mover_assigned = False

    def initial_assert_is_null(self, rng: np.random.Generator) -> bool:
        """Whether the first assert lands at (0, 0) (no GPS fix)."""
        return float(rng.random()) < self.config.null_island_initial_probability

    def plan(
        self,
        added_day: int,
        rng: np.random.Generator,
        initial_null: bool,
        will_transfer_on: Optional[int] = None,
    ) -> List[PlannedMove]:
        """The relocation schedule for one hotspot.

        Args:
            added_day: deployment day.
            rng: random stream.
            initial_null: the first assert was at (0, 0); a correcting
                move follows within days (89 % of (0,0) asserts were
                first-time, then fixed).
            will_transfer_on: day of a scheduled resale, if any; roughly
                half of transfers are followed by a long-distance move.
        """
        config = self.config
        moves: List[PlannedMove] = []
        cursor = float(added_day)
        if initial_null:
            cursor += float(rng.uniform(0.2, 6.0))
            moves.append(PlannedMove(day=cursor, kind="from_null"))

        n_extra = 0
        if not self._frequent_mover_assigned and float(rng.random()) < 1.0 / max(
            config.target_hotspots, 1
        ):
            # The single 20-move outlier (§4.1).
            n_extra = config.frequent_mover_moves
            self._frequent_mover_assigned = True
        elif float(rng.random()) >= config.never_move_fraction:
            n_extra = 1
            while float(rng.random()) < config.extra_move_probability:
                n_extra += 1

        # Churners (3+ planned moves) draw compressed gaps: with the
        # fleet's late exponential growth, multi-move careers can only
        # exist at all if they complete within weeks — which is also the
        # only way Fig. 2's fat mover tail and Fig. 4's interval CDF can
        # coexist under right-censoring.
        heavy = n_extra >= 3
        for _ in range(n_extra):
            cursor += sample_move_gap_days(rng, heavy_mover=heavy)
            if cursor >= config.n_days:
                break
            roll = float(rng.random())
            if roll < config.null_island_move_probability:
                kind = "to_null"
            elif roll < config.null_island_move_probability + config.long_move_fraction:
                kind = "long"
            else:
                kind = "short"
            if kind == "to_null":
                # Nobody stays at (0, 0): "there are no online hotspots
                # that have moved to and remain at (0,0)" (§4.1) — only
                # visit null island if the correcting move also fits
                # inside the study window.
                correction = cursor + float(rng.uniform(0.2, 4.0))
                if correction >= config.n_days:
                    break
                moves.append(PlannedMove(day=cursor, kind="to_null"))
                moves.append(PlannedMove(day=correction, kind="from_null"))
                cursor = correction
                continue
            moves.append(PlannedMove(day=cursor, kind=kind))

        if will_transfer_on is not None and float(rng.random()) < 0.5:
            move_day = will_transfer_on + float(rng.uniform(1.5, 10.0))
            if move_day < config.n_days:
                moves.append(PlannedMove(day=move_day, kind="long"))
        moves.sort(key=lambda m: m.day)
        return moves

    # -- move targets ------------------------------------------------------------

    @staticmethod
    def short_move_target(
        current: LatLon, city: City, rng: np.random.Generator
    ) -> LatLon:
        """A test-then-deploy hop: a few hundred metres to a few km."""
        distance = float(rng.lognormal(np.log(1.2), 0.9))
        distance = min(distance, 3.0 * city.scatter_radius_km())
        return destination(current, float(rng.uniform(0.0, 360.0)), distance)

    def long_move_target(
        self,
        day: int,
        currently_us: bool,
        cities,
        rng: np.random.Generator,
    ) -> City:
        """Destination city of a long-distance move.

        After the international launch, most long moves out of the US are
        exports (the blue flow in Figure 3c); the remainder shuffle
        between US metros.
        """
        config = self.config
        exporting = (
            currently_us
            and day >= config.international_launch_day
            and float(rng.random()) < config.long_move_us_export_fraction
        )
        if exporting:
            return cities.sample_city(rng, exclude_us=True)
        return cities.sample_city(rng, country="US" if currently_us else None)
