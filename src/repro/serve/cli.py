"""``python -m repro.serve`` — run the serving tier or load-test it.

Usage::

    python -m repro.serve serve --db /tmp/etl.db --port 8700
    python -m repro.serve serve --db /tmp/etl.db --scenario small
    python -m repro.serve serve --db /tmp/etl.db --workers 8 \\
        --queue-depth 256 --cache-ttl 30
    python -m repro.serve load --url http://127.0.0.1:8700 \\
        --clients 1000 --duration 10 --report load.json
    python -m repro.serve --trace serve.jsonl serve --db /tmp/etl.db

``serve`` starts the pooled front end (read-only WAL replicas per
worker, checkpoint-keyed response cache, 503 shedding, SIGTERM drain);
pass ``--scenario`` to auto-ingest a missing database first, exactly
like the legacy ``repro.etl serve``. ``load`` drives any explorer URL
with zipf-popular, bursty traffic and prints a latency/throughput
report as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Production serving tier over the ETL replica.",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="append JSON-lines trace events here "
        "(equivalent to setting REPRO_TRACE)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="serve the explorer API (pooled)")
    serve.add_argument("--db", required=True, help="path of the SQLite store")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8700)
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker threads (default: scaled from cpu count)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=128, metavar="N",
        help="max queued requests before shedding 503s (default 128)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=1024, metavar="N",
        help="response-cache LRU capacity (default 1024)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=30.0, metavar="SECONDS",
        help="response-cache idle TTL (default 30)",
    )
    serve.add_argument(
        "--scenario", default=None, metavar="NAME|FILE",
        help="ingest this scenario (registry name or spec-file path) "
        "first if the store is missing/stale",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's own seed (default: keep it)",
    )
    serve.add_argument(
        "--no-keep-alive", action="store_true",
        help="serve HTTP/1.0 (one request per connection) instead of "
        "the default HTTP/1.1 keep-alive",
    )
    serve.add_argument("--quiet", action="store_true")

    load = sub.add_parser("load", help="drive a server with zipf traffic")
    load.add_argument(
        "--url", default="http://127.0.0.1:8700",
        help="base URL of the server under test",
    )
    load.add_argument(
        "--clients", type=int, default=256,
        help="simulated concurrent clients (default 256; 1k-10k work, "
        "mind ulimit -n)",
    )
    load.add_argument("--duration", type=float, default=5.0, metavar="SECONDS")
    load.add_argument("--seed", type=int, default=2021)
    load.add_argument(
        "--zipf-s", type=float, default=1.1,
        help="zipf popularity exponent (default 1.1)",
    )
    load.add_argument(
        "--mean-on", type=float, default=0.5, metavar="SECONDS",
        help="mean busy-burst length (default 0.5)",
    )
    load.add_argument(
        "--mean-off", type=float, default=0.5, metavar="SECONDS",
        help="mean idle gap between bursts (default 0.5)",
    )
    load.add_argument(
        "--no-revalidate", action="store_true",
        help="do not send If-None-Match (suppresses the 304 fast path)",
    )
    load.add_argument(
        "--keep-alive", action="store_true",
        help="reuse each client's connection per burst (HTTP/1.1)",
    )
    load.add_argument(
        "--report", metavar="FILE", default=None,
        help="also write the JSON report here",
    )
    return parser


def _cmd_serve(args) -> int:
    from repro.etl.cli import _open_or_ingest
    from repro.serve.server import serve

    # Reuse the legacy auto-ingest path, then serve through the pool.
    store = _open_or_ingest(args.db, args.scenario, args.seed)
    store.close()  # the tier opens its own read-only replicas
    serve(
        args.db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_entries=args.cache_entries,
        cache_ttl_s=args.cache_ttl,
        keep_alive=not args.no_keep_alive,
        verbose=not args.quiet,
    )
    return 0


def _cmd_load(args) -> int:
    from repro.serve.loadgen import fetch_metrics, run_load

    before = fetch_metrics(args.url).get("counters", {})
    report = run_load(
        args.url,
        clients=args.clients,
        duration_s=args.duration,
        seed=args.seed,
        zipf_s=args.zipf_s,
        mean_on_s=args.mean_on,
        mean_off_s=args.mean_off,
        revalidate=not args.no_revalidate,
        keep_alive=args.keep_alive,
    )
    after = fetch_metrics(args.url).get("counters", {})
    summary = report.summary()
    hits = after.get("serve.cache.hit", 0) - before.get("serve.cache.hit", 0)
    misses = (
        after.get("serve.cache.miss", 0) - before.get("serve.cache.miss", 0)
    )
    revalidated = (
        after.get("serve.cache.revalidated", 0)
        - before.get("serve.cache.revalidated", 0)
    )
    summary["server_cache"] = {
        "hits": hits,
        "misses": misses,
        "revalidated_304": revalidated,
        "hit_ratio": round(hits / (hits + misses), 4)
        if hits + misses else None,
    }
    text = json.dumps(summary, indent=2)
    print(text)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(text + "\n")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.trace:
        from repro import obs

        obs.configure_trace(args.trace)
    handlers = {"serve": _cmd_serve, "load": _cmd_load}
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
