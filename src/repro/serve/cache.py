"""Checkpoint-keyed response cache with ETags and a TTL bound.

The cache exploits the one freshness fact the ETL tier makes cheap to
check: a response can only change when ingest advances the store's
``checkpoint_height``. Every entry is therefore keyed on
``(canonical request, checkpoint)`` and the ETag embeds the checkpoint,
which yields exact invalidation:

* while the checkpoint stands still, repeats are served from memory and
  ``If-None-Match`` revalidations collapse to an empty ``304``;
* the moment ingest commits a new checkpoint, every cached entry and
  every ETag in the wild stops validating — no stale body can ever be
  served, and no explicit invalidation hook is needed.

The TTL is a memory bound, not a freshness mechanism (freshness is the
checkpoint's job): entries idle longer than ``ttl_s`` are dropped, and
an LRU cap bounds the entry count. Hits, misses and evictions land in
the :mod:`repro.obs` registry under ``serve.cache.*``.

>>> cache = ResponseCache(max_entries=2, ttl_s=60.0)
>>> entry = cache.put("/stats", 7, b"{}", "application/json")
>>> cache.get("/stats", 7) is not None
True
>>> cache.get("/stats", 8) is None   # checkpoint advanced: miss
True
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from time import monotonic
from typing import NamedTuple, Optional, Tuple

from repro import obs

__all__ = ["CacheEntry", "ResponseCache", "etag_for", "etag_matches"]


def etag_for(canonical: str, checkpoint: int) -> str:
    """The ETag for a canonical request at an ingest checkpoint.

    Weak by designation (``W/``): two bodies rendered at the same
    checkpoint are semantically identical even if a serializer changed
    byte order. The checkpoint rides in the tag, so advancing ingest
    invalidates every outstanding ETag at once — a conditional request
    after ingest always revalidates to a fresh body.
    """
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    return f'W/"ck{int(checkpoint)}-{digest}"'


def etag_matches(if_none_match: Optional[str], etag: str) -> bool:
    """RFC 7232 weak comparison of an ``If-None-Match`` header."""
    if not if_none_match:
        return False
    candidates = [value.strip() for value in if_none_match.split(",")]
    if "*" in candidates:
        return True
    normalized = {value[2:] if value.startswith("W/") else value
                  for value in candidates}
    bare = etag[2:] if etag.startswith("W/") else etag
    return bare in normalized


class CacheEntry(NamedTuple):
    """One cached response body and the metadata to serve it."""

    body: bytes
    content_type: str
    etag: str
    checkpoint: int
    stored_at: float


class ResponseCache:
    """LRU map of canonical request → rendered 200 response.

    Thread-safe; every serving worker reads and writes it. Only
    successful, full-body responses are cached — errors and 304s are
    cheap to recompute and would only pollute the working set.
    """

    def __init__(self, max_entries: int = 1024, ttl_s: float = 30.0) -> None:
        self.max_entries = int(max_entries)
        self.ttl_s = float(ttl_s)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def get(
        self, canonical: str, checkpoint: int, now: Optional[float] = None
    ) -> Optional[CacheEntry]:
        """The live entry for a request at ``checkpoint``, else ``None``.

        An entry stored under a different checkpoint is stale by
        definition and dropped on sight; an entry idle past the TTL is
        dropped to bound memory.
        """
        now = monotonic() if now is None else now
        with self._lock:
            entry = self._entries.get(canonical)
            if entry is None:
                obs.counter("serve.cache.miss")
                return None
            if entry.checkpoint != int(checkpoint):
                del self._entries[canonical]
                obs.counter("serve.cache.invalidated")
                obs.counter("serve.cache.miss")
                return None
            if now - entry.stored_at > self.ttl_s:
                del self._entries[canonical]
                obs.counter("serve.cache.expired")
                obs.counter("serve.cache.miss")
                return None
            self._entries.move_to_end(canonical)
            obs.counter("serve.cache.hit")
            return entry

    def put(
        self,
        canonical: str,
        checkpoint: int,
        body: bytes,
        content_type: str,
        now: Optional[float] = None,
    ) -> CacheEntry:
        """Store a rendered 200 response; returns the entry."""
        now = monotonic() if now is None else now
        entry = CacheEntry(
            body=body,
            content_type=content_type,
            etag=etag_for(canonical, checkpoint),
            checkpoint=int(checkpoint),
            stored_at=now,
        )
        with self._lock:
            self._entries[canonical] = entry
            self._entries.move_to_end(canonical)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                obs.counter("serve.cache.evicted")
            obs.gauge("serve.cache.entries", len(self._entries))
        return entry

    def stats(self) -> Tuple[int, int]:
        """``(entries, max_entries)`` — for the index route."""
        with self._lock:
            return len(self._entries), self.max_entries

    def clear(self) -> None:
        """Drop everything (tests)."""
        with self._lock:
            self._entries.clear()
