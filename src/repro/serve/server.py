"""The production serving tier: pooled workers over read-only replicas.

Where :mod:`repro.etl.server` is a browse-the-replica convenience, this
module is built for sustained concurrent traffic:

* **A fixed worker pool, not a thread per connection.** Accepted
  sockets go onto a bounded queue; N long-lived workers drain it. Each
  worker owns one read-only WAL connection
  (:class:`repro.etl.store.ReadReplicas`), so requests run genuinely in
  parallel with each other and with the ingest writer — there is no
  shared handle and no lock on the request path.
* **Checkpoint-keyed response caching.** Every cacheable response
  carries an ETag that embeds the store's ingest checkpoint
  (:mod:`repro.serve.cache`); repeats are served from memory and
  ``If-None-Match`` revalidations collapse to empty 304s — and all of
  it invalidates exactly when ingest commits a new checkpoint.
* **Snapshot-consistent reads.** A request renders inside one SQLite
  read transaction (:meth:`EtlStore.read_snapshot`), so a multi-query
  page can never mix rows from two ingest commits; the checkpoint in
  the ETag is exactly the checkpoint the body reflects.
* **Bounded backpressure.** When the queue is full the server sheds the
  connection immediately with ``503`` + ``Retry-After`` instead of
  letting latency (or thread count) grow without bound; ``drain()``
  stops accepting, finishes what is queued, and joins the workers —
  the CLI wires it to ``SIGTERM``.
* **Cursor pagination.** List endpoints accept an opaque ``cursor``
  token (:mod:`repro.serve.cursor`) and return ``next_cursor``,
  alongside the legacy ``offset`` form.

Routes match the legacy explorer (``/stats``, ``/hotspots``,
``/hotspot/<id>[/witnesses]``, ``/owner/<addr>``, ``/coverage/dots``,
``/search``, ``/metrics``) with two additions: list responses carry
``checkpoint`` and ``next_cursor``, and ``/healthz`` reports queue and
cache state. ``HEAD`` mirrors ``GET`` headers; other methods are 405.

Observability (:mod:`repro.obs`): ``serve.requests{route=,status=}``
counters, ``serve.latency_s{route=}`` histograms,
``serve.cache.{hit,miss,revalidated,...}`` counters, a
``serve.queue_depth`` gauge and a ``serve.shed`` counter — all visible
on ``GET /metrics``.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from time import perf_counter, sleep
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlencode, urlparse

from repro import obs
from repro.errors import EtlError
from repro.etl.server import owner_to_json, page_to_json
from repro.etl.store import MAX_PAGE_LIMIT, EtlStore, ReadReplicas
from repro.serve.cache import ResponseCache, etag_for, etag_matches
from repro.serve.cursor import CursorError, decode_cursor, encode_cursor

__all__ = ["ServeServer", "create_server", "default_workers", "serve"]

#: Poison pill that tells a worker thread to exit its loop.
_STOP = object()

_SHED_BODY = json.dumps(
    {"error": "server overloaded, retry shortly"}, separators=(",", ":")
).encode("utf-8")

_DRAIN_BODY = json.dumps(
    {"error": "server draining"}, separators=(",", ":")
).encode("utf-8")

_ROUTES = [
    "/stats",
    "/hotspots?limit=&cursor=|offset=",
    "/hotspot/<name-or-address>",
    "/hotspot/<name-or-address>/witnesses?limit=",
    "/owner/<address>",
    "/coverage/dots",
    "/search?q=&limit=",
    "/healthz",
    "/metrics?format=json|prometheus",
]

_KNOWN_HEADS = {"stats", "hotspots", "coverage", "search", "metrics",
                "healthz"}

#: Routes whose 200 bodies go through the checkpoint-keyed cache.
#: ``/metrics`` and ``/healthz`` describe the process, not the replica,
#: so caching them would be wrong twice over.
_UNCACHED = {"metrics", "healthz", "index", "unknown"}


def default_workers() -> int:
    """Worker-pool size when the caller does not pick one.

    Readers block on SQLite I/O and page rendering releases the GIL at
    the socket writes, so a small multiple of the cores keeps the pool
    busy without thrashing; clamped so a 1-core CI box still overlaps
    I/O and a 128-core box does not open 512 connections.
    """
    return max(4, min(32, 4 * (os.cpu_count() or 1)))


def _route_key(parts: List[str]) -> str:
    """Bounded metric label for a request path (shape, not resource)."""
    if not parts:
        return "index"
    head = parts[0]
    if head == "hotspot":
        return "hotspot/witnesses" if len(parts) > 2 else "hotspot"
    if head == "owner":
        return "owner"
    if head == "coverage":
        return "coverage/dots" if parts == ["coverage", "dots"] else "unknown"
    if head in _KNOWN_HEADS and len(parts) == 1:
        return head
    return "unknown"


def _canonical(parts: List[str], params: Dict[str, List[str]]) -> str:
    """One cache key per logical request: sorted, normalised query."""
    path = "/" + "/".join(parts)
    if not params:
        return path
    flat = sorted((k, v) for k, values in params.items() for v in values)
    return path + "?" + urlencode(flat)


class ServeHandler(BaseHTTPRequestHandler):
    """One connection's requests, executed on a pool worker's replica.

    With keep-alive on (the default) the handler speaks HTTP/1.1:
    every response carries ``Content-Length``, so the base class's
    request loop serves any number of requests over one connection,
    and an idle socket is reclaimed after ``keepalive_idle_s`` (the
    read timeout trips, ``close_connection`` is set, and the worker
    moves on). HTTP/1.0 clients are unaffected — their connections
    close per request exactly as before.
    """

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.0"

    def setup(self) -> None:
        server: "ServeServer" = self.server  # type: ignore[assignment]
        if server.keep_alive:
            self.protocol_version = "HTTP/1.1"
            self.timeout = server.keepalive_idle_s
        super().setup()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------

    def _send(
        self,
        body: bytes,
        content_type: str,
        status: int,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _reply(
        self,
        payload: Any,
        status: int = 200,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self._send(body, "application/json", status, extra_headers)

    def _error(self, message: str, status: int) -> None:
        self._reply({"error": message}, status=status)

    def _int_param(
        self,
        params: Dict[str, List[str]],
        name: str,
        default: int,
        max_value: Optional[int] = None,
    ) -> int:
        values = params.get(name)
        if not values:
            return default
        try:
            value = int(values[0])
        except ValueError:
            raise ValueError(
                f"query parameter {name!r} must be an integer, "
                f"got {values[0]!r}"
            ) from None
        if value < 0:
            raise ValueError(
                f"query parameter {name!r} must be >= 0, got {value}"
            )
        if max_value is not None and value > max_value:
            return max_value
        return value

    # -- dispatch ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch()

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        self._dispatch()

    def _method_not_allowed(self) -> None:
        started = perf_counter()
        self._reply(
            {"error": f"method {self.command} not allowed; this API is "
             "read-only", "allow": "GET, HEAD"},
            status=405,
            extra_headers={"Allow": "GET, HEAD"},
        )
        obs.counter("serve.requests", route="method", status=405)
        obs.observe(
            "serve.latency_s", perf_counter() - started, route="method"
        )

    do_POST = _method_not_allowed  # noqa: N815 - http.server API
    do_PUT = _method_not_allowed  # noqa: N815
    do_DELETE = _method_not_allowed  # noqa: N815
    do_PATCH = _method_not_allowed  # noqa: N815
    do_OPTIONS = _method_not_allowed  # noqa: N815

    def _dispatch(self) -> None:
        parsed = urlparse(self.path)
        parts = [unquote(p) for p in parsed.path.split("/") if p]
        # keep_blank_values: ``?cursor=`` must be rejected as a bad
        # cursor, not silently treated as "no cursor".
        params = parse_qs(parsed.query, keep_blank_values=True)
        server: "ServeServer" = self.server  # type: ignore[assignment]
        route = _route_key(parts)
        self._status = 200
        started = perf_counter()
        try:
            if route == "metrics":
                self._metrics(params)
            elif route == "healthz":
                self._healthz(server)
            elif route == "index":
                entries, cap = server.cache.stats()
                self._reply({
                    "service": "repro.serve",
                    "routes": _ROUTES,
                    "workers": server.workers,
                    "cache_entries": entries,
                    "cache_max_entries": cap,
                })
            elif (
                server.test_routes
                and parts
                and parts[0] == "debug"
            ):
                self._debug(parts, params)
            else:
                self._serve_route(server, route, parts, params)
        except CursorError as exc:
            self._error(str(exc), status=400)
        except (ValueError, KeyError) as exc:
            self._error(f"bad request: {exc}", status=400)
        finally:
            elapsed = perf_counter() - started
            obs.counter("serve.requests", route=route, status=self._status)
            obs.observe("serve.latency_s", elapsed, route=route)
            obs.trace_event(
                "serve.request", route=route, path=self.path,
                status=self._status, wall_s=round(elapsed, 6),
            )

    def _metrics(self, params: Dict[str, List[str]]) -> None:
        fmt = params.get("format", ["json"])[0].lower()
        if fmt in ("prometheus", "prom", "text"):
            self._send(
                obs.to_prometheus().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
                200,
            )
        elif fmt == "json":
            self._reply(obs.snapshot())
        else:
            raise ValueError(f"unknown metrics format {fmt!r}")

    def _healthz(self, server: "ServeServer") -> None:
        entries, cap = server.cache.stats()
        self._reply({
            "status": "draining" if server.draining else "ok",
            "workers": server.workers,
            "queue_depth": server.queue_size(),
            "queue_limit": server.queue_depth,
            "cache_entries": entries,
        })

    def _debug(
        self, parts: List[str], params: Dict[str, List[str]]
    ) -> None:
        """Test-only routes (``test_routes=True``): a sleeping handler
        lets the backpressure tests hold workers busy deterministically.
        """
        if parts == ["debug", "sleep"]:
            seconds = float(params.get("s", ["0.1"])[0])
            sleep(min(seconds, 5.0))
            self._reply({"slept_s": seconds})
        else:
            self._error(f"no such route: /{'/'.join(parts)}", status=404)

    # -- the cached, snapshot-consistent store routes ----------------------

    def _serve_route(
        self,
        server: "ServeServer",
        route: str,
        parts: List[str],
        params: Dict[str, List[str]],
    ) -> None:
        store = server.worker_store()
        canonical = _canonical(parts, params)
        with store.read_snapshot():
            # Everything below — checkpoint, conditional check, cache
            # lookup, render — sees one committed snapshot, so the ETag
            # names exactly the data the body was rendered from.
            checkpoint = store.checkpoint_height
            etag = etag_for(canonical, checkpoint)
            if route not in _UNCACHED:
                if etag_matches(self.headers.get("If-None-Match"), etag):
                    obs.counter("serve.cache.revalidated")
                    self._send(
                        b"", "application/json", 304,
                        {"ETag": etag, "X-Checkpoint": str(checkpoint)},
                    )
                    return
                entry = server.cache.get(canonical, checkpoint)
                if entry is not None:
                    self._send(
                        entry.body, entry.content_type, 200,
                        {"ETag": entry.etag,
                         "X-Checkpoint": str(entry.checkpoint)},
                    )
                    return
            payload, status = self._render(store, parts, params, checkpoint)
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        headers = {"X-Checkpoint": str(checkpoint)}
        if status == 200 and route not in _UNCACHED:
            server.cache.put(canonical, checkpoint, body, "application/json")
            headers["ETag"] = etag
        self._send(body, "application/json", status, headers)

    def _render(
        self,
        store: EtlStore,
        parts: List[str],
        params: Dict[str, List[str]],
        checkpoint: int,
    ) -> Tuple[Any, int]:
        """``(payload, status)`` for a store-backed route."""
        if parts == ["stats"]:
            return {
                "checkpoint_height": checkpoint,
                "tip_hash": store.get_meta("tip_hash"),
                "tables": store.counts(),
            }, 200
        if parts == ["hotspots"]:
            return self._render_hotspots(store, params, checkpoint)
        if parts[0] == "hotspot" and len(parts) in (2, 3):
            return self._render_hotspot(store, parts, params)
        if parts[0] == "owner" and len(parts) == 2:
            page = store.query_owner_page(parts[1])
            if page is None:
                return {"error": f"unknown wallet: {parts[1]}"}, 404
            return owner_to_json(page), 200
        if parts == ["coverage", "dots"]:
            return {
                "dots": [
                    {"token": token, "lat": lat, "lon": lon,
                     "hotspots": count}
                    for token, lat, lon, count in store.coverage_dot_rows()
                ],
            }, 200
        if parts == ["search"]:
            query = params.get("q", [""])[0]
            limit = self._int_param(params, "limit", 10, MAX_PAGE_LIMIT)
            matches = store.search_names(query, limit) if query else []
            return {
                "query": query,
                "matches": [
                    {"gateway": gateway, "name": name}
                    for gateway, name in matches
                ],
            }, 200
        return {"error": f"no such route: /{'/'.join(parts)}"}, 404

    def _render_hotspots(
        self,
        store: EtlStore,
        params: Dict[str, List[str]],
        checkpoint: int,
    ) -> Tuple[Any, int]:
        limit = self._int_param(params, "limit", 50, MAX_PAGE_LIMIT)
        cursor_token = params.get("cursor", [None])[0]
        if cursor_token is not None and "offset" in params:
            raise ValueError(
                "pass either cursor= or offset=, not both"
            )
        if cursor_token is not None or "offset" not in params:
            # Keyset paging is the default; an explicit offset= selects
            # the legacy compatibility form. A walk starts with no
            # cursor at all and follows next_cursor to the end.
            after = (
                0 if cursor_token is None
                else decode_cursor(cursor_token, "hotspots")
            )
            rows = store.hotspot_cursor_rows(after, limit)
            page, extra = rows[:limit], rows[limit:]
            if extra or (limit == 0 and page):
                # More rows exist past this page; resume after the last
                # row served (or from the same position for limit=0).
                resume = page[-1][0] if page else after
                next_cursor: Optional[str] = encode_cursor(
                    "hotspots", resume
                )
            else:
                next_cursor = None
            return {
                "total": store.hotspot_count,
                "checkpoint": checkpoint,
                "hotspots": [
                    {"gateway": gateway, "name": name, "location_token": tok}
                    for _, gateway, name, tok in page
                ],
                "next_cursor": next_cursor,
            }, 200
        offset = self._int_param(params, "offset", 0)
        rows = store.hotspot_page_rows(limit, offset)
        return {
            "total": store.hotspot_count,
            "checkpoint": checkpoint,
            "hotspots": [
                {"gateway": gateway, "name": name, "location_token": tok}
                for gateway, name, tok in rows
            ],
            "next_cursor": None,
        }, 200

    def _render_hotspot(
        self,
        store: EtlStore,
        parts: List[str],
        params: Dict[str, List[str]],
    ) -> Tuple[Any, int]:
        key = parts[1]
        gateway: Optional[str] = key if key.startswith("hs_") else (
            store.gateway_by_name(key.replace("-", " "))
        )
        page = (
            store.query_hotspot_page(gateway) if gateway is not None else None
        )
        if page is None:
            return {"error": f"unknown hotspot: {key}"}, 404
        if len(parts) == 2:
            return page_to_json(page), 200
        if parts[2] != "witnesses":
            return {"error": f"unknown hotspot subresource: {parts[2]}"}, 404
        limit = self._int_param(params, "limit", 100, MAX_PAGE_LIMIT)
        events = store.witness_events(
            page.gateway, direction="witnessing", limit=limit
        )
        return {
            "gateway": page.gateway,
            "name": page.name,
            "witnesses": [
                {
                    "block": e.block,
                    "counterparty": e.counterparty,
                    "counterparty_name": e.counterparty_name,
                    "rssi_dbm": e.rssi_dbm,
                    "distance_km": e.distance_km,
                    "valid": e.valid,
                }
                for e in events
            ],
        }, 200


class ServeServer(HTTPServer):
    """Bounded-queue, fixed-pool HTTP server over read replicas.

    The accept loop (``serve_forever``) only enqueues sockets; ``N``
    worker threads own the request lifecycle end to end. A full queue
    sheds with 503 + ``Retry-After`` at accept time — the cheapest
    possible rejection — so latency stays bounded at saturation instead
    of growing a thread pile.
    """

    allow_reuse_address = True
    request_queue_size = 512  # kernel listen(2) backlog

    def __init__(
        self,
        address: Tuple[str, int],
        db_path: str,
        workers: Optional[int] = None,
        queue_depth: int = 128,
        cache_entries: int = 1024,
        cache_ttl_s: float = 30.0,
        retry_after_s: int = 1,
        keep_alive: bool = True,
        keepalive_idle_s: float = 5.0,
        verbose: bool = False,
        test_routes: bool = False,
    ) -> None:
        super().__init__(address, ServeHandler)
        self.db_path = str(db_path)
        self.workers = int(workers) if workers else default_workers()
        self.queue_depth = int(queue_depth)
        self.retry_after_s = int(retry_after_s)
        # Persistent connections hold their worker between requests, so
        # the idle timeout is what bounds how long a quiet client can
        # park in the pool.
        self.keep_alive = bool(keep_alive)
        self.keepalive_idle_s = float(keepalive_idle_s)
        self.verbose = verbose
        self.test_routes = test_routes
        self.cache = ResponseCache(
            max_entries=cache_entries, ttl_s=cache_ttl_s
        )
        self.replicas = ReadReplicas(self.db_path)  # fails fast on a bad db
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.queue_depth)
        self._threads: List[threading.Thread] = []
        self._started = False
        self._accepting = False
        self._drained = threading.Event()
        self.draining = False

    # -- pool lifecycle ----------------------------------------------------

    def start_workers(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        obs.gauge("serve.workers", self.workers)

    def serve_forever(self, poll_interval: float = 0.25) -> None:
        self.start_workers()
        self._accepting = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._accepting = False

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                request, client_address = item
                obs.gauge("serve.queue_depth", self._queue.qsize())
                try:
                    self.finish_request(request, client_address)
                except Exception:  # noqa: BLE001 - peer may vanish anytime
                    self.handle_error(request, client_address)
                finally:
                    self.shutdown_request(request)
            finally:
                self._queue.task_done()

    def worker_store(self) -> EtlStore:
        """The calling worker thread's read-only replica."""
        return self.replicas.get()

    # -- accept path -------------------------------------------------------

    def process_request(self, request, client_address) -> None:
        """Enqueue, or shed with 503 when the queue is full."""
        if self.draining:
            self._refuse(request, _DRAIN_BODY)
            return
        try:
            self._queue.put_nowait((request, client_address))
        except queue.Full:
            obs.counter("serve.shed")
            obs.counter("serve.requests", route="shed", status=503)
            self._refuse(request, _SHED_BODY)
            return
        obs.gauge("serve.queue_depth", self._queue.qsize())

    def _refuse(self, request, body: bytes) -> None:
        """A minimal 503 written straight onto the socket.

        No handler object, no parsing of the request we are refusing —
        shedding must stay orders of magnitude cheaper than serving,
        or the queue limit would not protect anything.
        """
        try:
            request.sendall(
                b"HTTP/1.0 503 Service Unavailable\r\n"
                b"Content-Type: application/json\r\n"
                + f"Retry-After: {self.retry_after_s}\r\n".encode("ascii")
                + f"Content-Length: {len(body)}\r\n".encode("ascii")
                + b"Connection: close\r\n\r\n"
                + body
            )
        except OSError:
            pass  # the peer gave up first; nothing to refuse
        finally:
            self.shutdown_request(request)

    def handle_error(self, request, client_address) -> None:
        # Client disconnects are traffic, not stack traces.
        if self.verbose:
            super().handle_error(request, client_address)
        obs.counter("serve.handler_errors")

    # -- drain -------------------------------------------------------------

    def queue_size(self) -> int:
        """Requests currently waiting for a worker."""
        return self._queue.qsize()

    def drain(self, timeout_s: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, finish the queue, join.

        New connections get an immediate 503 while queued ones complete;
        the worker threads exit once the queue is empty. Safe to call
        from a signal-handling thread while ``serve_forever`` runs in
        another.
        """
        if self._drained.is_set():
            return
        self.draining = True
        obs.trace_event("serve.drain", queued=self.queue_size())
        if self._accepting:
            self.shutdown()  # stops the accept loop; waits until it did
        for _ in self._threads:
            self._queue.put(_STOP)
        deadline = perf_counter() + timeout_s
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - perf_counter()))
        self._drained.set()
        obs.trace_event("serve.drained")

    def server_close(self) -> None:
        self.drain()
        super().server_close()
        self.replicas.close_all()


def create_server(
    db_path: str,
    host: str = "127.0.0.1",
    port: int = 8700,
    workers: Optional[int] = None,
    queue_depth: int = 128,
    cache_entries: int = 1024,
    cache_ttl_s: float = 30.0,
    keep_alive: bool = True,
    keepalive_idle_s: float = 5.0,
    verbose: bool = False,
    test_routes: bool = False,
) -> ServeServer:
    """Build (but do not start) the serving tier.

    Pass ``port=0`` for an ephemeral port (``server.server_address``).
    Raises :class:`repro.errors.EtlError` if ``db_path`` is not a
    readable ETL store.
    """
    if not os.path.exists(db_path):
        raise EtlError(f"no ETL store at {db_path}")
    return ServeServer(
        (host, port),
        db_path,
        workers=workers,
        queue_depth=queue_depth,
        cache_entries=cache_entries,
        cache_ttl_s=cache_ttl_s,
        keep_alive=keep_alive,
        keepalive_idle_s=keepalive_idle_s,
        verbose=verbose,
        test_routes=test_routes,
    )


def serve(
    db_path: str,
    host: str = "127.0.0.1",
    port: int = 8700,
    workers: Optional[int] = None,
    queue_depth: int = 128,
    cache_entries: int = 1024,
    cache_ttl_s: float = 30.0,
    keep_alive: bool = True,
    verbose: bool = True,
) -> None:
    """Serve until SIGTERM/SIGINT, then drain gracefully.

    The accept loop runs on a helper thread; the calling thread waits
    for a shutdown signal so the signal handler only has to set an
    event — ``drain()`` (stop accepting → flush the queue → join the
    workers) runs outside handler context.
    """
    import signal

    server = create_server(
        db_path, host=host, port=port, workers=workers,
        queue_depth=queue_depth, cache_entries=cache_entries,
        cache_ttl_s=cache_ttl_s, keep_alive=keep_alive, verbose=verbose,
    )
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro.serve listening on http://{bound_host}:{bound_port}/ "
        f"({server.workers} workers, queue depth {server.queue_depth})"
    )
    obs.trace_event(
        "serve.start", host=bound_host, port=bound_port, db=db_path,
        workers=server.workers, queue_depth=server.queue_depth,
    )
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:  # noqa: ARG001
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # non-main thread / exotic platform
            pass
    accept_thread = threading.Thread(
        target=server.serve_forever, name="serve-accept", daemon=True
    )
    accept_thread.start()
    try:
        # Poll rather than block forever: CPython delivers signal
        # handlers on the main thread only between bytecodes, and an
        # untimed Event.wait() can park in an uninterruptible acquire.
        while not stop.wait(timeout=0.5):
            pass
        print("repro.serve draining…")
        server.drain()
        accept_thread.join(timeout=5)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        obs.trace_event("serve.stop", host=bound_host, port=bound_port)
