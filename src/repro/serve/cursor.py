"""Opaque keyset-pagination cursors for the serving tier.

A cursor names a position in an indexed walk (``rowid`` of the last row
the client saw) without exposing the implementation: the token is
base64url over a tiny JSON payload plus a truncated SHA-256 integrity
tag. The tag is not a secret — it exists so a truncated, hand-edited or
version-skewed token is rejected as a clean ``400 bad cursor`` instead
of turning into a surprising SQL predicate or a 500.

Keyset position beats ``OFFSET`` in two ways the serving tier needs:

* a page at any depth costs one indexed range scan, not a scan-and-skip
  of everything before it;
* a walk is stable under concurrent ingest — rows the walk has passed
  never shift underneath it, so no duplicates and no gaps (the ledger
  only appends; rows land in insertion order).

>>> token = encode_cursor("hotspots", 42)
>>> decode_cursor(token, "hotspots")
42
>>> decode_cursor(token[:-2] + "zz", "hotspots")
Traceback (most recent call last):
    ...
repro.serve.cursor.CursorError: bad cursor: integrity check failed
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json

__all__ = ["CursorError", "decode_cursor", "encode_cursor"]

#: Version tag baked into every token; bump on layout changes so old
#: cursors fail closed as 400s instead of decoding to nonsense.
_VERSION = 1

#: Domain-separation prefix for the integrity tag (not a secret).
_TAG_KEY = b"repro.serve.cursor.v1:"

_TAG_LEN = 10  # hex chars of SHA-256 — plenty against accidents


class CursorError(ValueError):
    """A cursor token that does not decode to a valid position."""


def _tag(payload: bytes) -> str:
    return hashlib.sha256(_TAG_KEY + payload).hexdigest()[:_TAG_LEN]


def encode_cursor(kind: str, after: int) -> str:
    """An opaque resume token for the row position ``after``.

    ``kind`` namespaces the walk (e.g. ``"hotspots"``), so a token from
    one endpoint can never be replayed against another.
    """
    payload = json.dumps(
        {"v": _VERSION, "k": kind, "a": int(after)},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("ascii")
    raw = payload + b"." + _tag(payload).encode("ascii")
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def decode_cursor(token: str, kind: str) -> int:
    """The row position a token resumes from.

    Raises:
        CursorError: on anything that is not a well-formed, untampered
            token of the right kind — the HTTP layer maps this to 400.
    """
    if not token or len(token) > 256:
        raise CursorError("bad cursor: empty or oversized token")
    try:
        raw = base64.urlsafe_b64decode(token + "=" * (-len(token) % 4))
    except (binascii.Error, ValueError) as exc:
        raise CursorError(f"bad cursor: {exc}") from None
    payload, sep, tag = raw.rpartition(b".")
    if not sep or _tag(payload) != tag.decode("ascii", "replace"):
        raise CursorError("bad cursor: integrity check failed")
    try:
        fields = json.loads(payload)
    except ValueError:
        raise CursorError("bad cursor: undecodable payload") from None
    if not isinstance(fields, dict) or fields.get("v") != _VERSION:
        raise CursorError("bad cursor: unknown version")
    if fields.get("k") != kind:
        raise CursorError(
            f"bad cursor: token is for {fields.get('k')!r}, not {kind!r}"
        )
    after = fields.get("a")
    if not isinstance(after, int) or isinstance(after, bool) or after < 0:
        raise CursorError("bad cursor: invalid position")
    return after
