"""repro.serve — the production serving tier over the ETL replica.

Layers a traffic-worthy HTTP front end on :mod:`repro.etl`:

* :mod:`repro.serve.server` — a bounded-queue, fixed-pool server where
  each worker owns a read-only WAL connection; sheds with 503 +
  ``Retry-After`` at saturation and drains gracefully on SIGTERM.
* :mod:`repro.serve.cache` — ETag/TTL response caching keyed on the
  ingest checkpoint, so cached bodies are never stale relative to the
  replica and ``If-None-Match`` revalidations collapse to 304s.
* :mod:`repro.serve.cursor` — opaque keyset-pagination tokens for the
  list endpoints (``next_cursor``), stable under concurrent ingest.
* :mod:`repro.serve.loadgen` — a zipf/bursty synthetic traffic
  generator (one selectors loop, thousands of simulated clients) that
  feeds ``benchmarks/bench_serve.py`` and ``BENCH_serve.json``.

CLI: ``python -m repro.serve serve|load`` (see :mod:`repro.serve.cli`).
"""

from repro.serve.cache import CacheEntry, ResponseCache, etag_for
from repro.serve.cursor import CursorError, decode_cursor, encode_cursor
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.server import ServeServer, create_server, serve

__all__ = [
    "CacheEntry",
    "CursorError",
    "LoadReport",
    "ResponseCache",
    "ServeServer",
    "create_server",
    "decode_cursor",
    "encode_cursor",
    "etag_for",
    "run_load",
    "serve",
]
