"""Synthetic explorer traffic: zipf hotspots, bursty clients, one loop.

Drives an HTTP explorer (legacy :mod:`repro.etl.server` or the
:mod:`repro.serve` tier — the generator does not care) with the
workload shape the paper's ecosystem actually sees: a long-tailed
population of analysts and dashboards hammering a shared replica, where

* **popularity is zipf-distributed** — a few hotspot pages and the
  ``/stats`` head take most of the traffic while the tail stays warm
  enough to matter (``zipf_s`` sets the exponent);
* **arrivals are bursty, not fluid** — each simulated client is a
  Poisson on/off source: exponentially-distributed busy periods of
  back-to-back requests separated by exponential idle gaps, so
  instantaneous concurrency swings well above the mean;
* **clients revalidate** — a client remembers the last ``ETag`` per
  path and replays it as ``If-None-Match``, the way a browser or
  caching proxy would, which is what gives the checkpoint-keyed cache
  its 304 fast path.

Implementation: one thread, one ``selectors`` event loop, thousands of
non-blocking sockets — a thread per simulated client would cap the
generator far below the server under test. In the default HTTP/1.0
mode every request opens a fresh connection and measures
connect-to-close latency, which is what a cold user sees. With
``keep_alive=True`` each client speaks HTTP/1.1 and reuses its
connection for every request in an on-burst (responses framed by
``Content-Length``), tearing it down when the burst ends — the way a
browser actually behaves — and a request sent on a connection the
server idled out is retried once on a fresh one.

``run_load`` returns a :class:`LoadReport`; the CLI (``python -m
repro.serve load``) and ``benchmarks/bench_serve.py`` both build on it.
"""

from __future__ import annotations

import bisect
import errno
import heapq
import json
import random
import selectors
import socket
import struct
import urllib.request
from dataclasses import dataclass, field
from time import monotonic
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlparse

__all__ = [
    "LoadReport",
    "ZipfPaths",
    "discover_paths",
    "fetch_metrics",
    "percentile",
    "run_load",
]


def percentile(sorted_values: List[float], fraction: float) -> float:
    """The ``fraction`` percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


class ZipfPaths:
    """Zipf-weighted sampling over a ranked list of request paths.

    Rank ``r`` (1-based) carries weight ``1 / r**s``. Sampling is a
    binary search over the cumulative weights — O(log n) per draw, no
    numpy needed in the serving tier.
    """

    def __init__(self, paths: List[str], s: float = 1.1) -> None:
        if not paths:
            raise ValueError("need at least one path to sample")
        self.paths = list(paths)
        self.s = float(s)
        self._cumulative: List[float] = []
        total = 0.0
        for rank in range(1, len(self.paths) + 1):
            total += 1.0 / rank ** self.s
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> str:
        point = rng.random() * self._total
        return self.paths[bisect.bisect_left(self._cumulative, point)]


def discover_paths(
    base_url: str, max_hotspots: int = 200, timeout: float = 10.0
) -> List[str]:
    """A ranked path population discovered from the server itself.

    Head of the ranking: the cheap, universally-hit routes; body: one
    page per hotspot (the zipf tail). Works against either tier.
    """
    with urllib.request.urlopen(
        f"{base_url}/hotspots?limit={max_hotspots}", timeout=timeout
    ) as response:
        listing = json.loads(response.read().decode("utf-8"))
    paths = ["/stats", "/hotspots?limit=50"]
    paths.extend(
        "/hotspot/" + h["gateway"] for h in listing["hotspots"]
    )
    paths.append("/coverage/dots")
    return paths


def fetch_metrics(base_url: str, timeout: float = 10.0) -> Dict:
    """The server's ``/metrics`` JSON snapshot (empty dict on failure)."""
    try:
        with urllib.request.urlopen(
            f"{base_url}/metrics", timeout=timeout
        ) as response:
            return json.loads(response.read().decode("utf-8"))
    except (OSError, ValueError):
        return {}


@dataclass
class LoadReport:
    """What one load run measured, ready for ``BENCH_serve.json``."""

    clients: int
    duration_s: float
    requests: int = 0
    status_200: int = 0
    status_304: int = 0
    status_503: int = 0
    status_other: int = 0
    errors: int = 0
    bytes_read: int = 0
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    def summary(self) -> Dict:
        """The JSON document the bench and CLI emit."""
        latencies = sorted(self.latencies_ms)
        return {
            "clients": self.clients,
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "requests_per_s": round(self.requests_per_s, 1),
            "status": {
                "200": self.status_200,
                "304": self.status_304,
                "503_shed": self.status_503,
                "other": self.status_other,
                "errors": self.errors,
            },
            "latency_ms": {
                "p50": round(percentile(latencies, 0.50), 3),
                "p90": round(percentile(latencies, 0.90), 3),
                "p99": round(percentile(latencies, 0.99), 3),
                "max": round(latencies[-1], 3) if latencies else 0.0,
                "mean": round(
                    sum(latencies) / len(latencies), 3
                ) if latencies else 0.0,
            },
        }


# Client connection states.
_CONNECTING, _SENDING, _READING = 0, 1, 2


class _Client:
    """One simulated user: a Poisson on/off request source."""

    __slots__ = (
        "index", "rng", "etags", "state", "sock", "sendbuf", "recvbuf",
        "started", "path", "on_until", "reused",
    )

    def __init__(self, index: int, seed: int) -> None:
        self.index = index
        self.rng = random.Random((seed << 20) ^ index)
        self.etags: Dict[str, str] = {}
        self.state = -1
        self.sock: Optional[socket.socket] = None
        self.sendbuf = b""
        self.recvbuf = b""
        self.started = 0.0
        self.path = ""
        self.on_until = 0.0
        #: This request went out on a reused keep-alive connection (so
        #: a dead socket means "idled out", retried fresh, not an error).
        self.reused = False


class _Loop:
    """The selectors event loop driving every client concurrently."""

    def __init__(
        self,
        host: str,
        port: int,
        paths: ZipfPaths,
        clients: int,
        duration_s: float,
        seed: int,
        mean_on_s: float,
        mean_off_s: float,
        revalidate: bool,
        rst_close: bool,
        keep_alive: bool,
    ) -> None:
        self.host = host
        self.port = port
        self.paths = paths
        self.duration_s = duration_s
        self.revalidate = revalidate
        self.rst_close = rst_close
        self.keep_alive = keep_alive
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.selector = selectors.DefaultSelector()
        self.report = LoadReport(clients=clients, duration_s=duration_s)
        self.sleepers: List[Tuple[float, int]] = []  # (wake_at, index)
        self.clients = [_Client(i, seed) for i in range(clients)]

    # -- client state machine ---------------------------------------------

    def _schedule(self, client: _Client, now: float) -> None:
        """Move a client into its next on-period (maybe after an off)."""
        if now >= client.on_until:
            # Burst over: draw an off gap, then a fresh on-period. A
            # keep-alive connection is torn down here — holding a
            # server worker through the idle gap would model a leak,
            # not a browser.
            self._teardown(client)
            off = client.rng.expovariate(1.0 / self.mean_off_s)
            client.on_until = now + off + client.rng.expovariate(
                1.0 / self.mean_on_s
            )
            heapq.heappush(self.sleepers, (now + off, client.index))
        else:
            self._start_request(client, now)

    def _start_request(self, client: _Client, now: float) -> None:
        client.path = self.paths.sample(client.rng)
        client.started = now
        self._send_request(client, now)

    def _send_request(self, client: _Client, now: float) -> None:
        client.recvbuf = b""
        version = "HTTP/1.1" if self.keep_alive else "HTTP/1.0"
        headers = f"GET {client.path} {version}\r\nHost: {self.host}\r\n"
        etag = self.revalidate and client.etags.get(client.path)
        if etag:
            headers += f"If-None-Match: {etag}\r\n"
        client.sendbuf = (headers + "\r\n").encode("ascii")
        if self.keep_alive and client.sock is not None:
            # Reuse the burst's connection; a send/read on a socket the
            # server already idled out is retried once on a fresh one.
            client.reused = True
            client.state = _SENDING
            self.selector.register(
                client.sock, selectors.EVENT_WRITE, client
            )
            return
        client.reused = False
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        client.sock = sock
        code = sock.connect_ex((self.host, self.port))
        if code not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
            self._finish_error(client, now)
            return
        client.state = _CONNECTING
        self.selector.register(sock, selectors.EVENT_WRITE, client)

    def _retry_fresh(self, client: _Client, now: float) -> None:
        """The reused connection was dead (server idle timeout): replay
        this request once on a new socket, keeping the original start
        time so the latency sample stays honest."""
        self._teardown(client)
        self._send_request(client, now)

    def _on_writable(self, client: _Client, now: float) -> None:
        sock = client.sock
        try:
            if client.state == _CONNECTING:
                error = sock.getsockopt(
                    socket.SOL_SOCKET, socket.SO_ERROR
                )
                if error:
                    self._finish_error(client, now)
                    return
                client.state = _SENDING
            sent = sock.send(client.sendbuf)
            client.sendbuf = client.sendbuf[sent:]
            if not client.sendbuf:
                client.state = _READING
                self.selector.modify(sock, selectors.EVENT_READ, client)
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            if client.reused:
                self._retry_fresh(client, now)
            else:
                self._finish_error(client, now)

    def _on_readable(self, client: _Client, now: float) -> None:
        sock = client.sock
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:  # EOF
                    if not self.keep_alive:
                        # HTTP/1.0: close *is* the framing → complete.
                        self._finish_response(client, now)
                    elif client.reused and not client.recvbuf:
                        self._retry_fresh(client, now)
                    elif client.recvbuf:
                        # Server closed after the response (e.g. a shed
                        # 503 or Connection: close).
                        self._finish_response(client, now)
                    else:
                        self._finish_error(client, now)
                    return
                client.recvbuf += chunk
                if self.keep_alive and self._maybe_complete(client, now):
                    return
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            if client.reused and not client.recvbuf:
                self._retry_fresh(client, now)
            else:
                self._finish_error(client, now)

    def _maybe_complete(self, client: _Client, now: float) -> bool:
        """Content-Length framing for keep-alive mode: finish as soon
        as the full response is buffered, leaving the connection open
        unless the server asked to close it."""
        raw = client.recvbuf
        head_end = raw.find(b"\r\n\r\n")
        if head_end < 0:
            return False
        length = _content_length(raw, head_end)
        if length is None or len(raw) < head_end + 4 + length:
            return False
        keep = b"\r\nconnection: close" not in raw[:head_end].lower()
        self._finish_response(client, now, keep=keep)
        return True

    # -- completion --------------------------------------------------------

    def _teardown(self, client: _Client) -> None:
        if client.sock is None:
            return
        try:
            self.selector.unregister(client.sock)
        except (KeyError, ValueError):
            pass
        try:
            if self.rst_close:
                # RST on close: no TIME_WAIT piles up on either side —
                # a load generator recycling thousands of ephemeral
                # ports per second needs this to stay honest.
                client.sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            client.sock.close()
        except OSError:
            pass
        client.sock = None

    def _finish_error(self, client: _Client, now: float) -> None:
        self._teardown(client)
        self.report.errors += 1
        # Back off briefly instead of re-dialling in a tight loop — a
        # refused or reset connection repeated at CPU speed would turn
        # the generator into a connect flood, not a workload.
        heapq.heappush(self.sleepers, (now + 0.05, client.index))

    def _finish_response(
        self, client: _Client, now: float, keep: bool = False
    ) -> None:
        if keep and client.sock is not None:
            # Keep-alive: the connection outlives the request — just
            # quiesce it until the next request in this burst.
            try:
                self.selector.unregister(client.sock)
            except (KeyError, ValueError):
                pass
            client.state = -1
        else:
            self._teardown(client)
        report = self.report
        raw = client.recvbuf
        client.recvbuf = b""
        report.bytes_read += len(raw)
        status, etag = _parse_response(raw)
        if status is None:
            report.errors += 1
        else:
            report.requests += 1
            report.latencies_ms.append((now - client.started) * 1000.0)
            if status == 200:
                report.status_200 += 1
            elif status == 304:
                report.status_304 += 1
            elif status == 503:
                report.status_503 += 1
            else:
                report.status_other += 1
            if etag:
                client.etags[client.path] = etag
        self._schedule(client, now)

    # -- the loop ----------------------------------------------------------

    def run(self) -> LoadReport:
        start = monotonic()
        deadline = start + self.duration_s
        # Stagger the first on-periods across one mean off-gap so the
        # run does not begin with a synchronized thundering herd.
        for client in self.clients:
            first = client.rng.uniform(0, self.mean_off_s)
            client.on_until = start + first + client.rng.expovariate(
                1.0 / self.mean_on_s
            )
            heapq.heappush(self.sleepers, (start + first, client.index))
        now = start
        while now < deadline:
            timeout = deadline - now
            if self.sleepers:
                timeout = min(timeout, max(0.0, self.sleepers[0][0] - now))
            events = self.selector.select(timeout=min(timeout, 0.25))
            now = monotonic()
            for key, mask in events:
                client: _Client = key.data
                if mask & selectors.EVENT_WRITE:
                    self._on_writable(client, now)
                elif mask & selectors.EVENT_READ:
                    self._on_readable(client, now)
            while self.sleepers and self.sleepers[0][0] <= now:
                _, index = heapq.heappop(self.sleepers)
                if now >= deadline:
                    break
                self._start_request(self.clients[index], now)
        # Give in-flight requests a short grace period to finish, so
        # the tail of the measurement is not all artificial errors.
        grace = monotonic() + 0.5
        while monotonic() < grace and any(
            c.sock is not None for c in self.clients
        ):
            for key, mask in self.selector.select(timeout=0.05):
                client = key.data
                if mask & selectors.EVENT_WRITE:
                    self._on_writable(client, monotonic())
                elif mask & selectors.EVENT_READ:
                    self._on_readable(client, monotonic())
        for client in self.clients:
            self._teardown(client)
        self.selector.close()
        self.report.duration_s = monotonic() - start
        return self.report


def _content_length(raw: bytes, head_end: int) -> Optional[int]:
    """``Content-Length`` from a buffered response head, or ``None``."""
    head = raw[:head_end].lower()
    marker = head.find(b"\r\ncontent-length:")
    if marker < 0:
        return None
    line_end = head.find(b"\r\n", marker + 2)
    if line_end < 0:
        line_end = head_end
    try:
        return int(head[marker + 17:line_end].strip())
    except ValueError:
        return None


def _parse_response(raw: bytes) -> Tuple[Optional[int], Optional[str]]:
    """``(status, etag)`` from a raw HTTP response, cheaply."""
    if not raw.startswith(b"HTTP/"):
        return None, None
    try:
        status = int(raw[9:12])
    except ValueError:
        return None, None
    etag: Optional[str] = None
    head_end = raw.find(b"\r\n\r\n")
    if head_end > 0:
        marker = raw.find(b"\r\nETag: ", 0, head_end)
        if marker >= 0:
            line_end = raw.find(b"\r\n", marker + 2, head_end + 2)
            etag = raw[marker + 8:line_end].decode("ascii", "replace")
    return status, etag


def run_load(
    base_url: str,
    clients: int = 256,
    duration_s: float = 5.0,
    seed: int = 2021,
    zipf_s: float = 1.1,
    mean_on_s: float = 0.5,
    mean_off_s: float = 0.5,
    paths: Optional[List[str]] = None,
    revalidate: bool = True,
    rst_close: bool = True,
    keep_alive: bool = False,
) -> LoadReport:
    """Drive a server with zipf/bursty traffic; returns the report.

    Args:
        base_url: e.g. ``http://127.0.0.1:8700`` (either tier).
        clients: simulated users (each a Poisson on/off source). The
            event loop handles thousands; mind ``ulimit -n`` past ~1k.
        duration_s: measurement window.
        zipf_s: popularity exponent (higher → hotter hotspots).
        mean_on_s / mean_off_s: mean busy/idle period lengths.
        paths: optional explicit ranked path list; discovered from the
            server when omitted.
        revalidate: replay remembered ETags as ``If-None-Match``.
        rst_close: close sockets with RST to avoid TIME_WAIT pileup.
        keep_alive: speak HTTP/1.1 and reuse each client's connection
            for the whole on-burst (requires a server that frames with
            ``Content-Length``, which both tiers do).
    """
    parsed = urlparse(base_url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or (443 if parsed.scheme == "https" else 80)
    ranked = ZipfPaths(paths or discover_paths(base_url), s=zipf_s)
    loop = _Loop(
        host, port, ranked,
        clients=clients, duration_s=duration_s, seed=seed,
        mean_on_s=mean_on_s, mean_off_s=mean_off_s,
        revalidate=revalidate, rst_close=rst_close,
        keep_alive=keep_alive,
    )
    return loop.run()
