"""Declarative scenario specs: validation, canonicalisation, digests.

A *spec* is a plain dict (parsed from a JSON or TOML file, or built in
code) of overrides on a named base scenario::

    {
        "name": "boomtown",
        "description": "twice the fleet, faster batches",
        "base": "paper",
        "target_hotspots": 8800,
        "growth": {"batch_growth": 1.5}
    }

Overrides may be flat (any :class:`ScenarioConfig` field name at the
top level) or grouped under the section the field belongs to —
``growth.batch_growth`` and ``batch_growth`` are the same knob, and a
field may appear only once. Everything else is rejected with a
field-level :class:`~repro.errors.ScenarioSpecError`: unknown keys
(with a did-you-mean suggestion), keys under the wrong section, type
mismatches, and — after the base is applied — constraint violations via
:func:`repro.simulation.scenario.validate_config` in strict mode.

Every accepted spec canonicalises to a deterministic digest:
:func:`spec_digest` hashes the *fully resolved* config (sorted-key
JSON over every knob, seed included), so two specs that resolve to the
same history share one digest — and one persistent cache entry —
regardless of file format, key order, or how the overrides were
spelled. This digest is the scenario-cache entry key
(:mod:`repro.experiments.context`) and the worker-rehydration contract
(:mod:`repro.parallel`).
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
from typing import Any, Dict, Mapping, Tuple

from repro.errors import ScenarioSpecError
from repro.simulation.scenario import ScenarioConfig

__all__ = [
    "FIELD_GROUPS",
    "RESERVED_KEYS",
    "apply_overrides",
    "canonical_config_dict",
    "flatten_overrides",
    "spec_digest",
]

#: Keys a spec may carry besides overrides. ``base`` names the scenario
#: the overrides apply to; ``name``/``description`` are documentation
#: and never enter the digest.
RESERVED_KEYS = frozenset({"base", "name", "description"})

#: Section -> fields, mirroring the comment blocks in ``scenario.py``.
#: Fields not listed here (seed, n_days, target_hotspots,
#: real_network_size) are top-level only.
FIELD_GROUPS: Dict[str, Tuple[str, ...]] = {
    "timeline": (
        "dc_payments_live_day",
        "hip10_day",
        "spam_decay_end_day",
        "international_launch_day",
        "resale_start_day",
        "march_snapshot_day",
    ),
    "growth": (
        "online_fraction",
        "batch_interval_days",
        "batch_growth",
        "international_share_final",
    ),
    "ownership": (
        "new_owner_probability",
        "attachment_alpha",
        "organic_owner_cap",
        "whale_share_of_late_supply",
        "whale_start_day",
        "mining_pools",
        "commercial_fleets",
    ),
    "moves": (
        "never_move_fraction",
        "extra_move_probability",
        "frequent_mover_moves",
        "null_island_initial_probability",
        "null_island_move_probability",
        "long_move_fraction",
        "long_move_us_export_fraction",
    ),
    "resale": (
        "resale_fraction",
        "zero_dc_transfer_fraction",
        "repeat_transfer_probability",
    ),
    "poc": (
        "challenges_per_hotspot_day",
        "max_witness_candidates",
        "silent_mover_fraction",
        "rssi_liar_fraction",
        "gossip_cliques",
        "high_gain_fraction",
    ),
    "traffic": (
        "final_packets_per_second",
        "console_channel_share",
        "console_close_blocks",
        "arbitrage_peak_multiplier",
        "third_party_ouis",
    ),
    "backhaul": ("tail_isps", "validator_fraction"),
}

#: Tuple-of-tuples fields and the (element) shape each row must have.
_TUPLE_SHAPES: Dict[str, Tuple[type, type]] = {
    "mining_pools": (str, int),      # (city, fleet size)
    "commercial_fleets": (str, int),  # (city, fleet size)
    "gossip_cliques": (int, str),     # (members, home city)
}

_DEFAULTS = ScenarioConfig()
_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(ScenarioConfig)
)
_FIELD_GROUP: Dict[str, str] = {
    field: group for group, fields in FIELD_GROUPS.items() for field in fields
}
_TOP_LEVEL_ONLY = frozenset(
    name for name in _FIELDS if name not in _FIELD_GROUP
)

# Import-time drift guard: a ScenarioConfig field added without a group
# assignment (or a group listing a dropped field) fails loudly here,
# not silently at the first user spec.
_unknown_grouped = set(_FIELD_GROUP) - set(_FIELDS)
if _unknown_grouped:  # pragma: no cover - drift guard
    raise RuntimeError(
        f"FIELD_GROUPS names non-config fields: {sorted(_unknown_grouped)}"
    )
if _TOP_LEVEL_ONLY - {"seed", "n_days", "target_hotspots",
                      "real_network_size"}:  # pragma: no cover - drift guard
    raise RuntimeError(
        "new ScenarioConfig fields must be assigned to a FIELD_GROUPS "
        f"section: {sorted(_TOP_LEVEL_ONLY)}"
    )


def canonical_config_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """The fully-resolved config as a JSON-ready dict (tuples -> lists)."""
    return dataclasses.asdict(config)


def spec_digest(config: ScenarioConfig) -> str:
    """Canonical digest of a resolved scenario: SHA-256 over the
    sorted-key JSON of every knob (seed included).

    This is the single definition of scenario identity: the persistent
    cache entry key, the checkpoint compatibility stamp, and the value
    ``--list-scenarios`` prints all derive from it.
    """
    payload = json.dumps(
        canonical_config_dict(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _suggest(key: str) -> str:
    matches = difflib.get_close_matches(
        key, list(_FIELDS) + list(FIELD_GROUPS), n=1
    )
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def _check_value(path: str, field: str, value: Any, source: str) -> Any:
    """Type-check one override; returns the canonical-typed value."""
    default = getattr(_DEFAULTS, field)
    if field in _TUPLE_SHAPES:
        return _check_rows(path, field, value, source)
    if isinstance(value, bool):
        raise ScenarioSpecError(
            f"{source}: field {path!r} expects "
            f"{type(default).__name__}, got bool"
        )
    if isinstance(default, int):
        if not isinstance(value, int):
            raise ScenarioSpecError(
                f"{source}: field {path!r} expects int, "
                f"got {type(value).__name__} ({value!r})"
            )
        return value
    if isinstance(default, float):
        if not isinstance(value, (int, float)):
            raise ScenarioSpecError(
                f"{source}: field {path!r} expects float, "
                f"got {type(value).__name__} ({value!r})"
            )
        return float(value)
    raise ScenarioSpecError(  # pragma: no cover - no such fields today
        f"{source}: field {path!r} cannot be overridden from a spec"
    )


def _check_rows(path: str, field: str, value: Any, source: str) -> tuple:
    """Validate a tuple-of-tuples field ([[a, b], ...]) row by row."""
    first_t, second_t = _TUPLE_SHAPES[field]
    shape = f"[{first_t.__name__}, {second_t.__name__}]"
    if isinstance(value, (str, bytes)) or not isinstance(
        value, (list, tuple)
    ):
        raise ScenarioSpecError(
            f"{source}: field {path!r} expects a list of {shape} rows, "
            f"got {type(value).__name__}"
        )
    rows = []
    for index, row in enumerate(value):
        ok = (
            isinstance(row, (list, tuple))
            and len(row) == 2
            and isinstance(row[0], first_t)
            and isinstance(row[1], second_t)
            and not isinstance(row[0], bool)
            and not isinstance(row[1], bool)
        )
        if not ok:
            raise ScenarioSpecError(
                f"{source}: field {path!r} row {index} must be {shape}, "
                f"got {row!r}"
            )
        rows.append((row[0], row[1]))
    return tuple(rows)


def flatten_overrides(
    spec: Mapping[str, Any], source: str = "<spec>"
) -> Dict[str, Any]:
    """Validated ``field -> value`` overrides from a raw spec mapping.

    Accepts flat field names and section tables; rejects everything
    else with a :class:`ScenarioSpecError` naming the offending key.
    """
    if not isinstance(spec, Mapping):
        raise ScenarioSpecError(
            f"{source}: a scenario spec must be a table/object, "
            f"got {type(spec).__name__}"
        )
    overrides: Dict[str, Any] = {}
    origin: Dict[str, str] = {}

    def _put(path: str, field: str, value: Any) -> None:
        if field in overrides:
            raise ScenarioSpecError(
                f"{source}: field {path!r} already set as "
                f"{origin[field]!r}; each knob may appear once"
            )
        overrides[field] = _check_value(path, field, value, source)
        origin[field] = path

    for key, value in spec.items():
        if key in RESERVED_KEYS:
            continue
        if key in FIELD_GROUPS:
            if not isinstance(value, Mapping):
                raise ScenarioSpecError(
                    f"{source}: section {key!r} must be a table of "
                    f"fields, got {type(value).__name__}"
                )
            for sub, sub_value in value.items():
                path = f"{key}.{sub}"
                if sub not in _FIELD_GROUP and sub not in _TOP_LEVEL_ONLY:
                    raise ScenarioSpecError(
                        f"{source}: unknown field {path!r}{_suggest(sub)}"
                    )
                home = _FIELD_GROUP.get(sub)
                if home != key:
                    belongs = (
                        f"it lives in section {home!r}"
                        if home
                        else "it is top-level only"
                    )
                    raise ScenarioSpecError(
                        f"{source}: field {path!r} does not belong to "
                        f"section {key!r} ({belongs})"
                    )
                _put(path, sub, sub_value)
        elif key in _FIELDS:
            _put(key, key, value)
        else:
            raise ScenarioSpecError(
                f"{source}: unknown key {key!r}{_suggest(key)}"
            )
    return overrides


def apply_overrides(
    base: ScenarioConfig, spec: Mapping[str, Any], source: str = "<spec>"
) -> ScenarioConfig:
    """Resolve a spec against its base config, fully validated.

    Runs :func:`repro.simulation.scenario.validate_config` in strict
    mode on the result, so out-of-range knobs and inconsistent
    milestone days are rejected here — at load time, with the source
    named — instead of failing deep inside the engine.
    """
    from repro.simulation.scenario import validate_config

    overrides = flatten_overrides(spec, source)
    try:
        config = dataclasses.replace(base, **overrides)
        validate_config(config, strict=True)
    except ScenarioSpecError:
        raise
    except Exception as exc:
        raise ScenarioSpecError(f"{source}: {exc}") from exc
    return config
