"""Declarative scenario specs (ROADMAP item 5, FederNet-style).

A scenario is *data*: a small JSON (or, on Python 3.11+, TOML) file of
overrides on a named base, resolved through one validated path into
the frozen :class:`~repro.simulation.scenario.ScenarioConfig` the
engine runs. The four built-in scenarios are themselves shipped spec
files (``repro/scenarios/builtin/``); ``--scenario`` everywhere takes
either a registry name or a path to a user spec file, and every
accepted spec canonicalises to a deterministic digest that keys the
persistent scenario cache and the parallel workers' rehydration
contract.

Quickstart::

    from repro.scenarios import resolve

    resolved = resolve("paper", seed=2021)        # registry name
    resolved = resolve("my-whatif.json")          # user spec file
    engine = SimulationEngine(resolved.config)

See DESIGN.md §15 for the spec format and digest derivation.
"""

from repro.scenarios.registry import (
    ResolvedScenario,
    format_listing,
    from_payload,
    list_scenarios,
    resolve,
    resolve_any,
    scenario_names,
    with_seed,
)
from repro.scenarios.spec import (
    FIELD_GROUPS,
    apply_overrides,
    canonical_config_dict,
    flatten_overrides,
    spec_digest,
)

__all__ = [
    "FIELD_GROUPS",
    "ResolvedScenario",
    "apply_overrides",
    "canonical_config_dict",
    "flatten_overrides",
    "format_listing",
    "from_payload",
    "list_scenarios",
    "resolve",
    "resolve_any",
    "scenario_names",
    "spec_digest",
    "with_seed",
]
