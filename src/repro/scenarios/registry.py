"""One scenario registry: shipped spec files, user spec files, digests.

Every consumer of ``--scenario`` (the simulation and experiments CLIs,
the ETL and serving tiers, the farm and sweep workers, the persistent
cache) resolves through :func:`resolve`: a *reference* is either a
registry name (``small``, ``paper``, ``paper-10x``,
``million-hotspot`` — each shipped as a spec file under
``repro/scenarios/builtin/``) or a path to a user spec file (JSON
anywhere; TOML on Python 3.11+ via :mod:`tomllib`). The result is a
:class:`ResolvedScenario`: the frozen
:class:`~repro.simulation.scenario.ScenarioConfig`, the canonical
:func:`~repro.scenarios.spec.spec_digest`, and a primitives-only
:meth:`~ResolvedScenario.payload` that parallel workers rehydrate from
(:func:`from_payload`) without re-reading any file or registry — the
parent's resolution is the single source of truth for a run.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ScenarioSpecError
from repro.scenarios import spec as specmod
from repro.simulation.scenario import ScenarioConfig, validate_config

__all__ = [
    "ResolvedScenario",
    "from_payload",
    "list_scenarios",
    "resolve",
    "resolve_any",
    "scenario_names",
    "with_seed",
]

#: Directory of shipped spec files; the file stem is the registry name.
BUILTIN_DIR = Path(__file__).parent / "builtin"

#: The base every built-in spec builds on: a default-constructed
#: ScenarioConfig (which *is* the paper scenario). Spelled ``"defaults"``
#: in spec files so ``paper.json`` need not base on itself.
_DEFAULTS_BASE = "defaults"

#: Legacy spellings kept working with a DeprecationWarning.
_DEPRECATED_ALIASES = {
    "paper10x": "paper-10x",
    "paper_10x": "paper-10x",
    "million_hotspot": "million-hotspot",
}

_SPEC_SUFFIXES = (".json", ".toml")


@dataclasses.dataclass(frozen=True)
class ResolvedScenario:
    """One fully-validated scenario: label, provenance, config, digest."""

    label: str
    source: str
    config: ScenarioConfig
    digest: str

    def payload(self) -> Dict[str, Any]:
        """Primitives-only serialisation for worker rehydration.

        Carries the *resolved* config — not the spec file path — so a
        spawn worker reconstructs exactly what the parent validated
        even if the file changes (or vanishes) mid-run.
        """
        return {
            "label": self.label,
            "source": self.source,
            "digest": self.digest,
            "config": specmod.canonical_config_dict(self.config),
        }


def scenario_names() -> List[str]:
    """Sorted registry names (the shipped spec files' stems)."""
    return sorted(path.stem for path in BUILTIN_DIR.glob("*.json"))


@lru_cache(maxsize=None)
def _builtin_raw(name: str) -> Dict[str, Any]:
    path = BUILTIN_DIR / f"{name}.json"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:  # pragma: no cover - ship-time invariant
        raise ScenarioSpecError(f"missing built-in spec {name!r}: {exc}")
    except ValueError as exc:  # pragma: no cover - ship-time invariant
        raise ScenarioSpecError(f"corrupt built-in spec {name!r}: {exc}")


def _canonical_name(ref: str) -> Optional[str]:
    """Registry name for ``ref``, resolving deprecated aliases."""
    if ref in _DEPRECATED_ALIASES:
        canonical = _DEPRECATED_ALIASES[ref]
        warnings.warn(
            f"scenario name {ref!r} is deprecated; use {canonical!r}",
            DeprecationWarning,
            stacklevel=4,
        )
        return canonical
    return ref if (BUILTIN_DIR / f"{ref}.json").exists() else None


def _load_spec_file(path: Path) -> Dict[str, Any]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioSpecError(f"cannot read spec file {path}: {exc}")
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:
            raise ScenarioSpecError(
                f"{path}: TOML specs need Python 3.11+ (tomllib); "
                "use a JSON spec on this interpreter"
            )
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioSpecError(f"{path}: invalid TOML: {exc}")
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ScenarioSpecError(f"{path}: invalid JSON: {exc}")
    if not isinstance(data, dict):
        raise ScenarioSpecError(
            f"{path}: a spec file must hold one JSON object, "
            f"got {type(data).__name__}"
        )
    return data


def _base_config(base: Any, source: str, *, _depth: int = 0) -> ScenarioConfig:
    """The config a spec's overrides apply to (built-ins chain once)."""
    if base == _DEFAULTS_BASE:
        return ScenarioConfig()
    if not isinstance(base, str):
        raise ScenarioSpecError(
            f"{source}: 'base' must name a built-in scenario, "
            f"got {type(base).__name__}"
        )
    if _depth > len(scenario_names()) + 1:  # pragma: no cover - guard
        raise ScenarioSpecError(f"{source}: circular 'base' chain")
    name = _canonical_name(base)
    if name is None:
        raise ScenarioSpecError(
            f"{source}: unknown base scenario {base!r}; "
            f"known: {scenario_names()} (or 'defaults')"
        )
    return _resolve_spec_dict(
        _builtin_raw(name), f"builtin:{name}", _depth=_depth + 1
    )


def _resolve_spec_dict(
    raw: Dict[str, Any], source: str, *, _depth: int = 0
) -> ScenarioConfig:
    base = raw.get("base", "paper" if _depth == 0 else _DEFAULTS_BASE)
    return specmod.apply_overrides(
        _base_config(base, source, _depth=_depth), raw, source
    )


def resolve(
    ref: Union[str, Path], seed: Optional[int] = None
) -> ResolvedScenario:
    """Resolve a scenario reference into a validated scenario.

    ``ref`` is a registry name or a spec-file path; a ``seed`` of
    ``None`` keeps the spec's own seed (every built-in pins one), an
    int overrides it. Raises :class:`ScenarioSpecError` with the
    source and field named on any problem.
    """
    if isinstance(ref, Path):
        return _resolve_file(ref, seed)
    name = _canonical_name(ref)
    if name is not None:
        raw = _builtin_raw(name)
        config = _resolve_spec_dict(raw, f"builtin:{name}")
        return _finish(name, f"builtin:{name}", config, seed)
    if _looks_like_path(ref):
        return _resolve_file(Path(ref), seed)
    raise ScenarioSpecError(
        f"unknown scenario {ref!r}; known: {scenario_names()} "
        "(or pass a path to a .json/.toml spec file)"
    )


def _looks_like_path(ref: str) -> bool:
    if "/" in ref or "\\" in ref:
        return True
    if ref.endswith(_SPEC_SUFFIXES):
        return True
    return Path(ref).exists()


def _resolve_file(path: Path, seed: Optional[int]) -> ResolvedScenario:
    if not path.exists():
        raise ScenarioSpecError(
            f"spec file {path} does not exist (registry names: "
            f"{scenario_names()})"
        )
    raw = _load_spec_file(path)
    config = _resolve_spec_dict(raw, str(path))
    label = raw.get("name") or path.stem
    if not isinstance(label, str) or not label:
        raise ScenarioSpecError(f"{path}: 'name' must be a non-empty string")
    return _finish(label, str(path), config, seed)


def _finish(
    label: str, source: str, config: ScenarioConfig, seed: Optional[int]
) -> ResolvedScenario:
    if seed is not None:
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ScenarioSpecError(
                f"{source}: seed must be an int, got {type(seed).__name__}"
            )
        config = dataclasses.replace(config, seed=seed)
        validate_config(config, strict=True)
    return ResolvedScenario(
        label=label,
        source=source,
        config=config,
        digest=specmod.spec_digest(config),
    )


def resolve_any(
    scenario: Union[str, Path, ResolvedScenario],
    seed: Optional[int] = None,
) -> ResolvedScenario:
    """Normalise any accepted ``--scenario`` value to a resolution.

    Already-resolved scenarios pass through (re-seeded if ``seed``
    differs), so layered APIs can hand resolutions down without
    re-reading files.
    """
    if isinstance(scenario, ResolvedScenario):
        if seed is None or seed == scenario.config.seed:
            return scenario
        return with_seed(scenario, seed)
    return resolve(scenario, seed=seed)


def with_seed(resolved: ResolvedScenario, seed: int) -> ResolvedScenario:
    """The same scenario under a different seed (digest recomputed)."""
    config = dataclasses.replace(resolved.config, seed=int(seed))
    return ResolvedScenario(
        label=resolved.label,
        source=resolved.source,
        config=config,
        digest=specmod.spec_digest(config),
    )


def from_payload(payload: Dict[str, Any]) -> ResolvedScenario:
    """Rehydrate a :meth:`ResolvedScenario.payload` in a worker.

    Validates strictly and recomputes the digest, so a corrupted or
    hand-built payload cannot silently poison the cache key space.
    """
    try:
        fields = dict(payload["config"])
        label = payload["label"]
        source = payload.get("source", "<payload>")
    except (KeyError, TypeError) as exc:
        raise ScenarioSpecError(f"malformed scenario payload: {exc}")
    for name in specmod._TUPLE_SHAPES:
        if name in fields:
            fields[name] = [list(row) for row in fields[name]]
    config = specmod.apply_overrides(ScenarioConfig(), fields, source)
    digest = specmod.spec_digest(config)
    carried = payload.get("digest")
    if carried is not None and carried != digest:
        raise ScenarioSpecError(
            f"scenario payload digest mismatch for {label!r}: "
            f"carried {str(carried)[:12]}…, recomputed {digest[:12]}…"
        )
    return ResolvedScenario(
        label=str(label),
        source=str(source),
        config=config,
        digest=digest,
    )


def list_scenarios() -> List[Dict[str, Any]]:
    """Registry listing for ``--list-scenarios``: one dict per name
    with the resolved digest under the spec's own default seed."""
    rows = []
    for name in scenario_names():
        resolved = resolve(name)
        raw = _builtin_raw(name)
        rows.append({
            "name": name,
            "description": raw.get("description", ""),
            "seed": resolved.config.seed,
            "n_days": resolved.config.n_days,
            "target_hotspots": resolved.config.target_hotspots,
            "digest": resolved.digest,
        })
    return rows


def format_listing(rows: Optional[List[Dict[str, Any]]] = None) -> str:
    """The ``--list-scenarios`` table (shared by both CLIs)."""
    rows = list_scenarios() if rows is None else rows
    lines = []
    width = max(len(row["name"]) for row in rows) if rows else 0
    for row in rows:
        lines.append(
            f"{row['name']:<{width}}  seed={row['seed']:<5} "
            f"days={row['n_days']:<4} hotspots={row['target_hotspots']:<8,} "
            f"digest={row['digest'][:12]}  {row['description']}"
        )
    return "\n".join(lines)
