"""Multi-process execution layer: experiment farm, seed sweeps, locks.

The simulator is deterministic per seed and every experiment reads one
immutable :class:`~repro.simulation.engine.SimulationResult`, which
makes both axes embarrassingly parallel:

* :func:`run_farm` fans the ~25 figure/table experiments for one
  scenario out over a process pool. Workers rehydrate the result from
  the persistent scenario cache (a path crosses the pipe, never the
  multi-hundred-MB result object) and return plain report payloads, so
  the output is byte-identical to the serial path in the same order.
* :func:`run_sweep` cold-builds one scenario per seed in parallel
  workers — each build publishes into the shared cache under
  :func:`~repro.parallel.locks.build_lock` — and aggregates every
  experiment row across seeds into mean/stddev/CI robustness numbers.
* :class:`~repro.parallel.shards.ShardPool` parallelises *inside* one
  run: a persistent pool created once per run scatters randomness-free
  work (the PoC finish half of the day loop, §8.1's independent
  stationary trials) and gathers deterministically, so sharded output
  is byte-identical to serial. Farm dispatch is longest-first via the
  static cost table in :mod:`repro.parallel.costs`.

All worker entry points are module-level functions taking picklable
tuples, so the farm works under every multiprocessing start method
(``fork``, ``spawn``, ``forkserver``).
"""

from repro.parallel.costs import longest_first, task_cost
from repro.parallel.farm import FarmOutcome, run_farm
from repro.parallel.locks import build_lock
from repro.parallel.shards import ShardPool
from repro.parallel.sweep import format_sweep, run_sweep

__all__ = [
    "FarmOutcome",
    "ShardPool",
    "build_lock",
    "format_sweep",
    "longest_first",
    "run_farm",
    "run_sweep",
    "task_cost",
]
