"""Multi-process execution layer: experiment farm, seed sweeps, locks.

The simulator is deterministic per seed and every experiment reads one
immutable :class:`~repro.simulation.engine.SimulationResult`, which
makes both axes embarrassingly parallel:

* :func:`run_farm` fans the ~25 figure/table experiments for one
  scenario out over a process pool. Workers rehydrate the result from
  the persistent scenario cache (a path crosses the pipe, never the
  multi-hundred-MB result object) and return plain report payloads, so
  the output is byte-identical to the serial path in the same order.
* :func:`run_sweep` cold-builds one scenario per seed in parallel
  workers — each build publishes into the shared cache under
  :func:`~repro.parallel.locks.build_lock` — and aggregates every
  experiment row across seeds into mean/stddev/CI robustness numbers.

All worker entry points are module-level functions taking picklable
tuples, so the farm works under every multiprocessing start method
(``fork``, ``spawn``, ``forkserver``).
"""

from repro.parallel.farm import FarmOutcome, run_farm
from repro.parallel.locks import build_lock
from repro.parallel.sweep import format_sweep, run_sweep

__all__ = [
    "FarmOutcome",
    "build_lock",
    "format_sweep",
    "run_farm",
    "run_sweep",
]
