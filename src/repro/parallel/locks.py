"""Advisory cross-process locks for scenario cache builds.

The scenario cache already publishes atomically (build into a tempdir,
``os.rename`` into place), so concurrent builders are *correct* without
any locking — they just waste a cold build each. ``build_lock`` closes
that gap: the first process to reach a missing entry takes an exclusive
``flock`` on a sidecar ``<entry>.lock`` file; the others block, then
find the published entry on disk and load it instead of re-simulating.

``flock`` is advisory and released by the kernel when the holder's file
descriptor closes — including on crash — so the only "stale" case left
is a live holder exceeding the timeout (wedged, or genuinely slower
than expected). We then warn and proceed *unlocked*: duplicating a
build is always safe here, failing to build is not.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op
and the pre-existing atomic-publish semantics carry correctness alone.
"""

from __future__ import annotations

import contextlib
import time
import warnings
from pathlib import Path
from typing import Iterator, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = ["DEFAULT_TIMEOUT_S", "build_lock"]

#: How long to wait on a held lock before assuming the holder is wedged
#: and proceeding without it. Generous: a paper-scale cold build takes
#: tens of seconds on one core, and waiting beats duplicating.
DEFAULT_TIMEOUT_S = 600.0

_POLL_S = 0.1


@contextlib.contextmanager
def build_lock(
    entry: Optional[Path], timeout_s: float = DEFAULT_TIMEOUT_S
) -> Iterator[None]:
    """Hold the build lock for a cache entry while the body runs.

    ``entry`` is the cache entry directory the caller intends to build;
    ``None`` (cache disabled) yields immediately without locking. The
    caller must re-check the entry on disk *after* acquiring — losing
    the race means the winner already published the result.
    """
    if entry is None or fcntl is None:
        yield
        return
    lock_path = entry.parent / (entry.name + ".lock")
    try:
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(lock_path, "a+")
    except OSError as exc:
        warnings.warn(
            f"could not open scenario build lock {lock_path}: {exc}; "
            "building without it",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return
    try:
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    warnings.warn(
                        f"scenario build lock {lock_path} still held after "
                        f"{timeout_s:.0f}s; proceeding without it (atomic "
                        "publish keeps the cache consistent)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    break
                time.sleep(_POLL_S)
        yield
    finally:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except OSError:  # pragma: no cover - unlock of unheld lock
            pass
        handle.close()
