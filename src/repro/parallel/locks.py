"""Advisory cross-process locks for scenario cache builds.

The scenario cache already publishes atomically (build into a tempdir,
``os.rename`` into place), so concurrent builders are *correct* without
any locking — they just waste a cold build each. ``build_lock`` closes
that gap: the first process to reach a missing entry takes an exclusive
``flock`` on a sidecar ``<entry>.lock`` file; the others block, then
find the published entry on disk and load it instead of re-simulating.

``flock`` is advisory and released by the kernel when the holder's file
descriptor closes — including on crash — so the only "stale" case left
is a live holder exceeding the timeout (wedged, or genuinely slower
than expected). We then warn and proceed *unlocked*: duplicating a
build is always safe here, failing to build is not. The same
warn-and-proceed applies **immediately** to any ``flock`` error that is
not contention (``EBADF``, ``ENOLCK``, …) — only ``EWOULDBLOCK`` /
``EAGAIN`` (and ``EINTR``) mean "someone holds it, poll again"; a
broken lock must never stall a build for the contention timeout.

Once the entry is published the sidecar has done its job and is
best-effort unlinked after release, so a long-lived cache directory
does not accumulate one ``.lock`` file per entry. Late waiters either
see the published entry before ever locking, or acquire an orphaned
inode and then find the entry on their post-acquire re-check — both
paths skip the build.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op
and the pre-existing atomic-publish semantics carry correctness alone.

Lock waits are observable: acquisition records the wait into the
``cache.lock_wait_s`` histogram and emits one ``cache.lock`` trace
event (outcome ``acquired`` / ``timeout`` / ``error``).
"""

from __future__ import annotations

import contextlib
import errno
import time
import warnings
from pathlib import Path
from typing import Iterator, Optional

from repro import obs

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = ["DEFAULT_TIMEOUT_S", "build_lock"]

#: How long to wait on a held lock before assuming the holder is wedged
#: and proceeding without it. Generous: a paper-scale cold build takes
#: tens of seconds on one core, and waiting beats duplicating.
DEFAULT_TIMEOUT_S = 600.0

_POLL_S = 0.1

#: The only errnos that mean "lock held by someone else, keep polling".
#: EWOULDBLOCK/EAGAIN are contention by definition; EINTR is a signal
#: landing mid-syscall. Anything else (EBADF, ENOLCK, ...) is a broken
#: lock and must fail fast, not spin out the contention timeout.
_CONTENTION_ERRNOS = frozenset(
    {errno.EWOULDBLOCK, errno.EAGAIN, errno.EINTR}
)


@contextlib.contextmanager
def build_lock(
    entry: Optional[Path], timeout_s: float = DEFAULT_TIMEOUT_S
) -> Iterator[None]:
    """Hold the build lock for a cache entry while the body runs.

    ``entry`` is the cache entry directory the caller intends to build;
    ``None`` (cache disabled) yields immediately without locking. The
    caller must re-check the entry on disk *after* acquiring — losing
    the race means the winner already published the result.
    """
    if entry is None or fcntl is None:
        yield
        return
    lock_path = entry.parent / (entry.name + ".lock")
    try:
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(lock_path, "a+")
    except OSError as exc:
        warnings.warn(
            f"could not open scenario build lock {lock_path}: {exc}; "
            "building without it",
            RuntimeWarning,
            stacklevel=3,
        )
        obs.counter("cache.lock_error")
        obs.trace_event(
            "cache.lock", entry=entry.name, outcome="open_error",
            error=str(exc),
        )
        yield
        return
    acquired = False
    try:
        started = time.monotonic()
        deadline = started + timeout_s
        outcome = "acquired"
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                acquired = True
                break
            except OSError as exc:
                if exc.errno not in _CONTENTION_ERRNOS:
                    warnings.warn(
                        f"scenario build lock {lock_path} failed "
                        f"({exc}); proceeding without it (atomic publish "
                        "keeps the cache consistent)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    outcome = "error"
                    obs.counter("cache.lock_error")
                    break
                if time.monotonic() >= deadline:
                    warnings.warn(
                        f"scenario build lock {lock_path} still held after "
                        f"{timeout_s:.0f}s; proceeding without it (atomic "
                        "publish keeps the cache consistent)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    outcome = "timeout"
                    obs.counter("cache.lock_timeout")
                    break
                time.sleep(_POLL_S)
        waited = time.monotonic() - started
        obs.observe("cache.lock_wait_s", waited)
        obs.trace_event(
            "cache.lock", entry=entry.name, outcome=outcome,
            wait_s=round(waited, 4),
        )
        yield
    finally:
        if acquired:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - unlock of unheld lock
                pass
        handle.close()
        # The sidecar is only needed while the entry is unbuilt; once
        # meta.json is published, stop leaking one .lock per entry.
        # Safe even if a waiter still polls the old inode: it acquires,
        # re-checks the disk, and loads the published entry.
        if acquired and (entry / "meta.json").exists():
            with contextlib.suppress(OSError):
                lock_path.unlink()
