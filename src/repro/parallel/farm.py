"""Process-pool experiment farm with cache-based worker rehydration.

``python -m repro.experiments --jobs N`` lands here. The parent
resolves the scenario spec once (registry name, user spec file, or an
already-resolved scenario), materialises its persistent cache entry
(building it if cold), then fans experiment tasks out over a
``multiprocessing`` pool. Each worker receives only ``(snapshot_dir,
scenario_payload, experiment_id, unit)`` — a few hundred bytes, where
the payload is the parent's *serialised resolved spec*
(:meth:`repro.scenarios.ResolvedScenario.payload`), never a name to be
re-looked-up — rehydrates the
:class:`~repro.simulation.engine.SimulationResult` from the snapshot on
first use, and memoises it for the rest of its life, so a worker pays
the load cost once no matter how many tasks it draws. Because spawn
workers rebuild from the payload, a spec file edited (or deleted)
mid-run cannot change what they compute.

Scheduling: tasks dispatch **longest-first** using the static cost
table in :mod:`repro.parallel.costs` (seeded from the benchmark's
measured walls), the classic LPT makespan heuristic — so the expensive
work starts immediately instead of straggling at the tail of a
registry-ordered queue. Experiments that decompose into independent
units (``s8_1``'s four stationary trials, see
:mod:`repro.experiments.s8_1`) additionally fan out as one task per
unit when ``jobs > 1``, which is what actually breaks the farm's old
Amdahl ceiling: the 18-second monolith becomes a 9-second longest unit.

Determinism: every experiment (and every unit) seeds its own named
streams from ``RngHub(result.config.seed)`` and never touches global
RNG state, cache rehydration is bit-identical to a cold build (asserted
by the scenario-cache tests), and results are reassembled by
``(experiment_id, unit)`` key rather than arrival order — the farm's
output is byte-identical to the serial path however the workers race.

Portability: the worker entry point is a module-level function and the
task tuples carry only primitives, so the farm is safe under ``spawn``
and ``forkserver`` start methods as well as ``fork`` (exercised by a
forced-``spawn`` test).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import AnalysisError
from repro.experiments.registry import (
    ExperimentReport,
    report_from_payload,
    report_payload,
    run_experiment,
)
from repro.parallel.costs import longest_first

__all__ = ["FarmOutcome", "run_farm"]


@dataclass
class FarmOutcome:
    """One experiment's report plus its worker-side cost.

    For a unit-decomposed experiment the wall/CPU figures are summed
    over its units (total compute, not elapsed time).
    """

    experiment_id: str
    report: ExperimentReport
    wall_s: float
    cpu_s: float


#: Per-worker-process memo of the rehydrated result, keyed by
#: (snapshot_dir, spec digest). Plain module globals — inherited
#: empty under ``spawn``, shared copy-on-write under ``fork``; either
#: way each worker loads the scenario at most once per key.
_WORKER_RESULT = None
_WORKER_KEY: Optional[Tuple[Optional[str], str]] = None


def _worker_result(snapshot_dir: Optional[str], payload: Dict):
    global _WORKER_RESULT, _WORKER_KEY
    key = (snapshot_dir, payload["digest"])
    if _WORKER_KEY != key:
        if snapshot_dir is not None:
            from repro.experiments.snapshot import load_result

            with obs.timer("farm.rehydrate_s") as timing:
                _WORKER_RESULT = load_result(snapshot_dir)
            obs.counter("farm.rehydrates")
            obs.trace_event(
                "worker.rehydrate", scenario=payload["label"],
                digest=payload["digest"][:12],
                wall_s=round(timing.elapsed, 4),
            )
        else:
            # Cache disabled: fall back to the in-process memo (each
            # worker rebuilds from the serialised spec once; still
            # correct, just not shared).
            from repro.experiments.context import get_result
            from repro.scenarios import from_payload

            _WORKER_RESULT = get_result(from_payload(payload))
        _WORKER_KEY = key
    return _WORKER_RESULT


def _run_one(task: Tuple[Optional[str], Dict, str, Optional[str]]) -> Dict:
    """Worker entry point: rehydrate (memoised), run one task.

    A task is a whole experiment (``unit is None``) or one unit of a
    decomposed experiment; either way the return value is keyed by
    ``(experiment_id, unit)`` so the parent can reassemble
    deterministically.
    """
    snapshot_dir, scenario_payload, experiment_id, unit = task
    result = _worker_result(snapshot_dir, scenario_payload)
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    if unit is None:
        payload = report_payload(run_experiment(experiment_id, result))
    else:
        from repro.experiments import s8_1

        payload = s8_1.run_unit(result, unit)
    wall_s = time.perf_counter() - wall0
    cpu_s = time.process_time() - cpu0
    obs.counter("farm.tasks")
    obs.observe("farm.task_s", wall_s, experiment=experiment_id)
    obs.trace_event(
        "worker.task", experiment=experiment_id, unit=unit,
        scenario=scenario_payload["label"],
        seed=scenario_payload["config"]["seed"],
        wall_s=round(wall_s, 4), cpu_s=round(cpu_s, 4),
    )
    return {
        "experiment_id": experiment_id,
        "unit": unit,
        "payload": payload,
        "wall_s": wall_s,
        "cpu_s": cpu_s,
    }


def _expand(
    ids: Sequence[str], jobs: int
) -> List[Tuple[str, Optional[str]]]:
    """(experiment_id, unit) pairs for the task queue.

    Serial runs keep whole experiments (the registry path is the
    comparison baseline); multi-worker runs decompose ``s8_1`` into its
    four independent units so no single task dominates the makespan.
    """
    pairs: List[Tuple[str, Optional[str]]] = []
    for eid in ids:
        if jobs > 1 and eid == "s8_1":
            from repro.experiments.s8_1 import UNITS

            pairs.extend((eid, unit) for unit in UNITS)
        else:
            pairs.append((eid, None))
    return pairs


def _assemble(
    ids: Sequence[str], raw: List[Dict]
) -> List[FarmOutcome]:
    """Merge task results into per-experiment outcomes, in ``ids`` order."""
    by_key = {(item["experiment_id"], item["unit"]): item for item in raw}
    outcomes = []
    for eid in ids:
        whole = by_key.get((eid, None))
        if whole is not None:
            outcomes.append(FarmOutcome(
                experiment_id=eid,
                report=report_from_payload(whole["payload"]),
                wall_s=whole["wall_s"],
                cpu_s=whole["cpu_s"],
            ))
            continue
        from repro.experiments import s8_1

        units = {}
        wall_s = 0.0
        cpu_s = 0.0
        for unit in s8_1.UNITS:
            item = by_key.get((eid, unit))
            if item is None:
                raise AnalysisError(
                    f"farm lost unit {unit!r} of experiment {eid!r}"
                )
            units[unit] = item["payload"]
            wall_s += item["wall_s"]
            cpu_s += item["cpu_s"]
        outcomes.append(FarmOutcome(
            experiment_id=eid,
            report=s8_1.merge_units(units),
            wall_s=wall_s,
            cpu_s=cpu_s,
        ))
    return outcomes


def run_farm(
    scenario,
    seed: Optional[int] = None,
    experiment_ids: Sequence[str] = (),
    jobs: int = 1,
    start_method: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    shard_workers: int = 0,
) -> List[FarmOutcome]:
    """Run experiments for one scenario, fanned over ``jobs`` processes.

    ``scenario`` is anything :func:`repro.scenarios.resolve_any`
    accepts — registry name, spec-file path, or a resolved scenario;
    ``seed=None`` keeps the spec's own seed. Returns outcomes in
    ``experiment_ids`` order regardless of worker scheduling.
    ``jobs <= 1`` runs everything in-process through the exact same
    task path (useful as the comparison baseline). ``start_method``
    overrides the platform default (``"spawn"`` / ``"fork"`` /
    ``"forkserver"``) — mainly for portability tests.
    ``checkpoint_every`` makes the parent's cold scenario build
    resumable and ``shard_workers`` runs it with an intra-run shard
    pool (see :func:`repro.experiments.context.get_result`); workers
    only ever rehydrate the finished snapshot.
    """
    from repro.experiments.context import ensure_snapshot
    from repro.scenarios import resolve_any

    resolved = resolve_any(scenario, seed=seed)
    payload = resolved.payload()
    ids = list(experiment_ids)
    entry = ensure_snapshot(
        resolved, checkpoint_every=checkpoint_every,
        shard_workers=shard_workers,
    )
    snapshot_dir = None if entry is None else str(entry)
    tasks = [
        (snapshot_dir, payload, eid, unit)
        for eid, unit in longest_first(_expand(ids, jobs))
    ]

    farm_started = time.perf_counter()
    obs.trace_event(
        "farm.start", scenario=resolved.label, seed=resolved.config.seed,
        digest=resolved.digest[:12], jobs=jobs,
        experiments=len(ids), tasks=len(tasks),
    )
    obs.gauge("farm.queue_depth", len(tasks))
    raw = []
    if jobs <= 1:
        for task in tasks:
            raw.append(_run_one(task))
            obs.gauge("farm.queue_depth", len(tasks) - len(raw))
    else:
        context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        with context.Pool(processes=jobs) as pool:
            # Tasks enter the queue longest-first; results stream back
            # in completion order (the queue gauge tracks reality) and
            # are reassembled by key below, so arrival order is
            # irrelevant to the output.
            for item in pool.imap_unordered(_run_one, tasks):
                raw.append(item)
                obs.gauge("farm.queue_depth", len(tasks) - len(raw))
    obs.trace_event(
        "farm.done", scenario=resolved.label, seed=resolved.config.seed,
        jobs=jobs, experiments=len(ids),
        wall_s=round(time.perf_counter() - farm_started, 4),
    )

    return _assemble(ids, raw)
