"""Process-pool experiment farm with cache-based worker rehydration.

``python -m repro.experiments --jobs N`` lands here. The parent
materialises the scenario's persistent cache entry once (building it if
cold), then fans experiment ids out over a ``multiprocessing`` pool.
Each worker receives only ``(snapshot_dir, scenario, seed,
experiment_id)`` — a few hundred bytes — rehydrates the
:class:`~repro.simulation.engine.SimulationResult` from the snapshot on
first use, and memoises it for the rest of its life, so a worker pays
the load cost once no matter how many experiments it draws.

Determinism: every experiment seeds its own named streams from
``RngHub(result.config.seed)`` and never touches global RNG state, and
cache rehydration is bit-identical to a cold build (asserted by the
scenario-cache tests). Results therefore do not depend on which worker
runs what, and ``Pool.imap`` returns them in submission order — the
farm's output is byte-identical to the serial path.

Portability: the worker entry point is a module-level function and the
task tuples carry only primitives, so the farm is safe under ``spawn``
and ``forkserver`` start methods as well as ``fork`` (exercised by a
forced-``spawn`` test).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.experiments.registry import (
    ExperimentReport,
    report_from_payload,
    report_payload,
    run_experiment,
)

__all__ = ["FarmOutcome", "run_farm"]


@dataclass
class FarmOutcome:
    """One experiment's report plus its worker-side cost."""

    experiment_id: str
    report: ExperimentReport
    wall_s: float
    cpu_s: float


#: Per-worker-process memo of the rehydrated result, keyed by
#: (snapshot_dir, scenario, seed). Plain module globals — inherited
#: empty under ``spawn``, shared copy-on-write under ``fork``; either
#: way each worker loads the scenario at most once per key.
_WORKER_RESULT = None
_WORKER_KEY: Optional[Tuple[Optional[str], str, int]] = None


def _worker_result(snapshot_dir: Optional[str], scenario: str, seed: int):
    global _WORKER_RESULT, _WORKER_KEY
    key = (snapshot_dir, scenario, seed)
    if _WORKER_KEY != key:
        if snapshot_dir is not None:
            from repro.experiments.snapshot import load_result

            with obs.timer("farm.rehydrate_s") as timing:
                _WORKER_RESULT = load_result(snapshot_dir)
            obs.counter("farm.rehydrates")
            obs.trace_event(
                "worker.rehydrate", scenario=scenario, seed=seed,
                wall_s=round(timing.elapsed, 4),
            )
        else:
            # Cache disabled: fall back to the in-process memo (each
            # worker builds once; still correct, just not shared).
            from repro.experiments.context import get_result

            _WORKER_RESULT = get_result(scenario, seed)
        _WORKER_KEY = key
    return _WORKER_RESULT


def _run_one(task: Tuple[Optional[str], str, int, str]) -> Dict:
    """Worker entry point: rehydrate (memoised), run one experiment."""
    snapshot_dir, scenario, seed, experiment_id = task
    result = _worker_result(snapshot_dir, scenario, seed)
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    report = run_experiment(experiment_id, result)
    wall_s = time.perf_counter() - wall0
    cpu_s = time.process_time() - cpu0
    obs.counter("farm.tasks")
    obs.observe("farm.task_s", wall_s, experiment=experiment_id)
    obs.trace_event(
        "worker.task", experiment=experiment_id, scenario=scenario,
        seed=seed, wall_s=round(wall_s, 4), cpu_s=round(cpu_s, 4),
    )
    return {
        "experiment_id": experiment_id,
        "report": report_payload(report),
        "wall_s": wall_s,
        "cpu_s": cpu_s,
    }


def run_farm(
    scenario: str,
    seed: int,
    experiment_ids: Sequence[str],
    jobs: int = 1,
    start_method: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> List[FarmOutcome]:
    """Run experiments for one scenario, fanned over ``jobs`` processes.

    Returns outcomes in ``experiment_ids`` order regardless of worker
    scheduling. ``jobs <= 1`` runs everything in-process through the
    exact same task path (useful as the comparison baseline).
    ``start_method`` overrides the platform default (``"spawn"`` /
    ``"fork"`` / ``"forkserver"``) — mainly for portability tests.
    ``checkpoint_every`` makes the parent's cold scenario build
    resumable (see :func:`repro.experiments.context.get_result`);
    workers only ever rehydrate the finished snapshot.
    """
    from repro.experiments.context import ensure_snapshot

    ids = list(experiment_ids)
    entry = ensure_snapshot(scenario, seed, checkpoint_every=checkpoint_every)
    snapshot_dir = None if entry is None else str(entry)
    tasks = [(snapshot_dir, scenario, seed, eid) for eid in ids]

    farm_started = time.perf_counter()
    obs.trace_event(
        "farm.start", scenario=scenario, seed=seed, jobs=jobs,
        experiments=len(ids),
    )
    obs.gauge("farm.queue_depth", len(tasks))
    raw = []
    if jobs <= 1:
        for task in tasks:
            raw.append(_run_one(task))
            obs.gauge("farm.queue_depth", len(tasks) - len(raw))
    else:
        context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        with context.Pool(processes=jobs) as pool:
            # imap streams results in submission order; the parent-side
            # gauge tracks how many tasks are still queued or running.
            for item in pool.imap(_run_one, tasks):
                raw.append(item)
                obs.gauge("farm.queue_depth", len(tasks) - len(raw))
    obs.trace_event(
        "farm.done", scenario=scenario, seed=seed, jobs=jobs,
        experiments=len(ids),
        wall_s=round(time.perf_counter() - farm_started, 4),
    )

    return [
        FarmOutcome(
            experiment_id=item["experiment_id"],
            report=report_from_payload(item["report"]),
            wall_s=item["wall_s"],
            cpu_s=item["cpu_s"],
        )
        for item in raw
    ]
