"""Static experiment cost model for farm scheduling.

The farm used to dispatch tasks in registry order, which parked the
18-second ``s8_1`` monolith at whatever position the registry gave it —
often the tail of the queue, where it alone set the makespan (the
measured 1.01× "speedup" in earlier ``BENCH_parallel.json`` revisions).
Longest-processing-time-first is the classic 4/3-approximation for
minimising makespan on identical machines, and it only needs a rough
cost ordering, not accurate walls — so a static table seeded from the
benchmark's measured per-experiment walls is enough, with a small
default for experiments the table has never met.

Costs are keyed by ``(experiment_id, unit)``: ``s8_1`` decomposes into
four independent stationary-trial units (see
:mod:`repro.experiments.s8_1`), and the May unit (24 simulated hours)
costs roughly three September units (8 hours each).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = ["DEFAULT_COST_S", "longest_first", "task_cost"]

#: Whole-experiment walls (seconds) from ``BENCH_parallel.json``'s
#: ``per_experiment_wall_s`` on the recording host. Relative order is
#: what matters; absolute values just make the table auditable.
EXPERIMENT_COST_S = {
    "s8_1": 20.1226,
    "fig12": 1.1006,
    "fig15": 0.451,
    "fig13": 0.1938,
    "s7_1": 0.0944,
    "fig03": 0.0247,
    "fig08": 0.0222,
    "fig09": 0.012,
    "s7_2": 0.0109,
    "fig10": 0.0103,
    "fig04": 0.0101,
    "fig06": 0.0098,
    "fig11": 0.0098,
    "fig07": 0.0089,
    "fig05": 0.0054,
    "s9_1": 0.0036,
    "table1": 0.0029,
    "fig02": 0.002,
    "headline_s3": 0.002,
    "fig14": 0.0017,
    "s4_3": 0.0008,
}

#: Per-unit walls for decomposable experiments, from the benchmark's
#: ``s8_1_unit_wall_s``. The May unit (24 simulated hours) costs roughly
#: three September units (8 hours each), as the hour split predicts.
UNIT_COST_S = {
    ("s8_1", "may"): 9.1808,
    ("s8_1", "sept-0"): 3.3338,
    ("s8_1", "sept-1"): 3.2631,
    ("s8_1", "sept-2"): 3.3163,
}

#: Experiments absent from the table (new figures, test doubles) are
#: assumed cheap — they sort behind every measured experiment but keep
#: a deterministic relative order via the id tie-break.
DEFAULT_COST_S = 0.05


def task_cost(experiment_id: str, unit: Optional[str] = None) -> float:
    """Estimated wall seconds for one farm task."""
    if unit is not None:
        cost = UNIT_COST_S.get((experiment_id, unit))
        if cost is not None:
            return cost
    return EXPERIMENT_COST_S.get(experiment_id, DEFAULT_COST_S)


def longest_first(
    tasks: Sequence[Tuple[str, Optional[str]]]
) -> list:
    """Sort ``(experiment_id, unit)`` pairs longest-first.

    Ties (and unknown experiments, which all get the default cost)
    break on the id/unit pair so the dispatch order — and therefore the
    worker scheduling — is deterministic for a given task set.
    """
    return sorted(
        tasks,
        key=lambda task: (-task_cost(task[0], task[1]), task[0], task[1] or ""),
    )
