"""Multi-seed robustness sweeps: is a measured number seed-luck?

The paper reports one number per marginal; the reproduction can do
better and report how stable that number is across simulation seeds.
``run_sweep`` builds one scenario per seed — in parallel workers, each
publishing into the shared scenario cache under the build lock — runs
the selected experiments against each, and aggregates every
paper-vs-measured row across seeds into mean / sample stddev / 95% CI.

The output dict is deterministic for a given (scenario, seeds,
experiment set): no timestamps, sorted keys, plain Python numbers — so
re-running a sweep (now warm from cache) must produce byte-identical
JSON, which the tests assert.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import AnalysisError
from repro.experiments.registry import (
    report_payload,
    run_experiment,
)

__all__ = ["format_sweep", "run_sweep"]


def _sweep_task(
    task: Tuple[Dict, Tuple[str, ...], Optional[int]]
) -> Tuple[int, List[Dict]]:
    """Worker entry point: build one seed's scenario, run all experiments.

    The task carries the parent's serialised resolved spec (one payload
    per seed), so spawn workers rehydrate what the parent validated
    instead of re-reading any file or registry. ``get_result`` consults
    the persistent cache first, takes the build lock on a miss, and
    publishes the built scenario for everyone else — so concurrent
    sweep workers never duplicate a cold build and the entries remain
    available for later warm runs. A non-``None`` ``checkpoint_every``
    additionally makes each cold build resumable across sweep
    invocations.
    """
    payload, experiment_ids, checkpoint_every = task
    from repro.experiments.context import get_result
    from repro.scenarios import from_payload

    resolved = from_payload(payload)
    seed = resolved.config.seed
    started = time.perf_counter()
    result = get_result(resolved, checkpoint_every=checkpoint_every)
    payloads = [
        report_payload(run_experiment(eid, result)) for eid in experiment_ids
    ]
    wall_s = time.perf_counter() - started
    obs.counter("sweep.seeds")
    obs.observe("sweep.seed_s", wall_s)
    obs.trace_event(
        "worker.sweep_seed", scenario=resolved.label, seed=seed,
        experiments=len(experiment_ids), wall_s=round(wall_s, 4),
    )
    return seed, payloads


def run_sweep(
    scenario,
    seeds: Sequence[int],
    experiment_ids: Sequence[str],
    jobs: int = 1,
    start_method: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> Dict:
    """Cross-seed robustness report for one scenario.

    ``scenario`` is anything :func:`repro.scenarios.resolve_any`
    accepts — registry name, spec-file path, or a resolved scenario;
    it is resolved once and re-seeded per sweep point. Returns a
    JSON-ready dict: per experiment, each comparison row with its
    per-seed values, cross-seed ``mean``, sample ``stddev`` (0.0 for a
    single seed) and normal-approximation 95% confidence half-width
    ``ci95``. Rows are keyed by label in first-seed order; a row
    missing for some seed is an analysis bug and raises.
    """
    from repro.scenarios import resolve_any, with_seed

    resolved = resolve_any(scenario)
    seed_list = [int(seed) for seed in seeds]
    if not seed_list:
        raise AnalysisError("sweep needs at least one seed")
    if len(set(seed_list)) != len(seed_list):
        raise AnalysisError(f"duplicate seeds in sweep: {seed_list}")
    ids = tuple(experiment_ids)
    tasks = [
        (with_seed(resolved, seed).payload(), ids, checkpoint_every)
        for seed in seed_list
    ]

    sweep_started = time.perf_counter()
    obs.trace_event(
        "sweep.start", scenario=resolved.label, seeds=seed_list, jobs=jobs,
        experiments=len(ids),
    )
    if jobs <= 1:
        raw = [_sweep_task(task) for task in tasks]
    else:
        context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        with context.Pool(processes=jobs) as pool:
            raw = list(pool.imap(_sweep_task, tasks))
    obs.trace_event(
        "sweep.done", scenario=resolved.label, seeds=seed_list, jobs=jobs,
        wall_s=round(time.perf_counter() - sweep_started, 4),
    )

    by_seed = dict(raw)
    experiments: Dict[str, Dict] = {}
    for position, experiment_id in enumerate(ids):
        first = by_seed[seed_list[0]][position]
        rows = []
        for row_index, row in enumerate(first["rows"]):
            values = {}
            for seed in seed_list:
                other = by_seed[seed][position]["rows"][row_index]
                if other["label"] != row["label"]:
                    raise AnalysisError(
                        f"{experiment_id} row {row_index} label differs "
                        f"across seeds: {row['label']!r} vs {other['label']!r}"
                    )
                values[str(seed)] = other["measured"]
            stats = _aggregate(list(values.values()))
            rows.append({
                "label": row["label"],
                "unit": row["unit"],
                "paper": row["paper"],
                "values": values,
                **stats,
            })
        experiments[experiment_id] = {"title": first["title"], "rows": rows}

    return {
        "scenario": resolved.label,
        "seeds": seed_list,
        "experiment_ids": list(ids),
        "experiments": experiments,
    }


def _aggregate(values: List) -> Dict[str, Optional[float]]:
    """mean / sample stddev / 95% CI half-width of one row's values."""
    numbers = [float(value) for value in values]
    n = len(numbers)
    mean = sum(numbers) / n
    if n < 2:
        stddev = 0.0
    else:
        stddev = math.sqrt(
            sum((x - mean) ** 2 for x in numbers) / (n - 1)
        )
    ci95 = 1.96 * stddev / math.sqrt(n)
    return {"mean": mean, "stddev": stddev, "ci95": ci95}


def format_sweep(sweep: Dict) -> str:
    """Render a sweep report as an aligned text table."""
    seeds = sweep["seeds"]
    lines = [
        f"== sweep: {sweep['scenario']} scenario, "
        f"{len(seeds)} seeds ({', '.join(str(s) for s in seeds)}) =="
    ]
    for experiment_id in sweep["experiment_ids"]:
        entry = sweep["experiments"][experiment_id]
        lines.append(f"-- {experiment_id}: {entry['title']}")
        rows = entry["rows"]
        if not rows:
            continue
        width = max(len(row["label"]) for row in rows)
        for row in rows:
            unit = f" {row['unit']}" if row["unit"] else ""
            paper = "—" if row["paper"] is None else f"{row['paper']:g}"
            lines.append(
                f"  {row['label']:<{width}}  paper={paper:>10}{unit}  "
                f"mean={row['mean']:>12.4g} ±{row['ci95']:.3g}{unit}  "
                f"(stddev {row['stddev']:.3g})"
            )
    return "\n".join(lines)
