"""Persistent shard pool: intra-run parallelism with a deterministic
scatter/gather protocol.

The farm (:mod:`repro.parallel.farm`) parallelises *across* runs; this
module parallelises *inside* one. A :class:`ShardPool` is created once
per run (``--shard-workers N``), lives for the run's whole duration, and
executes small typed tasks:

* ``"poc_finish"`` — the deterministic half of a batch of PoC
  challenges. The leader thread owns the ``"poc"`` RNG stream and runs
  :func:`~repro.poc.challenge.plan_challenge` serially (randomness is
  consumed in exactly the serial order); workers run
  :func:`~repro.poc.challenge.finish_challenge` over region-partitioned
  chunks of plans, which consumes no randomness at all. Outcomes carry
  their challenge index, so the gather step reassembles the day in
  challenge order — the chain, the digests and the RNG stream are
  byte-identical to serial for any worker count.
* ``"s8_unit"`` — one independent §8.1 stationary trial. Each unit
  seeds its own named streams from ``RngHub(seed)`` (derivation is a
  pure function of seed and name, so a fresh hub in a worker draws the
  same bytes the serial loop would). Workers rehydrate the simulation
  result from the scenario cache snapshot and memoise it for the life
  of the pool, exactly like farm workers.

Portability mirrors the farm: worker entry points are module-level
functions, task payloads are built from picklable primitives
(:class:`~repro.poc.challenge.ChallengePlan` is primitives all the way
down), and nothing depends on ``fork`` semantics, so the pool is safe
under ``spawn`` and ``forkserver`` too.

Observability: the parent exports a ``parallel.shard.queue_depth``
gauge and per-scatter ``parallel.shard.run_s`` timings; workers record
``parallel.shard.task_s`` histograms (labelled by task kind), task
counters, rehydration cost, and trace events that join the parent's
trace via the inherited ``REPRO_TRACE`` environment.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import SimulationError

__all__ = [
    "ShardPool",
    "configure_experiment_pool",
    "dispatch_s8_units",
    "experiment_pool",
    "shutdown_experiment_pool",
]


# --------------------------------------------------------------- handlers --
# Dispatched by kind string so the cross-process surface is one stable
# module-level function (`_run_task`) no matter how many task types the
# pool learns; payloads stay picklable primitive bundles.


def _handle_poc_finish(payload: Tuple) -> List[Tuple[int, Any]]:
    """Finish a chunk of planned challenges; tag outcomes with their
    challenge indices so the parent can merge in challenge order."""
    from repro.poc.challenge import finish_challenge

    checker, plans, indices = payload
    return [
        (index, finish_challenge(plan, checker=checker))
        for index, plan in zip(indices, plans)
    ]


def _handle_traffic_finish(payload: Tuple) -> List[Tuple[int, Any]]:
    """Finish a chunk of planned state channels (transaction assembly
    only — the plan half consumed every draw on the leader); tag the
    open/close pairs with their channel indices for an in-order merge."""
    from repro.simulation.phases.traffic import finish_channel

    plans, indices = payload
    return [
        (index, finish_channel(plan))
        for index, plan in zip(indices, plans)
    ]


#: Per-worker-process memo of rehydrated results keyed by snapshot dir —
#: a worker pays the snapshot load once however many units it draws.
_RESULT_MEMO: Dict[str, Any] = {}


def _shard_result(snapshot_dir: str):
    result = _RESULT_MEMO.get(snapshot_dir)
    if result is None:
        from repro.experiments.snapshot import load_result

        with obs.timer("parallel.shard.rehydrate_s") as timing:
            result = load_result(snapshot_dir)
        obs.counter("parallel.shard.rehydrates")
        obs.trace_event(
            "shard.rehydrate", snapshot=snapshot_dir,
            wall_s=round(timing.elapsed, 4),
        )
        _RESULT_MEMO[snapshot_dir] = result
    return result


def _handle_s8_unit(payload: Tuple) -> Any:
    snapshot_dir, unit = payload
    from repro.experiments.s8_1 import run_unit

    return run_unit(_shard_result(snapshot_dir), unit)


#: Per-worker memo of unpickled coverage models keyed by (path, digest):
#: one scatter ships the model file once and every chunk a worker draws
#: reuses the loaded object. Bounded: a process only ever sees a
#: handful of models (one per figure-12 variant).
_COVERAGE_MEMO: Dict[Tuple[str, str], Any] = {}
_COVERAGE_MEMO_CAP = 8


def _handle_coverage_chunk(payload: Tuple) -> Tuple[Any, Any]:
    """Resolve shape ownership for one chunk of Monte-Carlo sample
    points. ``first_covering_many`` is pure per point (lowest-index
    covering shape), so chunk boundaries cannot change any answer —
    the parent merges by the returned index array."""
    import hashlib
    import pickle

    path, sha, lats, lons, indices = payload
    model = _COVERAGE_MEMO.get((path, sha))
    if model is None:
        with open(path, "rb") as handle:
            blob = handle.read()
        actual = hashlib.sha256(blob).hexdigest()
        if actual != sha:
            raise SimulationError(
                f"coverage model payload digest mismatch for {path}"
            )
        model = pickle.loads(blob)
        if len(_COVERAGE_MEMO) >= _COVERAGE_MEMO_CAP:
            _COVERAGE_MEMO.pop(next(iter(_COVERAGE_MEMO)))
        _COVERAGE_MEMO[(path, sha)] = model
    return indices, model.first_covering_many(lats, lons)


def _handle_echo(payload: Any) -> Any:
    """Round-trip a payload unchanged (pool plumbing tests)."""
    return payload


_HANDLERS: Dict[str, Callable[[Any], Any]] = {
    "poc_finish": _handle_poc_finish,
    "traffic_finish": _handle_traffic_finish,
    "s8_unit": _handle_s8_unit,
    "coverage_chunk": _handle_coverage_chunk,
    "echo": _handle_echo,
}


def _run_task(indexed: Tuple[int, Tuple[str, Any]]) -> Tuple[int, Any, int]:
    """Worker entry point: run one typed task, keep its scatter index.

    The third element is the worker's own ``ru_maxrss`` (bytes): the
    parent cannot see a live worker through ``RUSAGE_CHILDREN`` (that
    counter only reflects *reaped* children, and pool workers are not
    waited on until pool shutdown), so every gather carries the
    worker's self-measured high-water mark home.
    """
    index, (kind, payload) = indexed
    handler = _HANDLERS.get(kind)
    if handler is None:
        raise SimulationError(f"unknown shard task kind {kind!r}")
    started = time.perf_counter()
    result = handler(payload)
    wall_s = time.perf_counter() - started
    obs.counter("parallel.shard.tasks", kind=kind)
    obs.observe("parallel.shard.task_s", wall_s, kind=kind)
    return index, result, obs.rusage_self_bytes()


# ------------------------------------------------------------------- pool --


class ShardPool:
    """A persistent worker pool with deterministic scatter/gather.

    Created once per run and reused for every scatter — workers keep
    their rehydrated state (and warm caches) across days, so the pool's
    startup cost amortises over the whole run. :meth:`run` returns
    results aligned with the submitted task order regardless of which
    worker finished what first, which is the property every caller's
    determinism argument rests on.
    """

    def __init__(
        self, workers: int, *, start_method: Optional[str] = None
    ) -> None:
        if workers < 1:
            raise SimulationError("ShardPool needs at least 1 worker")
        self.workers = workers
        context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._pool = context.Pool(processes=workers)
        self._closed = False
        obs.counter("parallel.shard.pools")

    def run(self, tasks: Sequence[Tuple[str, Any]]) -> List[Any]:
        """Scatter ``tasks`` over the workers; gather in task order.

        Uses ``imap_unordered`` so the queue-depth gauge tracks actual
        completion, then reassembles by scatter index — the returned
        list is positionally aligned with ``tasks``.
        """
        if self._closed:
            raise SimulationError("ShardPool is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        started = time.perf_counter()
        obs.gauge("parallel.shard.queue_depth", len(tasks))
        results: List[Any] = [None] * len(tasks)
        pending = len(tasks)
        worker_peak = 0
        for index, result, rss in self._pool.imap_unordered(
            _run_task, list(enumerate(tasks))
        ):
            results[index] = result
            if rss > worker_peak:
                worker_peak = rss
            pending -= 1
            obs.gauge("parallel.shard.queue_depth", pending)
        if worker_peak:
            # Fold live-worker peaks into the process gauge now: the
            # run's --profile summary reads it before pool teardown,
            # when RUSAGE_CHILDREN still reports 0 for these workers.
            obs.record_child_peak_rss(worker_peak)
        obs.observe(
            "parallel.shard.run_s",
            time.perf_counter() - started,
            kind=tasks[0][0],
        )
        return results

    def close(self) -> None:
        """Shut the workers down; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ------------------------------------------- experiment pool (singleton) --
# `python -m repro.experiments --shard-workers N` configures one pool for
# the process; experiments that decompose into independent units (§8.1)
# discover it here. The snapshot-dir handshake keeps the contract safe:
# a pool configured for one scenario never serves another's units.

_EXPERIMENT_POOL: Optional[ShardPool] = None
_EXPERIMENT_SNAPSHOT: Optional[str] = None


def configure_experiment_pool(
    workers: int,
    snapshot_dir: Optional[str],
    *,
    start_method: Optional[str] = None,
) -> Optional[ShardPool]:
    """Install the process-wide experiment pool.

    Returns ``None`` (and installs nothing) when ``snapshot_dir`` is
    ``None`` — without a cache entry workers cannot rehydrate, so unit
    dispatch silently stays serial.
    """
    global _EXPERIMENT_POOL, _EXPERIMENT_SNAPSHOT
    shutdown_experiment_pool()
    if workers < 1 or snapshot_dir is None:
        return None
    _EXPERIMENT_POOL = ShardPool(workers, start_method=start_method)
    _EXPERIMENT_SNAPSHOT = snapshot_dir
    return _EXPERIMENT_POOL


def experiment_pool() -> Optional[ShardPool]:
    """The configured experiment pool, if any."""
    return _EXPERIMENT_POOL


def shutdown_experiment_pool() -> None:
    """Tear down the experiment pool; safe to call when none exists."""
    global _EXPERIMENT_POOL, _EXPERIMENT_SNAPSHOT
    if _EXPERIMENT_POOL is not None:
        _EXPERIMENT_POOL.close()
    _EXPERIMENT_POOL = None
    _EXPERIMENT_SNAPSHOT = None


def dispatch_s8_units(result, units: Sequence[str]) -> Optional[Dict[str, Any]]:
    """Run §8.1 units on the experiment pool, if one matches ``result``.

    Returns ``{unit: StationaryReport}`` or ``None`` when no pool is
    configured or the pool serves a different scenario — the cache
    entry name embeds the config digest, so the match is exact, not
    just a seed comparison. The caller runs serially on ``None``.
    Results are gathered by unit name, so the merge is
    order-independent.
    """
    pool = _EXPERIMENT_POOL
    snapshot_dir = _EXPERIMENT_SNAPSHOT
    if pool is None or snapshot_dir is None:
        return None
    from pathlib import Path

    from repro.experiments.snapshot import config_digest

    if config_digest(result.config)[:12] not in Path(snapshot_dir).name:
        return None
    gathered = pool.run(
        [("s8_unit", (snapshot_dir, unit)) for unit in units]
    )
    return dict(zip(units, gathered))
