"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing subsystem-specific conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeoError(ReproError):
    """Invalid geospatial input (bad coordinates, resolution, polygon)."""


class ChainError(ReproError):
    """Blockchain-level failure (invalid block or inconsistent ledger)."""


class TransactionError(ChainError):
    """A transaction failed validation against the current ledger state."""


class InsufficientFunds(TransactionError):
    """A wallet lacked the HNT or DC required by a transaction."""


class StateChannelError(ChainError):
    """Invalid state-channel operation (overspend, double close, ...)."""


class PocError(ReproError):
    """Proof-of-Coverage protocol violation."""


class LoraWanError(ReproError):
    """LoRaWAN stack failure (join rejected, bad frame, no downlink slot)."""


class JoinError(LoraWanError):
    """Over-the-air activation failed (unknown device or bad key)."""


class P2pError(ReproError):
    """Peer-to-peer fabric failure (bad multiaddr, unknown peer)."""


class MultiaddrError(P2pError):
    """A multiaddr string could not be parsed."""


class SimulationError(ReproError):
    """Scenario or simulation engine misconfiguration."""


class ScenarioSpecError(SimulationError):
    """A declarative scenario spec failed to load or validate.

    Raised by :mod:`repro.scenarios` with field-level messages (the
    offending key path is always named) for unknown keys, type
    mismatches, constraint violations, and unresolvable references.
    """


class AnalysisError(ReproError):
    """An analysis was asked to run on data that cannot support it."""


class EtlError(ReproError):
    """The ETL store is missing, corrupt, or schema-incompatible."""
