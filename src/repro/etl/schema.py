"""The ETL store's SQL schema, mirrored on the DeWi blockchain-etl shape.

The paper's analyses ran "against the DeWi ETL database" — a Postgres
replica of the Helium chain with one typed table per entity rather than
raw serialized transactions (§3). This module declares the equivalent
SQLite schema:

* **History tables** (`blocks`, `transactions`, `poc_receipts`,
  `witnesses`, `rewards`, `transfers`, `packet_summaries`) are
  append-only rows keyed by ``(height, seq, …)``; the ingester writes
  them incrementally and idempotently (``INSERT OR REPLACE`` on the
  primary key).
* **State tables** (`hotspots`, `wallets`) are the folded ledger view —
  "who owns this now" — refreshed wholesale at the end of each ingest
  run, exactly the chain/ledger split the in-memory model uses.
* **Views** (`coverage_dots`, `hotspot_rewards`, `witness_edges`) are
  the read shapes the explorer API serves, backed by the indexes below.

The witness table flattens PoC receipts one row per report, with the
challengee↔witness great-circle distance and null-island flag
precomputed at ingest time so distance/validity analyses are single
indexed scans.
"""

from __future__ import annotations

from typing import Iterable

import sqlite3

__all__ = ["SCHEMA_VERSION", "DDL", "apply_schema", "TABLES"]

#: Bump when the table layout changes incompatibly. Stale stores are
#: detected on open and silently re-ingested by the scenario cache.
SCHEMA_VERSION = 1

#: History + state tables, in a deterministic order (used by content
#: digests and the test suite's full-store comparisons).
TABLES = (
    "blocks",
    "transactions",
    "poc_receipts",
    "witnesses",
    "rewards",
    "transfers",
    "packet_summaries",
    "hotspots",
    "wallets",
)

DDL: Iterable[str] = (
    """
    CREATE TABLE IF NOT EXISTS etl_meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS blocks (
        height    INTEGER PRIMARY KEY,
        unix_time INTEGER NOT NULL,
        prev_hash TEXT    NOT NULL,
        hash      TEXT    NOT NULL,
        txn_count INTEGER NOT NULL
    )
    """,
    # Every transaction, round-trippable: `payload` is the same JSON the
    # chain dump format uses, so the store is a self-contained replica.
    """
    CREATE TABLE IF NOT EXISTS transactions (
        height  INTEGER NOT NULL,
        seq     INTEGER NOT NULL,
        kind    TEXT    NOT NULL,
        payload TEXT    NOT NULL,
        PRIMARY KEY (height, seq)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS poc_receipts (
        height                    INTEGER NOT NULL,
        seq                       INTEGER NOT NULL,
        challenger                TEXT    NOT NULL,
        challengee                TEXT    NOT NULL,
        challengee_location_token TEXT    NOT NULL,
        witness_count             INTEGER NOT NULL,
        valid_witness_count       INTEGER NOT NULL,
        PRIMARY KEY (height, seq)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS witnesses (
        height                 INTEGER NOT NULL,
        seq                    INTEGER NOT NULL,
        witness_seq            INTEGER NOT NULL,
        challenger             TEXT    NOT NULL,
        challengee             TEXT    NOT NULL,
        challengee_location    TEXT    NOT NULL,
        witness                TEXT    NOT NULL,
        witness_location       TEXT    NOT NULL,
        rssi_dbm               REAL    NOT NULL,
        snr_db                 REAL    NOT NULL,
        frequency_mhz          REAL    NOT NULL,
        distance_km            REAL    NOT NULL,
        null_island            INTEGER NOT NULL,
        is_valid               INTEGER NOT NULL,
        invalid_reason         TEXT,
        PRIMARY KEY (height, seq, witness_seq)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS rewards (
        height       INTEGER NOT NULL,
        seq          INTEGER NOT NULL,
        share_seq    INTEGER NOT NULL,
        account      TEXT    NOT NULL,
        gateway      TEXT,
        amount_bones INTEGER NOT NULL,
        reward_type  TEXT    NOT NULL,
        PRIMARY KEY (height, seq, share_seq)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS transfers (
        height    INTEGER NOT NULL,
        seq       INTEGER NOT NULL,
        gateway   TEXT    NOT NULL,
        seller    TEXT    NOT NULL,
        buyer     TEXT    NOT NULL,
        amount_dc INTEGER NOT NULL,
        fee_dc    INTEGER NOT NULL,
        PRIMARY KEY (height, seq)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS packet_summaries (
        height      INTEGER NOT NULL,
        seq         INTEGER NOT NULL,
        summary_seq INTEGER NOT NULL,
        channel_id  TEXT    NOT NULL,
        owner       TEXT    NOT NULL,
        oui         INTEGER NOT NULL,
        hotspot     TEXT    NOT NULL,
        num_packets INTEGER NOT NULL,
        num_dcs     INTEGER NOT NULL,
        PRIMARY KEY (height, seq, summary_seq)
    )
    """,
    # State tables: folded ledger view, refreshed wholesale per ingest.
    # Row order (rowid) preserves ledger insertion order, which the
    # explorer relies on for parity with dict-iteration semantics.
    """
    CREATE TABLE IF NOT EXISTS hotspots (
        gateway           TEXT PRIMARY KEY,
        owner             TEXT NOT NULL,
        name              TEXT NOT NULL,
        location_token    TEXT,
        nonce             INTEGER NOT NULL,
        added_block       INTEGER NOT NULL,
        last_assert_block INTEGER
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS wallets (
        address   TEXT PRIMARY KEY,
        hnt_bones INTEGER NOT NULL,
        dc        INTEGER NOT NULL
    )
    """,
    # -- indexes (the query layer's hot paths) ---------------------------
    "CREATE INDEX IF NOT EXISTS idx_txn_kind ON transactions (kind, height, seq)",
    "CREATE INDEX IF NOT EXISTS idx_wit_witness ON witnesses (witness, height, seq, witness_seq)",
    "CREATE INDEX IF NOT EXISTS idx_wit_challengee ON witnesses (challengee, height, seq, witness_seq)",
    "CREATE INDEX IF NOT EXISTS idx_wit_valid ON witnesses (is_valid)",
    "CREATE INDEX IF NOT EXISTS idx_rew_gateway ON rewards (gateway)",
    "CREATE INDEX IF NOT EXISTS idx_rew_type ON rewards (reward_type)",
    "CREATE INDEX IF NOT EXISTS idx_xfer_gateway ON transfers (gateway)",
    "CREATE INDEX IF NOT EXISTS idx_xfer_buyer ON transfers (buyer)",
    "CREATE INDEX IF NOT EXISTS idx_xfer_seller ON transfers (seller)",
    "CREATE INDEX IF NOT EXISTS idx_pkt_hotspot ON packet_summaries (hotspot)",
    "CREATE INDEX IF NOT EXISTS idx_hs_owner ON hotspots (owner)",
    "CREATE INDEX IF NOT EXISTS idx_hs_name ON hotspots (lower(name))",
    # -- views (explorer read shapes) ------------------------------------
    """
    CREATE VIEW IF NOT EXISTS coverage_dots AS
        SELECT location_token, COUNT(*) AS hotspot_count
        FROM hotspots
        WHERE location_token IS NOT NULL
        GROUP BY location_token
    """,
    """
    CREATE VIEW IF NOT EXISTS hotspot_rewards AS
        SELECT gateway, SUM(amount_bones) AS total_bones
        FROM rewards
        WHERE gateway IS NOT NULL
        GROUP BY gateway
    """,
    """
    CREATE VIEW IF NOT EXISTS witness_edges AS
        SELECT challengee, witness, height, rssi_dbm, distance_km, is_valid
        FROM witnesses
    """,
)


def apply_schema(connection: sqlite3.Connection) -> None:
    """Create every table, index and view (idempotent)."""
    with connection:
        for statement in DDL:
            connection.execute(statement)
