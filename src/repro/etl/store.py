"""`EtlStore`: the typed, queryable replica the analyses run against.

Opens (or creates) the SQLite database declared in
:mod:`repro.etl.schema` and exposes the query surface three consumers
share:

* :class:`repro.core.explorer.Explorer` uses the ``query_*_page``
  methods as a drop-in backend (identical page objects, SQL underneath);
* the analysis modules (:mod:`repro.core.analysis.witnesses`,
  ``rewards``, ``resale``) call the row iterators, which yield exactly
  the tuples their chain-walking twins derive — parity is asserted by
  property tests;
* the HTTP explorer API (:mod:`repro.etl.server`) serves the same pages
  plus the coverage-dot view as JSON.

A store handle is cheap; the data lives in the ``.db`` file. Open a
fresh handle per thread — :class:`ReadReplicas` is the factory the HTTP
tiers use: one ``mode=ro`` connection per serving thread over a
WAL-journalled file, so concurrent readers never queue behind each
other or behind the ingest writer.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import quote

from repro import units
from repro.chain.crypto import Address
from repro.chain.naming import hotspot_name
from repro.core.explorer import HotspotPage, OwnerPage, WitnessEvent
from repro.errors import EtlError
from repro.etl import schema
from repro.geo.hexgrid import HexCell

__all__ = ["MAX_PAGE_LIMIT", "EtlStore", "ReadReplicas", "clamp_page"]

_MEMORY = ":memory:"

#: Hard ceiling on one page of results. Every paginated query surface
#: (HTTP routes and the store's own paging helpers) clamps to this, so
#: no single request can dump an unbounded table.
MAX_PAGE_LIMIT = 1000


def clamp_page(
    limit: int, offset: int = 0, max_limit: int = MAX_PAGE_LIMIT
) -> Tuple[int, int]:
    """Validated ``(limit, offset)`` for a paged query.

    Raises :class:`ValueError` on non-integers or negatives (the HTTP
    layer maps that to a 400); a too-large limit silently clamps to
    ``max_limit``. Offsets stay unbounded upward — paging deep is
    legitimate, dumping an unbounded page is not. Notably ``limit=-1``
    must never reach SQLite, where a negative ``LIMIT`` means
    "no limit".
    """
    limit = int(limit)
    offset = int(offset)
    if limit < 0:
        raise ValueError(f"limit must be >= 0, got {limit}")
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    return min(limit, max_limit), offset


class EtlStore:
    """One handle onto an ETL database (see module docstring).

    Args:
        path: database file, or ``":memory:"`` for an ephemeral store.
        create: apply the schema to an empty database. When False, an
            empty or missing database raises :class:`EtlError`.
        read_only: open the file through SQLite's ``mode=ro`` URI — the
            handle can never write, which is what the serving tiers hand
            to each worker thread. Requires a file-backed store.

    File-backed stores run with ``journal_mode=WAL`` (set on every
    writable open; the mode is persistent), so readers see consistent
    snapshots and never block behind the ingest writer, and
    ``synchronous=NORMAL`` — the WAL-recommended durability point.

    Raises:
        EtlError: if the file is not an ETL store, is corrupt, or was
            written by an incompatible schema version.
    """

    def __init__(
        self,
        path: Union[str, Path] = _MEMORY,
        create: bool = True,
        read_only: bool = False,
    ) -> None:
        self.path = str(path)
        self.read_only = read_only
        if read_only and self.path == _MEMORY:
            raise EtlError("read-only replicas need a file-backed store")
        if (read_only or not create) and (
            self.path != _MEMORY and not Path(self.path).exists()
        ):
            raise EtlError(f"no ETL store at {self.path}")
        try:
            if read_only:
                # mode=ro cannot write even by accident; isolation_level
                # None leaves transaction control to read_snapshot().
                uri = "file:{}?mode=ro".format(quote(str(Path(self.path).resolve())))
                self.connection = sqlite3.connect(
                    uri, uri=True, check_same_thread=False,
                    isolation_level=None,
                )
                self.connection.execute("PRAGMA busy_timeout=5000")
            else:
                # check_same_thread=False: the legacy HTTP server may
                # share one in-memory handle across request threads
                # behind its own lock.
                self.connection = sqlite3.connect(
                    self.path, check_same_thread=False
                )
                self.connection.execute("PRAGMA synchronous=NORMAL")
                self.connection.execute("PRAGMA busy_timeout=5000")
                if self.path != _MEMORY:
                    # Persistent: every later open (including mode=ro
                    # replicas) finds the database already in WAL.
                    self.connection.execute("PRAGMA journal_mode=WAL")
            existing = self._schema_version()
        except sqlite3.DatabaseError as exc:
            raise EtlError(f"unreadable ETL store {self.path}: {exc}") from exc
        if existing is None:
            if not create or read_only:
                self.connection.close()
                raise EtlError(f"{self.path} is not an ETL store")
            schema.apply_schema(self.connection)
            with self.connection:
                self._set_meta("schema_version", str(schema.SCHEMA_VERSION))
        elif existing != schema.SCHEMA_VERSION:
            self.connection.close()
            raise EtlError(
                f"ETL store {self.path} has schema {existing}, "
                f"expected {schema.SCHEMA_VERSION}"
            )

    @property
    def journal_mode(self) -> str:
        """The active SQLite journal mode (``wal`` for file stores)."""
        return str(
            self.connection.execute("PRAGMA journal_mode").fetchone()[0]
        ).lower()

    def _schema_version(self) -> Optional[int]:
        try:
            row = self.connection.execute(
                "SELECT value FROM etl_meta WHERE key='schema_version'"
            ).fetchone()
        except sqlite3.OperationalError:
            return None  # no etl_meta table: empty or foreign database
        return None if row is None else int(row[0])

    def reopen(self, read_only: bool = False) -> "EtlStore":
        """A fresh handle onto the same database (for other threads)."""
        return EtlStore(self.path, create=False, read_only=read_only)

    @contextmanager
    def read_snapshot(self) -> Iterator["EtlStore"]:
        """All reads inside the block see one committed snapshot.

        On a read-only WAL replica this wraps the block in an explicit
        ``BEGIN``/``COMMIT``, so a multi-query page (checkpoint plus the
        rows it covers) can never straddle an ingest commit — the
        property the checkpoint-keyed response cache needs to be exact.
        On a writable or in-memory handle it is a no-op (those callers
        already serialise access themselves).
        """
        if not self.read_only:
            yield self
            return
        self.connection.execute("BEGIN")
        try:
            yield self
        finally:
            self.connection.execute("COMMIT")

    def close(self) -> None:
        """Close the underlying connection."""
        self.connection.close()

    def __enter__(self) -> "EtlStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- meta / checkpoints ------------------------------------------------

    def _set_meta(self, key: str, value: str) -> None:
        self.connection.execute(
            "INSERT OR REPLACE INTO etl_meta (key, value) VALUES (?, ?)",
            (key, value),
        )

    def get_meta(self, key: str) -> Optional[str]:
        """Read one metadata value (``None`` when unset)."""
        row = self.connection.execute(
            "SELECT value FROM etl_meta WHERE key=?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    @property
    def checkpoint_height(self) -> int:
        """Last committed block height; ``-1`` for a virgin store."""
        value = self.get_meta("checkpoint_height")
        return -1 if value is None else int(value)

    def counts(self) -> Dict[str, int]:
        """Row counts per table (diagnostics and the ``stats`` endpoint)."""
        return {
            table: int(
                self.connection.execute(
                    f"SELECT COUNT(*) FROM {table}"  # noqa: S608 - fixed names
                ).fetchone()[0]
            )
            for table in schema.TABLES
        }

    def content_digest(self) -> str:
        """Order-independent digest of every table's content.

        Two stores with identical rows (regardless of how they got
        there — fresh full ingest or checkpointed resume) digest
        equal; the acceptance test for idempotent resume relies on it.
        """
        import hashlib

        digest = hashlib.sha256()
        for table in schema.TABLES:
            digest.update(table.encode())
            cursor = self.connection.execute(
                f"SELECT * FROM {table}"  # noqa: S608 - fixed names
            )
            for row in sorted(repr(r) for r in cursor):
                digest.update(row.encode())
        return digest.hexdigest()

    # -- explorer page queries ---------------------------------------------

    def query_hotspot_page(
        self, gateway: Address, recent_limit: int = 25
    ) -> Optional[HotspotPage]:
        """The explorer page for a hotspot, or ``None`` if unknown."""
        row = self.connection.execute(
            "SELECT owner, name, location_token, nonce, added_block "
            "FROM hotspots WHERE gateway=?",
            (gateway,),
        ).fetchone()
        if row is None:
            return None
        owner, name, token, nonce, added_block = row
        location = None
        if token is not None:
            location = HexCell.from_token(token).center()
        rewards = self.connection.execute(
            "SELECT COALESCE(SUM(amount_bones), 0) FROM rewards WHERE gateway=?",
            (gateway,),
        ).fetchone()[0]
        packets = self.connection.execute(
            "SELECT COALESCE(SUM(num_packets), 0) FROM packet_summaries "
            "WHERE hotspot=?",
            (gateway,),
        ).fetchone()[0]
        transfers = self.connection.execute(
            "SELECT COUNT(*) FROM transfers WHERE gateway=?", (gateway,)
        ).fetchone()[0]
        return HotspotPage(
            gateway=gateway,
            name=name,
            owner=owner,
            location=location,
            location_token=token,
            added_block=int(added_block),
            assert_count=int(nonce),
            total_rewards_hnt=units.bones_to_hnt(int(rewards)),
            packets_ferried=int(packets),
            transfer_count=int(transfers),
            recent_witnesses=self.witness_events(
                gateway, direction="witnessing", limit=recent_limit
            ),
            recent_witnessed_by=self.witness_events(
                gateway, direction="witnessed_by", limit=recent_limit
            ),
        )

    def witness_events(
        self, gateway: Address, direction: str, limit: int = 25
    ) -> List[WitnessEvent]:
        """The most recent witness events touching a hotspot.

        ``direction="witnessing"`` lists challenges this hotspot heard
        (counterparty is the challengee); ``"witnessed_by"`` lists
        reports about this hotspot's own beacons (counterparty is the
        witness). Events come back oldest-first, like the in-memory
        explorer's bounded recent lists.
        """
        if direction == "witnessing":
            where, counterparty = "witness", "challengee"
        elif direction == "witnessed_by":
            where, counterparty = "challengee", "witness"
        else:
            raise EtlError(f"unknown witness direction {direction!r}")
        limit, _ = clamp_page(limit)
        rows = self.connection.execute(
            f"SELECT height, {counterparty}, rssi_dbm, distance_km, is_valid "
            f"FROM witnesses WHERE {where}=? "
            "ORDER BY height DESC, seq DESC, witness_seq DESC LIMIT ?",
            (gateway, limit),
        ).fetchall()
        return [
            WitnessEvent(
                block=int(height),
                counterparty=other,
                counterparty_name=hotspot_name(other),
                rssi_dbm=float(rssi),
                distance_km=float(distance),
                valid=bool(valid),
            )
            for height, other, rssi, distance, valid in reversed(rows)
        ]

    def query_owner_page(self, wallet: Address) -> Optional[OwnerPage]:
        """The explorer page for a wallet, or ``None`` if unknown."""
        fleet = self.connection.execute(
            "SELECT gateway, name FROM hotspots WHERE owner=? ORDER BY rowid",
            (wallet,),
        ).fetchall()
        state = self.connection.execute(
            "SELECT hnt_bones, dc FROM wallets WHERE address=?", (wallet,)
        ).fetchone()
        if not fleet and state is None:
            return None
        rewards = self.connection.execute(
            "SELECT COALESCE(SUM(r.amount_bones), 0) FROM rewards r "
            "JOIN hotspots h ON h.gateway = r.gateway WHERE h.owner=?",
            (wallet,),
        ).fetchone()[0]
        return OwnerPage(
            owner=wallet,
            hotspot_count=len(fleet),
            hotspots=[(gateway, name) for gateway, name in fleet],
            hnt_balance=(
                units.bones_to_hnt(int(state[0])) if state is not None else 0.0
            ),
            dc_balance=int(state[1]) if state is not None else 0,
            total_rewards_hnt=units.bones_to_hnt(int(rewards)),
        )

    def hotspot_rows(self) -> List[Tuple[Address, str, Optional[str]]]:
        """``(gateway, name, location_token)`` in ledger insertion order."""
        return self.connection.execute(
            "SELECT gateway, name, location_token FROM hotspots ORDER BY rowid"
        ).fetchall()

    def hotspot_page_rows(
        self, limit: int = 50, offset: int = 0
    ) -> List[Tuple[Address, str, Optional[str]]]:
        """One clamped page of :meth:`hotspot_rows`, paged in SQL."""
        limit, offset = clamp_page(limit, offset)
        return self.connection.execute(
            "SELECT gateway, name, location_token FROM hotspots "
            "ORDER BY rowid LIMIT ? OFFSET ?",
            (limit, offset),
        ).fetchall()

    def hotspot_cursor_rows(
        self, after_rowid: int = 0, limit: int = 50
    ) -> List[Tuple[int, Address, str, Optional[str]]]:
        """Keyset page: ``(rowid, gateway, name, token)`` after a rowid.

        The serving tier's cursor pagination walks ``rowid`` (ledger
        insertion order, stable across incremental ingests because the
        ledger only appends) instead of ``OFFSET``, so a walk is O(page)
        per request at any depth and never skips or repeats a row that
        existed when the walk started. Fetches one row beyond ``limit``
        so the caller can tell whether a next page exists.
        """
        limit, _ = clamp_page(limit)
        return self.connection.execute(
            "SELECT rowid, gateway, name, location_token FROM hotspots "
            "WHERE rowid > ? ORDER BY rowid LIMIT ?",
            (int(after_rowid), limit + 1),
        ).fetchall()

    def gateway_by_name(self, name: str) -> Optional[Address]:
        """The gateway address for a three-word name (case-insensitive).

        Unlike the in-memory explorer's name index (built once per
        handle), this reads the live table — a hotspot added by an
        ingest that ran after the handle opened is still found.
        """
        row = self.connection.execute(
            "SELECT gateway FROM hotspots WHERE name=? COLLATE NOCASE",
            (name,),
        ).fetchone()
        return None if row is None else row[0]

    def search_names(
        self, query: str, limit: int = 10
    ) -> List[Tuple[Address, str]]:
        """Substring search over hotspot names, sorted by name."""
        limit, _ = clamp_page(limit)
        needle = query.lower()
        return self.connection.execute(
            "SELECT gateway, name FROM hotspots "
            "WHERE instr(lower(name), ?) > 0 ORDER BY name LIMIT ?",
            (needle, limit),
        ).fetchall()

    @property
    def hotspot_count(self) -> int:
        """Number of hotspots on the ledger (state table)."""
        return int(
            self.connection.execute("SELECT COUNT(*) FROM hotspots").fetchone()[0]
        )

    def coverage_dot_rows(self) -> List[Tuple[str, float, float, int]]:
        """``(token, lat, lon, hotspot_count)`` per occupied hex cell."""
        rows = self.connection.execute(
            "SELECT location_token, hotspot_count FROM coverage_dots "
            "ORDER BY location_token"
        ).fetchall()
        dots = []
        for token, count in rows:
            center = HexCell.from_token(token).center()
            dots.append((token, center.lat, center.lon, int(count)))
        return dots

    # -- analysis row iterators --------------------------------------------
    # Each yields exactly what the chain-walking analysis derives, in the
    # same (height, seq, …) order, so the numeric results are identical.

    def _window(
        self, start_height: int, end_height: Optional[int]
    ) -> Tuple[str, Tuple[int, ...]]:
        if end_height is None:
            return "height >= ?", (start_height,)
        return "height >= ? AND height <= ?", (start_height, end_height)

    def witness_distances(
        self,
        start_height: int = 0,
        end_height: Optional[int] = None,
    ) -> List[float]:
        """Distances of valid, non-null-island witness reports (km)."""
        where, params = self._window(start_height, end_height)
        rows = self.connection.execute(
            "SELECT distance_km FROM witnesses "
            f"WHERE is_valid=1 AND null_island=0 AND {where} "
            "ORDER BY height, seq, witness_seq",
            params,
        ).fetchall()
        return [float(r[0]) for r in rows]

    def witness_rssis(
        self,
        start_height: int = 0,
        end_height: Optional[int] = None,
        valid_only: bool = True,
    ) -> List[float]:
        """RSSI values of witness reports over a block window."""
        where, params = self._window(start_height, end_height)
        valid = "is_valid=1 AND " if valid_only else ""
        rows = self.connection.execute(
            f"SELECT rssi_dbm FROM witnesses WHERE {valid}{where} "
            "ORDER BY height, seq, witness_seq",
            params,
        ).fetchall()
        return [float(r[0]) for r in rows]

    def receipt_valid_witness_counts(self) -> List[int]:
        """Valid-witness count per challenge, including zero-witness ones."""
        rows = self.connection.execute(
            "SELECT valid_witness_count FROM poc_receipts ORDER BY height, seq"
        ).fetchall()
        return [int(r[0]) for r in rows]

    def witness_validity_breakdown(self) -> Dict[str, int]:
        """Witness report counts by validity outcome/reason."""
        breakdown: Dict[str, int] = {"valid": 0}
        rows = self.connection.execute(
            "SELECT is_valid, "
            "CASE WHEN invalid_reason IS NULL OR invalid_reason = '' "
            "THEN 'unspecified' ELSE invalid_reason END, COUNT(*) "
            "FROM witnesses GROUP BY is_valid, invalid_reason"
        ).fetchall()
        for valid, reason, count in rows:
            if valid:
                breakdown["valid"] += int(count)
            else:
                breakdown[reason] = breakdown.get(reason, 0) + int(count)
        return breakdown

    def reward_share_rows(
        self,
    ) -> Iterator[Tuple[int, Address, Optional[Address], int, str]]:
        """``(height, account, gateway, amount_bones, reward_type)`` in chain order."""
        cursor = self.connection.execute(
            "SELECT height, account, gateway, amount_bones, reward_type "
            "FROM rewards ORDER BY height, seq, share_seq"
        )
        for height, account, gateway, amount, reward_type in cursor:
            yield int(height), account, gateway, int(amount), reward_type

    def rewards_by_gateway(self) -> Dict[Address, int]:
        """Lifetime reward bones per gateway."""
        rows = self.connection.execute(
            "SELECT gateway, total_bones FROM hotspot_rewards"
        ).fetchall()
        return {gateway: int(total) for gateway, total in rows}

    def rewards_by_type(self) -> Dict[str, int]:
        """Total reward bones per reward class."""
        rows = self.connection.execute(
            "SELECT reward_type, SUM(amount_bones) FROM rewards "
            "GROUP BY reward_type"
        ).fetchall()
        return {reward_type: int(total) for reward_type, total in rows}

    def gateway_added_blocks(self) -> Dict[Address, int]:
        """Block at which each hotspot was added (ledger insertion order)."""
        rows = self.connection.execute(
            "SELECT gateway, added_block FROM hotspots ORDER BY rowid"
        ).fetchall()
        return {gateway: int(block) for gateway, block in rows}

    def transfer_rows(
        self,
    ) -> Iterator[Tuple[int, Address, Address, Address, int]]:
        """``(height, gateway, seller, buyer, amount_dc)`` in chain order."""
        cursor = self.connection.execute(
            "SELECT height, gateway, seller, buyer, amount_dc "
            "FROM transfers ORDER BY height, seq"
        )
        for height, gateway, seller, buyer, amount_dc in cursor:
            yield int(height), gateway, seller, buyer, int(amount_dc)


class ReadReplicas:
    """Per-thread read-only :class:`EtlStore` handles over one file.

    The connection factory both HTTP tiers draw from: the first call on
    a thread opens a ``mode=ro`` connection onto the WAL database and
    caches it in thread-local storage, so request threads never share a
    handle (no lock, no ``database is locked`` queueing) while the
    ingest writer commits concurrently.

    >>> replicas = ReadReplicas("/tmp/etl.db")        # doctest: +SKIP
    >>> store = replicas.get()  # this thread's handle # doctest: +SKIP
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._opened: List[EtlStore] = []
        # Fail fast (missing file, wrong schema) before any worker runs.
        EtlStore(self.path, create=False, read_only=True).close()

    def get(self) -> EtlStore:
        """This thread's read-only store, opened on first use."""
        store = getattr(self._tls, "store", None)
        if store is None:
            store = EtlStore(self.path, create=False, read_only=True)
            self._tls.store = store
            with self._lock:
                self._opened.append(store)
        return store

    def close_all(self) -> None:
        """Close every replica opened so far (server shutdown)."""
        with self._lock:
            stores, self._opened = self._opened, []
        for store in stores:
            try:
                store.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        self._tls = threading.local()
