"""DeWi-style columnar ETL replica of the simulated chain.

The paper ran its entire analysis pipeline "against the DeWi ETL
database" — a typed, queryable replica of the Helium blockchain — rather
than walking live chain objects (§3). This package is that layer for
the reproduction:

* :mod:`repro.etl.schema` — the SQLite schema (typed history tables,
  folded state tables, indexed views);
* :mod:`repro.etl.ingest` — the incremental, checkpointed,
  idempotent chain follower;
* :mod:`repro.etl.store` — :class:`EtlStore`, the query layer the
  explorer and analyses run against as a drop-in backend;
* :mod:`repro.etl.server` — the read-only JSON explorer API;
* :mod:`repro.etl.cli` — ``python -m repro.etl`` (ingest/query/serve).
"""

from repro.etl.ingest import IngestReport, ingest_chain
from repro.etl.schema import SCHEMA_VERSION
from repro.etl.store import EtlStore

__all__ = ["EtlStore", "IngestReport", "ingest_chain", "SCHEMA_VERSION"]
