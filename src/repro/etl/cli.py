"""``python -m repro.etl`` — ingest, query and serve the ETL replica.

Usage::

    python -m repro.etl ingest --scenario small --db /tmp/etl.db
    python -m repro.etl query  --db /tmp/etl.db stats
    python -m repro.etl query  --db /tmp/etl.db hotspot "Joyful Pink Skunk"
    python -m repro.etl query  --db /tmp/etl.db owner wal_…
    python -m repro.etl query  --db /tmp/etl.db search joyful
    python -m repro.etl serve  --db /tmp/etl.db --port 8600
    python -m repro.etl --trace etl.jsonl ingest --db /tmp/etl.db

``ingest`` builds (or loads from the scenario cache) the named scenario
and loads every block above the store's checkpoint — re-running it after
the chain grew only ingests the new blocks. ``query`` prints JSON, the
same documents the HTTP API serves. ``serve`` starts the read-only
explorer API; pass ``--scenario`` to auto-ingest a missing database
first.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.errors import EtlError, ReproError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.etl",
        description="DeWi-style ETL replica: ingest, query, serve.",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="append JSON-lines trace events (ingest batches, requests) "
        "here; equivalent to setting REPRO_TRACE",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser("ingest", help="ingest a scenario chain into a store")
    ingest.add_argument("--db", required=True, help="path of the SQLite store")
    ingest.add_argument(
        "--scenario", default="paper", metavar="NAME|FILE",
        help="registry name or a path to a .json/.toml scenario spec file",
    )
    ingest.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's own seed (default: keep it)",
    )
    ingest.add_argument(
        "--batch", type=int, default=None, metavar="BLOCKS",
        help="blocks per commit (default 512)",
    )

    query = sub.add_parser("query", help="print one query result as JSON")
    query.add_argument("--db", required=True)
    query.add_argument(
        "what",
        help="stats | hotspot <name-or-address> | owner <address> | search <q>",
    )
    query.add_argument("arg", nargs="?", default=None)

    serve = sub.add_parser("serve", help="serve the read-only explorer API")
    serve.add_argument("--db", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8600)
    serve.add_argument(
        "--scenario", default=None, metavar="NAME|FILE",
        help="ingest this scenario (registry name or spec-file path) "
        "first if the store is missing/stale",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's own seed (default: keep it)",
    )
    serve.add_argument("--quiet", action="store_true")
    return parser


def _cmd_ingest(args) -> int:
    from repro.etl.ingest import DEFAULT_BATCH_BLOCKS, ingest_chain
    from repro.etl.store import EtlStore
    from repro.experiments.context import get_result
    from repro.scenarios import resolve

    resolved = resolve(args.scenario, seed=args.seed)
    result = get_result(resolved)
    store = EtlStore(args.db)
    report = ingest_chain(
        result.chain, store,
        batch_blocks=args.batch or DEFAULT_BATCH_BLOCKS,
    )
    print(json.dumps({
        "db": args.db,
        "scenario": resolved.label,
        "scenario_digest": resolved.digest,
        "seed": resolved.config.seed,
        "start_height": report.start_height,
        "tip_height": report.tip_height,
        "blocks_ingested": report.blocks_ingested,
        "transactions_ingested": report.transactions_ingested,
        "up_to_date": report.up_to_date,
    }, indent=2))
    return 0


def _cmd_query(args) -> int:
    from repro.core.explorer import Explorer
    from repro.etl.server import owner_to_json, page_to_json
    from repro.etl.store import EtlStore

    store = EtlStore(args.db, create=False)
    explorer = Explorer.from_store(store)
    if args.what == "stats":
        payload = {
            "checkpoint_height": store.checkpoint_height,
            "tip_hash": store.get_meta("tip_hash"),
            "tables": store.counts(),
        }
    elif args.what == "hotspot":
        key = _require_arg(args, "hotspot <name-or-address>")
        page = (
            explorer.hotspot(key)
            if key.startswith("hs_")
            else explorer.hotspot_by_name(key)
        )
        payload = page_to_json(page)
    elif args.what == "owner":
        payload = owner_to_json(
            explorer.owner(_require_arg(args, "owner <address>"))
        )
    elif args.what == "search":
        needle = _require_arg(args, "search <q>")
        payload = {
            "query": needle,
            "matches": [
                {"gateway": gateway, "name": name}
                for gateway, name in explorer.search(needle)
            ],
        }
    else:
        raise EtlError(f"unknown query {args.what!r}")
    print(json.dumps(payload, indent=2))
    return 0


def _require_arg(args, usage: str) -> str:
    if args.arg is None:
        raise EtlError(f"usage: query {usage}")
    return args.arg


def _cmd_serve(args) -> int:
    from repro.etl.server import serve
    from repro.etl.store import EtlStore

    store = _open_or_ingest(args.db, args.scenario, args.seed)
    serve(store, host=args.host, port=args.port, verbose=not args.quiet)
    return 0


def _open_or_ingest(db: str, scenario: Optional[str], seed: Optional[int]):
    from repro.etl.store import EtlStore

    try:
        return EtlStore(db, create=False)
    except EtlError:
        if scenario is None:
            raise
    # Missing or stale store, and a scenario to rebuild it from.
    from repro.etl.ingest import ingest_chain
    from repro.experiments.context import get_result

    Path(db).unlink(missing_ok=True)
    result = get_result(scenario, seed)
    store = EtlStore(db)
    ingest_chain(result.chain, store)
    return store


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.trace:
        from repro import obs

        obs.configure_trace(args.trace)
    handlers = {
        "ingest": _cmd_ingest,
        "query": _cmd_query,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
