"""Read-only HTTP explorer API over an ETL store (stdlib only).

The serving surface the paper's case studies assume: hotspot pages,
owner wallets, witness lists and the coverage dot map, as JSON over
plain ``http.server``. Routes:

========================================  =====================================
``GET /``                                 route index
``GET /stats``                            table counts + checkpoint height
``GET /hotspots?limit=&offset=``          paginated hotspot listing
``GET /hotspot/<name-or-address>``        one hotspot page (``hs_…`` address,
                                          or URL-encoded three-word name)
``GET /hotspot/<id>/witnesses?limit=``    witness events for one hotspot
``GET /owner/<address>``                  one wallet page
``GET /coverage/dots``                    (lat, lon, count) per occupied hex
``GET /search?q=&limit=``                 substring search over names
========================================  =====================================

Errors come back as ``{"error": …}`` with a 4xx status. The server is
strictly read-only — there is no mutating route — and serialises store
access behind one lock, which is plenty for an explorer UI while the
heavy lifting stays in indexed SQL.

>>> server = create_server(store, port=0)           # doctest: +SKIP
>>> threading.Thread(target=server.serve_forever).start()  # doctest: +SKIP
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Tuple
from urllib.parse import parse_qs, unquote, urlparse

from repro.core.explorer import Explorer, HotspotPage, OwnerPage, WitnessEvent
from repro.errors import AnalysisError
from repro.etl.store import EtlStore

__all__ = ["create_server", "serve", "page_to_json", "owner_to_json"]


def _event_to_json(event: WitnessEvent) -> Dict[str, Any]:
    return {
        "block": event.block,
        "counterparty": event.counterparty,
        "counterparty_name": event.counterparty_name,
        "rssi_dbm": event.rssi_dbm,
        "distance_km": event.distance_km,
        "valid": event.valid,
    }


def page_to_json(page: HotspotPage) -> Dict[str, Any]:
    """A hotspot page as the JSON document the API serves."""
    return {
        "gateway": page.gateway,
        "name": page.name,
        "owner": page.owner,
        "location": (
            None
            if page.location is None
            else {"lat": page.location.lat, "lon": page.location.lon}
        ),
        "location_token": page.location_token,
        "added_block": page.added_block,
        "assert_count": page.assert_count,
        "total_rewards_hnt": page.total_rewards_hnt,
        "packets_ferried": page.packets_ferried,
        "transfer_count": page.transfer_count,
        "recent_witnesses": [
            _event_to_json(e) for e in page.recent_witnesses
        ],
        "recent_witnessed_by": [
            _event_to_json(e) for e in page.recent_witnessed_by
        ],
    }


def owner_to_json(page: OwnerPage) -> Dict[str, Any]:
    """An owner page as the JSON document the API serves."""
    return {
        "owner": page.owner,
        "hotspot_count": page.hotspot_count,
        "hotspots": [
            {"gateway": gateway, "name": name}
            for gateway, name in page.hotspots
        ],
        "hnt_balance": page.hnt_balance,
        "dc_balance": page.dc_balance,
        "total_rewards_hnt": page.total_rewards_hnt,
    }


_ROUTES = [
    "/stats",
    "/hotspots?limit=&offset=",
    "/hotspot/<name-or-address>",
    "/hotspot/<name-or-address>/witnesses?limit=",
    "/owner/<address>",
    "/coverage/dots",
    "/search?q=&limit=",
]


class _ExplorerHandler(BaseHTTPRequestHandler):
    """Routes GET requests onto the store-backed explorer."""

    server_version = "repro-etl/1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _reply(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int = 404) -> None:
        self._reply({"error": message}, status=status)

    def _int_param(self, params: Dict[str, List[str]], name: str, default: int) -> int:
        values = params.get(name)
        if not values:
            return default
        return int(values[0])

    # -- dispatch ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        parts = [unquote(p) for p in parsed.path.split("/") if p]
        params = parse_qs(parsed.query)
        server: "_ExplorerServer" = self.server  # type: ignore[assignment]
        try:
            with server.lock:
                self._route(server.explorer, server.store, parts, params)
        except (ValueError, KeyError) as exc:
            self._error(f"bad request: {exc}", status=400)
        except AnalysisError as exc:
            self._error(str(exc), status=404)

    def _route(
        self,
        explorer: Explorer,
        store: EtlStore,
        parts: List[str],
        params: Dict[str, List[str]],
    ) -> None:
        if not parts:
            self._reply({"service": "repro.etl explorer", "routes": _ROUTES})
        elif parts == ["stats"]:
            self._reply({
                "checkpoint_height": store.checkpoint_height,
                "tip_hash": store.get_meta("tip_hash"),
                "tables": store.counts(),
            })
        elif parts == ["hotspots"]:
            limit = self._int_param(params, "limit", 50)
            offset = self._int_param(params, "offset", 0)
            rows = store.hotspot_rows()[offset : offset + limit]
            self._reply({
                "total": store.hotspot_count,
                "hotspots": [
                    {"gateway": g, "name": n, "location_token": t}
                    for g, n, t in rows
                ],
            })
        elif parts[0] == "hotspot" and len(parts) in (2, 3):
            page = self._lookup_hotspot(explorer, parts[1])
            if len(parts) == 2:
                self._reply(page_to_json(page))
            elif parts[2] == "witnesses":
                limit = self._int_param(params, "limit", 100)
                events = store.witness_events(
                    page.gateway, direction="witnessing", limit=limit
                )
                self._reply({
                    "gateway": page.gateway,
                    "name": page.name,
                    "witnesses": [_event_to_json(e) for e in events],
                })
            else:
                self._error(f"unknown hotspot subresource: {parts[2]}")
        elif parts[0] == "owner" and len(parts) == 2:
            self._reply(owner_to_json(explorer.owner(parts[1])))
        elif parts == ["coverage", "dots"]:
            dots = store.coverage_dot_rows()
            self._reply({
                "dots": [
                    {"token": token, "lat": lat, "lon": lon, "hotspots": count}
                    for token, lat, lon, count in dots
                ],
            })
        elif parts == ["search"]:
            query = params.get("q", [""])[0]
            limit = self._int_param(params, "limit", 10)
            matches = explorer.search(query, limit=limit) if query else []
            self._reply({
                "query": query,
                "matches": [
                    {"gateway": gateway, "name": name}
                    for gateway, name in matches
                ],
            })
        else:
            self._error(f"no such route: /{'/'.join(parts)}")

    def _lookup_hotspot(self, explorer: Explorer, key: str) -> HotspotPage:
        if key.startswith("hs_"):
            return explorer.hotspot(key)
        return explorer.hotspot_by_name(key.replace("-", " "))


class _ExplorerServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared store + explorer."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: EtlStore,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _ExplorerHandler)
        self.store = store
        self.explorer = Explorer.from_store(store)
        self.lock = threading.Lock()
        self.verbose = verbose


def create_server(
    store: EtlStore,
    host: str = "127.0.0.1",
    port: int = 8600,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build (but do not start) the explorer HTTP server.

    Pass ``port=0`` to bind an ephemeral port (``server.server_address``
    tells you which — handy in tests).
    """
    return _ExplorerServer((host, port), store, verbose=verbose)


def serve(
    store: EtlStore,
    host: str = "127.0.0.1",
    port: int = 8600,
    verbose: bool = True,
) -> None:
    """Serve the explorer API until interrupted."""
    server = create_server(store, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro.etl explorer listening on http://{bound_host}:{bound_port}/")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
