"""Read-only HTTP explorer API over an ETL store (stdlib only).

The serving surface the paper's case studies assume: hotspot pages,
owner wallets, witness lists and the coverage dot map, as JSON over
plain ``http.server``. Routes:

========================================  =====================================
``GET /``                                 route index
``GET /stats``                            table counts + checkpoint height
``GET /hotspots?limit=&offset=``          paginated hotspot listing
``GET /hotspot/<name-or-address>``        one hotspot page (``hs_…`` address,
                                          or URL-encoded three-word name)
``GET /hotspot/<id>/witnesses?limit=``    witness events for one hotspot
``GET /owner/<address>``                  one wallet page
``GET /coverage/dots``                    (lat, lon, count) per occupied hex
``GET /search?q=&limit=``                 substring search over names
``GET /metrics``                          process metrics (JSON; add
                                          ``?format=prometheus`` for text)
========================================  =====================================

Errors come back as ``{"error": …}`` with a 4xx status: 404 for unknown
resources, 400 for malformed query parameters — a negative or
non-integer ``limit``/``offset`` is rejected, and an oversized ``limit``
clamps to :data:`repro.etl.store.MAX_PAGE_LIMIT` so no request dumps an
unbounded table. ``HEAD`` is answered with the same headers (correct
``Content-Length``) and no body; any other method is a ``405`` with an
``Allow: GET, HEAD`` header. The server is strictly read-only — there
is no mutating route. File-backed stores give every request thread its
own read-only WAL connection (:class:`repro.etl.store.ReadReplicas`),
so readers run concurrently; only an in-memory store falls back to one
shared handle behind a lock, since ``:memory:`` databases are invisible
to other connections. This tier stays the simple explorer; the
production front end with response caching, cursor pagination and load
shedding is :mod:`repro.serve`.

Every request increments ``http.requests{route=,status=}`` and lands in
the ``http.latency_s{route=}`` histogram (:mod:`repro.obs`); the
``/metrics`` route serves those registers live without touching the
store lock, and each request emits one ``http.request`` trace event
when tracing is active.

>>> server = create_server(store, port=0)           # doctest: +SKIP
>>> threading.Thread(target=server.serve_forever).start()  # doctest: +SKIP
"""

from __future__ import annotations

import json
import threading
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlparse

from repro import obs
from repro.core.explorer import Explorer, HotspotPage, OwnerPage, WitnessEvent
from repro.errors import AnalysisError
from repro.etl.store import MAX_PAGE_LIMIT, EtlStore, ReadReplicas

__all__ = ["create_server", "serve", "page_to_json", "owner_to_json"]


def _event_to_json(event: WitnessEvent) -> Dict[str, Any]:
    return {
        "block": event.block,
        "counterparty": event.counterparty,
        "counterparty_name": event.counterparty_name,
        "rssi_dbm": event.rssi_dbm,
        "distance_km": event.distance_km,
        "valid": event.valid,
    }


def page_to_json(page: HotspotPage) -> Dict[str, Any]:
    """A hotspot page as the JSON document the API serves."""
    return {
        "gateway": page.gateway,
        "name": page.name,
        "owner": page.owner,
        "location": (
            None
            if page.location is None
            else {"lat": page.location.lat, "lon": page.location.lon}
        ),
        "location_token": page.location_token,
        "added_block": page.added_block,
        "assert_count": page.assert_count,
        "total_rewards_hnt": page.total_rewards_hnt,
        "packets_ferried": page.packets_ferried,
        "transfer_count": page.transfer_count,
        "recent_witnesses": [
            _event_to_json(e) for e in page.recent_witnesses
        ],
        "recent_witnessed_by": [
            _event_to_json(e) for e in page.recent_witnessed_by
        ],
    }


def owner_to_json(page: OwnerPage) -> Dict[str, Any]:
    """An owner page as the JSON document the API serves."""
    return {
        "owner": page.owner,
        "hotspot_count": page.hotspot_count,
        "hotspots": [
            {"gateway": gateway, "name": name}
            for gateway, name in page.hotspots
        ],
        "hnt_balance": page.hnt_balance,
        "dc_balance": page.dc_balance,
        "total_rewards_hnt": page.total_rewards_hnt,
    }


_ROUTES = [
    "/stats",
    "/hotspots?limit=&offset=",
    "/hotspot/<name-or-address>",
    "/hotspot/<name-or-address>/witnesses?limit=",
    "/owner/<address>",
    "/coverage/dots",
    "/search?q=&limit=",
    "/metrics?format=json|prometheus",
]

_KNOWN_HEADS = {"stats", "hotspots", "coverage", "search", "metrics"}


def _route_key(parts: List[str]) -> str:
    """The metric label for a request path: the route shape, not the
    concrete resource, so cardinality stays bounded."""
    if not parts:
        return "index"
    head = parts[0]
    if head == "hotspot":
        return "hotspot/witnesses" if len(parts) > 2 else "hotspot"
    if head == "owner":
        return "owner"
    if head == "coverage":
        return "coverage/dots" if parts == ["coverage", "dots"] else "unknown"
    if head in _KNOWN_HEADS and len(parts) == 1:
        return head
    return "unknown"


class _ExplorerHandler(BaseHTTPRequestHandler):
    """Routes GET requests onto the store-backed explorer."""

    server_version = "repro-etl/1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _reply(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self._send(body, "application/json", status)

    def _send(
        self,
        body: bytes,
        content_type: str,
        status: int,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        # A HEAD response carries the headers the GET would have —
        # including the true Content-Length — but no body.
        if self.command != "HEAD":
            self.wfile.write(body)

    def _error(self, message: str, status: int = 404) -> None:
        self._reply({"error": message}, status=status)

    def _int_param(
        self,
        params: Dict[str, List[str]],
        name: str,
        default: int,
        max_value: Optional[int] = None,
    ) -> int:
        """A validated non-negative integer query parameter.

        Non-integers and negatives raise :class:`ValueError` (mapped to
        HTTP 400 by the dispatcher); values above ``max_value`` clamp
        silently. Negative values must never reach a SQLite ``LIMIT``,
        where ``-1`` means "unbounded".
        """
        values = params.get(name)
        if not values:
            return default
        try:
            value = int(values[0])
        except ValueError:
            raise ValueError(
                f"query parameter {name!r} must be an integer, "
                f"got {values[0]!r}"
            ) from None
        if value < 0:
            raise ValueError(
                f"query parameter {name!r} must be >= 0, got {value}"
            )
        if max_value is not None and value > max_value:
            return max_value
        return value

    # -- dispatch ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch()

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        self._dispatch()

    def _method_not_allowed(self) -> None:
        started = perf_counter()
        body = json.dumps(
            {"error": f"method {self.command} not allowed; this API is "
             "read-only", "allow": "GET, HEAD"},
            separators=(",", ":"),
        ).encode("utf-8")
        self._send(body, "application/json", 405, {"Allow": "GET, HEAD"})
        obs.counter("http.requests", route="method", status=405)
        obs.observe("http.latency_s", perf_counter() - started, route="method")

    # Every mutating verb gets the same 405 + Allow answer.
    do_POST = _method_not_allowed  # noqa: N815 - http.server API
    do_PUT = _method_not_allowed  # noqa: N815
    do_DELETE = _method_not_allowed  # noqa: N815
    do_PATCH = _method_not_allowed  # noqa: N815
    do_OPTIONS = _method_not_allowed  # noqa: N815

    def _dispatch(self) -> None:
        parsed = urlparse(self.path)
        parts = [unquote(p) for p in parsed.path.split("/") if p]
        params = parse_qs(parsed.query)
        server: "_ExplorerServer" = self.server  # type: ignore[assignment]
        route = _route_key(parts)
        self._status = 200
        started = perf_counter()
        try:
            if parts == ["metrics"]:
                # Served off the process registry: no store access, so
                # metrics stay reachable while queries run.
                self._metrics(params)
            else:
                store, explorer, guard = server.request_context()
                with guard:
                    self._route(explorer, store, parts, params)
        except (ValueError, KeyError) as exc:
            self._error(f"bad request: {exc}", status=400)
        except AnalysisError as exc:
            self._error(str(exc), status=404)
        finally:
            elapsed = perf_counter() - started
            obs.counter("http.requests", route=route, status=self._status)
            obs.observe("http.latency_s", elapsed, route=route)
            obs.trace_event(
                "http.request", route=route, path=self.path,
                status=self._status, wall_s=round(elapsed, 6),
            )

    def _metrics(self, params: Dict[str, List[str]]) -> None:
        fmt = params.get("format", ["json"])[0].lower()
        if fmt in ("prometheus", "prom", "text"):
            self._send(
                obs.to_prometheus().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
                200,
            )
        elif fmt == "json":
            self._reply(obs.snapshot())
        else:
            raise ValueError(f"unknown metrics format {fmt!r}")

    def _route(
        self,
        explorer: Explorer,
        store: EtlStore,
        parts: List[str],
        params: Dict[str, List[str]],
    ) -> None:
        if not parts:
            self._reply({"service": "repro.etl explorer", "routes": _ROUTES})
        elif parts == ["stats"]:
            self._reply({
                "checkpoint_height": store.checkpoint_height,
                "tip_hash": store.get_meta("tip_hash"),
                "tables": store.counts(),
            })
        elif parts == ["hotspots"]:
            limit = self._int_param(params, "limit", 50, MAX_PAGE_LIMIT)
            offset = self._int_param(params, "offset", 0)
            rows = store.hotspot_page_rows(limit, offset)
            self._reply({
                "total": store.hotspot_count,
                "hotspots": [
                    {"gateway": g, "name": n, "location_token": t}
                    for g, n, t in rows
                ],
            })
        elif parts[0] == "hotspot" and len(parts) in (2, 3):
            page = self._lookup_hotspot(explorer, parts[1])
            if len(parts) == 2:
                self._reply(page_to_json(page))
            elif parts[2] == "witnesses":
                limit = self._int_param(params, "limit", 100, MAX_PAGE_LIMIT)
                events = store.witness_events(
                    page.gateway, direction="witnessing", limit=limit
                )
                self._reply({
                    "gateway": page.gateway,
                    "name": page.name,
                    "witnesses": [_event_to_json(e) for e in events],
                })
            else:
                self._error(f"unknown hotspot subresource: {parts[2]}")
        elif parts[0] == "owner" and len(parts) == 2:
            self._reply(owner_to_json(explorer.owner(parts[1])))
        elif parts == ["coverage", "dots"]:
            dots = store.coverage_dot_rows()
            self._reply({
                "dots": [
                    {"token": token, "lat": lat, "lon": lon, "hotspots": count}
                    for token, lat, lon, count in dots
                ],
            })
        elif parts == ["search"]:
            query = params.get("q", [""])[0]
            limit = self._int_param(params, "limit", 10, MAX_PAGE_LIMIT)
            matches = explorer.search(query, limit=limit) if query else []
            self._reply({
                "query": query,
                "matches": [
                    {"gateway": gateway, "name": name}
                    for gateway, name in matches
                ],
            })
        else:
            self._error(f"no such route: /{'/'.join(parts)}")

    def _lookup_hotspot(self, explorer: Explorer, key: str) -> HotspotPage:
        if key.startswith("hs_"):
            return explorer.hotspot(key)
        return explorer.hotspot_by_name(key.replace("-", " "))


class _ExplorerServer(ThreadingHTTPServer):
    """ThreadingHTTPServer giving each request thread its own replica.

    File-backed stores answer every request from a per-thread read-only
    WAL connection (no shared handle, no lock, concurrent readers). An
    in-memory store is reachable only through the handle that created
    it, so that one case keeps the legacy shared-handle-behind-a-lock
    arrangement.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: EtlStore,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _ExplorerHandler)
        self.store = store
        self.explorer = Explorer.from_store(store)
        self.lock = threading.Lock()
        self.verbose = verbose
        self.replicas: Optional[ReadReplicas] = (
            None if store.path == ":memory:" else ReadReplicas(store.path)
        )
        self._tls = threading.local()

    def request_context(self) -> Tuple[EtlStore, Explorer, Any]:
        """``(store, explorer, guard)`` for the calling request thread.

        With replicas available the guard is a no-op context manager —
        the thread owns its connection outright. Only the in-memory
        fallback still hands back the serialising lock.
        """
        if self.replicas is None:
            return self.store, self.explorer, self.lock
        context = getattr(self._tls, "context", None)
        if context is None:
            replica = self.replicas.get()
            context = (replica, Explorer.from_store(replica), nullcontext())
            self._tls.context = context
        return context

    def server_close(self) -> None:
        super().server_close()
        if self.replicas is not None:
            self.replicas.close_all()


def create_server(
    store: EtlStore,
    host: str = "127.0.0.1",
    port: int = 8600,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build (but do not start) the explorer HTTP server.

    Pass ``port=0`` to bind an ephemeral port (``server.server_address``
    tells you which — handy in tests).
    """
    return _ExplorerServer((host, port), store, verbose=verbose)


def serve(
    store: EtlStore,
    host: str = "127.0.0.1",
    port: int = 8600,
    verbose: bool = True,
) -> None:
    """Serve the explorer API until interrupted."""
    server = create_server(store, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro.etl explorer listening on http://{bound_host}:{bound_port}/")
    obs.trace_event("etl.serve", host=bound_host, port=bound_port, db=store.path)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        obs.trace_event("etl.serve.stop", host=bound_host, port=bound_port)
        server.server_close()
