"""Module entry point: ``python -m repro.etl``."""

import sys

from repro.etl.cli import main

if __name__ == "__main__":
    sys.exit(main())
