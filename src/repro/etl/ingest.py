"""Incremental chain follower: extract-transform-load with checkpoints.

Mirrors how the DeWi ETL tails the real chain: each run picks up from
the last committed height and loads only the new blocks, so appending
blocks to a chain and re-running ingest is cheap, and a crashed ingest
is safely re-runnable. Guarantees:

* **Checkpointed**: one SQLite transaction per batch of blocks; the
  ``checkpoint_height`` metadata row commits atomically with the rows
  it covers. A crash mid-batch rolls the whole batch back.
* **Idempotent**: history rows are keyed by ``(height, seq, …)`` and
  written with ``INSERT OR REPLACE`` — replaying blocks that are
  already in the store converges to the same content.
* **Resumable ≡ fresh**: resuming from a checkpoint and ingesting the
  whole chain from scratch produce stores with identical content
  (:meth:`repro.etl.store.EtlStore.content_digest` asserts this in the
  test suite).

History tables stream block-by-block; the folded state tables
(``hotspots``, ``wallets``) are refreshed from the chain's ledger in
the final transaction, matching the chain/ledger split.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, List

from repro import obs
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.chain.serialize import transaction_to_dict
from repro.chain.transactions import (
    PocReceipts,
    Rewards,
    StateChannelClose,
    TransferHotspot,
)
from repro.etl.store import EtlStore
from repro.geo.hexgrid import HexCell

__all__ = ["IngestReport", "ingest_chain"]

#: Blocks committed per SQLite transaction. Small enough that a crash
#: loses little work, large enough to amortise the commit fsync.
DEFAULT_BATCH_BLOCKS = 512


@dataclass(frozen=True)
class IngestReport:
    """What one ingest run did."""

    start_height: int  # first newly ingested height (checkpoint + 1)
    tip_height: int
    blocks_ingested: int
    transactions_ingested: int

    @property
    def up_to_date(self) -> bool:
        """True when there was nothing new to load."""
        return self.blocks_ingested == 0


def ingest_chain(
    chain: Blockchain,
    store: EtlStore,
    batch_blocks: int = DEFAULT_BATCH_BLOCKS,
) -> IngestReport:
    """Load every block above the store's checkpoint into the store."""
    started = perf_counter()
    checkpoint = store.checkpoint_height
    # Bisect to the tail instead of filtering a full materialised pass:
    # on a log-backed chain the blocks below the checkpoint stay on
    # disk, and only one batch of views is ever resident at a time.
    start_position = chain.position_after(checkpoint)
    n_fresh = len(chain.blocks) - start_position
    obs.gauge("etl.ingest.checkpoint_lag", n_fresh)
    txn_count = 0
    for batch in _batches(chain, start_position, batch_blocks):
        batch_started = perf_counter()
        batch_txns = 0
        with store.connection:  # one transaction per batch
            for block in batch:
                batch_txns += _load_block(store, block)
            store._set_meta("checkpoint_height", str(batch[-1].height))
        txn_count += batch_txns
        obs.observe("etl.ingest.batch_s", perf_counter() - batch_started)
        obs.counter("etl.ingest.blocks", len(batch))
        obs.counter("etl.ingest.transactions", batch_txns)
        # Blocks committed but not yet caught up to the chain tip.
        obs.gauge(
            "etl.ingest.checkpoint_lag", chain.height - batch[-1].height
        )
    # Folded ledger state + tip marker, in one final transaction. Always
    # refreshed: the ledger is the chain's current state even when no
    # new history rows landed.
    with store.connection:
        _sync_ledger_state(store, chain)
        store._set_meta("checkpoint_height", str(chain.height))
        store._set_meta("tip_hash", chain.tip.hash)
    obs.gauge("etl.ingest.checkpoint_lag", 0)
    wall_s = perf_counter() - started
    obs.counter("etl.ingest.runs")
    obs.observe("etl.ingest.run_s", wall_s)
    obs.trace_event(
        "etl.ingest",
        db=store.path,
        start_height=checkpoint + 1,
        tip_height=chain.height,
        blocks=n_fresh,
        transactions=txn_count,
        wall_s=round(wall_s, 4),
        blocks_per_s=round(n_fresh / wall_s, 1) if wall_s > 0 else None,
    )
    return IngestReport(
        start_height=checkpoint + 1,
        tip_height=chain.height,
        blocks_ingested=n_fresh,
        transactions_ingested=txn_count,
    )


def _batches(
    chain: Blockchain, start: int, size: int
) -> Iterable[List[Block]]:
    """Materialise blocks one transaction-batch at a time from position
    ``start`` (slicing a log-backed sequence builds just that window of
    views)."""
    step = max(1, size)
    total = len(chain.blocks)
    for low in range(start, total, step):
        yield chain.blocks[low : min(low + step, total)]


def _load_block(store: EtlStore, block: Block) -> int:
    execute = store.connection.execute
    execute(
        "INSERT OR REPLACE INTO blocks "
        "(height, unix_time, prev_hash, hash, txn_count) VALUES (?,?,?,?,?)",
        (
            block.height,
            block.unix_time,
            block.prev_hash,
            block.hash,
            len(block.transactions),
        ),
    )
    for seq, txn in enumerate(block.transactions):
        payload = transaction_to_dict(txn)
        execute(
            "INSERT OR REPLACE INTO transactions (height, seq, kind, payload) "
            "VALUES (?,?,?,?)",
            (
                block.height,
                seq,
                txn.kind,
                json.dumps(payload, separators=(",", ":"), sort_keys=True),
            ),
        )
        if isinstance(txn, PocReceipts):
            _load_receipt(store, block.height, seq, txn)
        elif isinstance(txn, Rewards):
            _load_rewards(store, block.height, seq, txn)
        elif isinstance(txn, TransferHotspot):
            execute(
                "INSERT OR REPLACE INTO transfers "
                "(height, seq, gateway, seller, buyer, amount_dc, fee_dc) "
                "VALUES (?,?,?,?,?,?,?)",
                (
                    block.height,
                    seq,
                    txn.gateway,
                    txn.seller,
                    txn.buyer,
                    txn.amount_dc,
                    txn.fee_dc,
                ),
            )
        elif isinstance(txn, StateChannelClose):
            for summary_seq, summary in enumerate(txn.summaries):
                execute(
                    "INSERT OR REPLACE INTO packet_summaries "
                    "(height, seq, summary_seq, channel_id, owner, oui, "
                    "hotspot, num_packets, num_dcs) VALUES (?,?,?,?,?,?,?,?,?)",
                    (
                        block.height,
                        seq,
                        summary_seq,
                        txn.channel_id,
                        txn.owner,
                        txn.oui,
                        summary.hotspot,
                        summary.num_packets,
                        summary.num_dcs,
                    ),
                )
    return len(block.transactions)


def _load_receipt(
    store: EtlStore, height: int, seq: int, receipt: PocReceipts
) -> None:
    """Flatten one PoC receipt: a receipt row plus one row per witness.

    The challengee↔witness distance and null-island flag are computed
    here, with the exact hex-center geometry the in-memory analyses use,
    so distance queries are indexed scans with no trigonometry.
    """
    challengee_loc = HexCell.from_token(receipt.challengee_location_token).center()
    store.connection.execute(
        "INSERT OR REPLACE INTO poc_receipts "
        "(height, seq, challenger, challengee, challengee_location_token, "
        "witness_count, valid_witness_count) VALUES (?,?,?,?,?,?,?)",
        (
            height,
            seq,
            receipt.challenger,
            receipt.challengee,
            receipt.challengee_location_token,
            len(receipt.witnesses),
            len(receipt.valid_witnesses),
        ),
    )
    for witness_seq, report in enumerate(receipt.witnesses):
        witness_loc = HexCell.from_token(report.reported_location_token).center()
        store.connection.execute(
            "INSERT OR REPLACE INTO witnesses "
            "(height, seq, witness_seq, challenger, challengee, "
            "challengee_location, witness, witness_location, rssi_dbm, "
            "snr_db, frequency_mhz, distance_km, null_island, is_valid, "
            "invalid_reason) VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
            (
                height,
                seq,
                witness_seq,
                receipt.challenger,
                receipt.challengee,
                receipt.challengee_location_token,
                report.witness,
                report.reported_location_token,
                report.rssi_dbm,
                report.snr_db,
                report.frequency_mhz,
                challengee_loc.distance_km(witness_loc),
                int(
                    challengee_loc.is_null_island()
                    or witness_loc.is_null_island()
                ),
                int(report.is_valid),
                report.invalid_reason,
            ),
        )


def _load_rewards(
    store: EtlStore, height: int, seq: int, txn: Rewards
) -> None:
    for share_seq, share in enumerate(txn.shares):
        store.connection.execute(
            "INSERT OR REPLACE INTO rewards "
            "(height, seq, share_seq, account, gateway, amount_bones, "
            "reward_type) VALUES (?,?,?,?,?,?,?)",
            (
                height,
                seq,
                share_seq,
                share.account,
                share.gateway,
                share.amount_bones,
                share.reward_type.value,
            ),
        )


def _sync_ledger_state(store: EtlStore, chain: Blockchain) -> None:
    """Refresh the folded state tables from the chain's ledger.

    Wholesale delete + insert in ledger iteration order: rowid then
    preserves insertion order, which the explorer's name index and
    fleet listings rely on for parity with the in-memory dicts.
    """
    execute = store.connection.execute
    execute("DELETE FROM hotspots")
    for gateway, record in chain.ledger.hotspots.items():
        execute(
            "INSERT INTO hotspots (gateway, owner, name, location_token, "
            "nonce, added_block, last_assert_block) VALUES (?,?,?,?,?,?,?)",
            (
                gateway,
                record.owner,
                record.name,
                record.location_token,
                record.nonce,
                record.added_block,
                record.last_assert_block,
            ),
        )
    execute("DELETE FROM wallets")
    for address, state in chain.ledger.wallets.items():
        execute(
            "INSERT INTO wallets (address, hnt_bones, dc) VALUES (?,?,?)",
            (address, state.hnt_bones, state.dc),
        )
