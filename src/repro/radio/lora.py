"""LoRa modulation model: spreading factors, airtime, sensitivity, regions.

Implements the Semtech LoRa modem equations (SX1276 datasheet §4.1) that
determine packet airtime and receiver sensitivity, plus the US915/EU868
regional channel plans Helium operates under. These feed three places:

* the field-test simulator, which needs airtime to pace the paper's
  "free-running send" counter app (§8.1);
* the PoC engine, which needs channel plans for the "claims capture on
  the wrong channel (impossible)" witness-validity rule (§8.2.1);
* the coverage models, which need receiver sensitivity (the paper uses
  −134 dBm for the recommended ST board).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum, IntEnum
from typing import Dict, Tuple

from repro.errors import ReproError

__all__ = [
    "SpreadingFactor",
    "Bandwidth",
    "CodingRate",
    "LoRaParams",
    "ChannelPlan",
    "US915",
    "EU868",
    "airtime_ms",
    "sensitivity_dbm",
    "ST_BOARD_SENSITIVITY_DBM",
    "MAX_EIRP_DBM_US",
]

#: Receiver sensitivity of the ST B-L072Z-LRWAN1 board the paper deploys
#: ("We set s to be a constant −134 dBm", §8.2.1).
ST_BOARD_SENSITIVITY_DBM: float = -134.0

#: "FCC regulations limit transmitters to +36 dBm EIRP" (§7.2).
MAX_EIRP_DBM_US: float = 36.0


class SpreadingFactor(IntEnum):
    """LoRa spreading factor: chips per symbol = 2**SF."""

    SF7 = 7
    SF8 = 8
    SF9 = 9
    SF10 = 10
    SF11 = 11
    SF12 = 12


class Bandwidth(IntEnum):
    """Channel bandwidth in Hz."""

    BW125 = 125_000
    BW250 = 250_000
    BW500 = 500_000


class CodingRate(Enum):
    """Forward error correction rate (4/x)."""

    CR_4_5 = 1
    CR_4_6 = 2
    CR_4_7 = 3
    CR_4_8 = 4


#: Demodulator SNR floor per spreading factor (dB), SX1276 datasheet.
_SNR_FLOOR_DB: Dict[SpreadingFactor, float] = {
    SpreadingFactor.SF7: -7.5,
    SpreadingFactor.SF8: -10.0,
    SpreadingFactor.SF9: -12.5,
    SpreadingFactor.SF10: -15.0,
    SpreadingFactor.SF11: -17.5,
    SpreadingFactor.SF12: -20.0,
}

#: Receiver noise figure assumed for sensitivity computation (dB).
_NOISE_FIGURE_DB: float = 6.0


def sensitivity_dbm(sf: SpreadingFactor, bw: Bandwidth = Bandwidth.BW125) -> float:
    """Receiver sensitivity: thermal noise + noise figure + SNR floor.

    S = −174 + 10·log10(BW) + NF + SNR_floor. Matches the published
    SX1276 figures within ~1 dB (e.g. SF12/125 kHz → −137 dBm).
    """
    return -174.0 + 10.0 * math.log10(int(bw)) + _NOISE_FIGURE_DB + _SNR_FLOOR_DB[sf]


@dataclass(frozen=True)
class LoRaParams:
    """Complete physical-layer parameterisation of a transmission."""

    sf: SpreadingFactor = SpreadingFactor.SF9
    bw: Bandwidth = Bandwidth.BW125
    cr: CodingRate = CodingRate.CR_4_5
    preamble_symbols: int = 8
    explicit_header: bool = True
    crc: bool = True

    @property
    def symbol_time_ms(self) -> float:
        """Duration of one LoRa symbol in milliseconds."""
        return (2 ** int(self.sf)) / int(self.bw) * 1000.0

    @property
    def low_data_rate_optimize(self) -> bool:
        """LoRaWAN mandates DE for symbol times over 16 ms (SF11/12 @125k)."""
        return self.symbol_time_ms > 16.0

    def sensitivity_dbm(self) -> float:
        """Receiver sensitivity for this parameterisation."""
        return sensitivity_dbm(self.sf, self.bw)


def airtime_ms(payload_bytes: int, params: LoRaParams = LoRaParams()) -> float:
    """Time on air of a LoRa packet (Semtech SX1276 §4.1.1.7).

    Args:
        payload_bytes: PHY payload length (LoRaWAN MAC frame size).
        params: modulation parameters.

    Raises:
        ReproError: if ``payload_bytes`` is negative.
    """
    if payload_bytes < 0:
        raise ReproError(f"payload length must be non-negative: {payload_bytes}")
    t_sym = params.symbol_time_ms
    t_preamble = (params.preamble_symbols + 4.25) * t_sym
    de = 1 if params.low_data_rate_optimize else 0
    ih = 0 if params.explicit_header else 1
    crc = 1 if params.crc else 0
    sf = int(params.sf)
    numerator = 8 * payload_bytes - 4 * sf + 28 + 16 * crc - 20 * ih
    n_payload = 8 + max(
        math.ceil(numerator / (4 * (sf - 2 * de))) * (params.cr.value + 4), 0
    )
    return t_preamble + n_payload * t_sym


@dataclass(frozen=True)
class ChannelPlan:
    """A regional LoRaWAN channel plan (uplink side).

    Only the attributes the simulation consumes are modelled: channel
    centre frequencies (for the wrong-channel PoC validity check), the
    default data-rate range, and the regional duty-cycle limit.
    """

    name: str
    uplink_mhz: Tuple[float, ...]
    max_eirp_dbm: float
    duty_cycle: float  # fraction of time a device may transmit (1.0 = none)
    default_sf: SpreadingFactor

    def channel_index(self, freq_mhz: float, tolerance_mhz: float = 0.01) -> int:
        """Index of ``freq_mhz`` in the plan, or −1 when off-plan.

        The PoC validity rule "claims capture on the wrong channel
        (impossible)" reduces to this lookup returning −1.
        """
        for i, f in enumerate(self.uplink_mhz):
            if abs(f - freq_mhz) <= tolerance_mhz:
                return i
        return -1

    def random_channel(self, rng) -> float:
        """A uniformly chosen uplink channel frequency."""
        return float(self.uplink_mhz[int(rng.integers(len(self.uplink_mhz)))])


def _us915_channels() -> Tuple[float, ...]:
    # Sub-band 2 (channels 8-15), the de-facto Helium US sub-band.
    return tuple(903.9 + 0.2 * i for i in range(8))


def _eu868_channels() -> Tuple[float, ...]:
    return (868.1, 868.3, 868.5, 867.1, 867.3, 867.5, 867.7, 867.9)


#: US plan: no duty cycle, but dwell-time limits; Helium uses sub-band 2.
US915 = ChannelPlan(
    name="US915",
    uplink_mhz=_us915_channels(),
    max_eirp_dbm=MAX_EIRP_DBM_US,
    duty_cycle=1.0,
    default_sf=SpreadingFactor.SF9,
)

#: EU plan: 1 % duty cycle in the 868 MHz band, +16 dBm EIRP.
EU868 = ChannelPlan(
    name="EU868",
    uplink_mhz=_eu868_channels(),
    max_eirp_dbm=16.0,
    duty_cycle=0.01,
    default_sf=SpreadingFactor.SF9,
)


def plan_for_country(country: str) -> ChannelPlan:
    """Channel plan in force for a country code (US915 outside Europe)."""
    european = {
        "GB", "DE", "FR", "ES", "IT", "NL", "BE", "CH", "AT", "PT", "IE",
        "SE", "DK", "NO", "FI", "PL", "CZ", "GR", "TR",
    }
    return EU868 if country in european else US915


def max_payload_bytes(sf: SpreadingFactor) -> int:
    """LoRaWAN maximum application payload for a spreading factor (US915)."""
    table = {
        SpreadingFactor.SF7: 242,
        SpreadingFactor.SF8: 125,
        SpreadingFactor.SF9: 53,
        SpreadingFactor.SF10: 11,
        SpreadingFactor.SF11: 11,   # not used for US uplink; kept for EU
        SpreadingFactor.SF12: 11,
    }
    return table[sf]
