"""Radio propagation models for the simulated LoRa channel.

Three layers of fidelity, all used somewhere in the reproduction:

* **Free-space path loss (FSPL)** — the paper's revised coverage model
  grows witness radii with the inverse FSPL formula ``d = 10^((w−s)/20)``
  (§8.2.1); :func:`fspl_range_growth_m` is that exact expression.
* **Log-distance with lognormal shadowing** — the workhorse channel for
  PoC witnessing and field walks. Exponents and shadowing sigmas vary by
  environment, reproducing both the urban multipath losses the walks see
  and the freak 60–110 km over-water receptions the paper footnotes.
* **Packet success** — reception is Bernoulli in the RSSI margin over
  receiver sensitivity, smoothed with a logistic roll-off so the PRR
  curves have the soft knee real LoRa links exhibit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.radio.lora import ST_BOARD_SENSITIVITY_DBM

__all__ = [
    "Environment",
    "PropagationModel",
    "LinkBudget",
    "fspl_db",
    "fspl_db_many",
    "fspl_range_km",
    "fspl_range_growth_m",
    "sample_link_rssi_dbm_many",
    "FSPL_SENSITIVITY_DBM",
    "DEFAULT_FREQ_MHZ",
]

#: Default carrier for link budget math (US915 sub-band 2 centre).
DEFAULT_FREQ_MHZ: float = 904.6

#: Sensitivity constant used by the paper's radius-growth formula.
FSPL_SENSITIVITY_DBM: float = ST_BOARD_SENSITIVITY_DBM


def fspl_db(distance_km: float, freq_mhz: float = DEFAULT_FREQ_MHZ) -> float:
    """Free-space path loss in dB.

    FSPL(dB) = 20·log10(d_km) + 20·log10(f_MHz) + 32.44.

    Raises:
        ReproError: for non-positive distance or frequency.
    """
    if distance_km <= 0:
        raise ReproError(f"distance must be positive, got {distance_km}")
    if freq_mhz <= 0:
        raise ReproError(f"frequency must be positive, got {freq_mhz}")
    return 20.0 * math.log10(distance_km) + 20.0 * math.log10(freq_mhz) + 32.44


def fspl_db_many(
    distance_km: np.ndarray, freq_mhz: float = DEFAULT_FREQ_MHZ
) -> np.ndarray:
    """Vectorised :func:`fspl_db` over a distance array.

    Raises:
        ReproError: for any non-positive distance, or a non-positive
            frequency — matching the scalar function's contract.
    """
    if freq_mhz <= 0:
        raise ReproError(f"frequency must be positive, got {freq_mhz}")
    d = np.asarray(distance_km, dtype=float)
    if d.size and float(d.min()) <= 0:
        raise ReproError("distances must be positive")
    return 20.0 * np.log10(d) + 20.0 * math.log10(freq_mhz) + 32.44


def fspl_range_km(
    tx_power_dbm: float,
    sensitivity_dbm: float,
    freq_mhz: float = DEFAULT_FREQ_MHZ,
) -> float:
    """Maximum free-space range for a link budget, in kilometres."""
    budget = tx_power_dbm - sensitivity_dbm
    return 10.0 ** ((budget - 32.44 - 20.0 * math.log10(freq_mhz)) / 20.0)


def fspl_range_growth_m(
    witness_rssi_dbm: float, sensitivity_dbm: float = FSPL_SENSITIVITY_DBM
) -> float:
    """The paper's radius-growth term: ``d = 10^((w − s) / 20)`` in metres.

    For the median witness RSSI of −108 dBm and s = −134 dBm this gives
    10^(26/20) ≈ 20 m, exactly the "+20 m of coverage range" the paper
    reports for the RSSI step of the revised model (§8.2.1).

    Args:
        witness_rssi_dbm: RSSI the witness reported for the challenge.
        sensitivity_dbm: sensitivity of the device hoping for coverage.
    """
    return 10.0 ** ((witness_rssi_dbm - sensitivity_dbm) / 20.0)


class Environment(Enum):
    """Radio environment class with (exponent, shadowing σ, extra loss).

    Exponents and clutter losses are calibrated so hotspot-to-hotspot
    witnessing concentrates at the few-km distances of the paper's
    Figure 13 (with rural/over-water links providing the 60–110 km
    tail) while ground-level device links (STREET_LEVEL) produce the
    few-hundred-metre reliable ranges the §8.2.2 walks observe.
    """

    FREE_SPACE = ("free-space", 2.0, 0.0, 0.0)
    RURAL = ("rural", 3.0, 4.0, 16.0)
    SUBURBAN = ("suburban", 3.4, 6.0, 16.0)
    URBAN = ("urban", 3.7, 8.0, 22.0)
    #: Handheld device at ground level amid clutter (walk tests).
    STREET_LEVEL = ("street-level", 4.0, 8.0, 24.0)
    OVER_WATER = ("over-water", 2.05, 2.0, 0.0)

    def __init__(
        self, label: str, exponent: float, sigma_db: float, excess_db: float
    ) -> None:
        self.label = label
        self.path_loss_exponent = exponent
        self.shadowing_sigma_db = sigma_db
        self.excess_loss_db = excess_db
        #: Dense member ordinal for list-based lookup tables. ``Enum``
        #: hashing goes through a Python-level ``__hash__``, which the
        #: per-witness hot paths feel; ``env.index`` into a list does not.
        self.index = len(self.__class__.__members__)


#: (exponent, shadowing σ, excess loss) per environment, pre-extracted for
#: the batched link sampler and indexed by :attr:`Environment.index`.
_ENV_PARAMS = [
    (env.path_loss_exponent, env.shadowing_sigma_db, env.excess_loss_db)
    for env in Environment
]


@dataclass(frozen=True)
class LinkBudget:
    """Transmit-side parameters of a link."""

    tx_power_dbm: float = 27.0  # typical Helium hotspot / device EIRP
    antenna_gain_dbi: float = 1.2
    freq_mhz: float = DEFAULT_FREQ_MHZ

    @property
    def eirp_dbm(self) -> float:
        """Effective isotropic radiated power."""
        return self.tx_power_dbm + self.antenna_gain_dbi


class PropagationModel:
    """Log-distance path loss with lognormal shadowing.

    PL(d) = FSPL(d₀) + excess + 10·n·log10(d/d₀) + X_σ, with reference
    distance d₀ = 100 m. The ``excess`` term folds in clutter losses so
    the urban model produces the few-hundred-metre reliable ranges the
    paper's walk tests observe, while the rural/over-water models allow
    the multi-km witnessing PoC records show.
    """

    #: Reference distance for the log-distance model, in km.
    REFERENCE_KM: float = 0.1

    def __init__(
        self,
        environment: Environment = Environment.SUBURBAN,
        budget: Optional[LinkBudget] = None,
    ) -> None:
        self.environment = environment
        self.budget = budget if budget is not None else LinkBudget()
        self._ref_loss_db = (
            fspl_db(self.REFERENCE_KM, self.budget.freq_mhz)
            + environment.excess_loss_db
        )

    def mean_path_loss_db(self, distance_km: float) -> float:
        """Expected path loss at ``distance_km`` (no shadowing)."""
        if distance_km <= 0:
            raise ReproError(f"distance must be positive, got {distance_km}")
        d = max(distance_km, 1e-4)  # clamp into the model's valid region
        return self._ref_loss_db + 10.0 * self.environment.path_loss_exponent * (
            math.log10(d / self.REFERENCE_KM)
        )

    def mean_rssi_dbm(self, distance_km: float) -> float:
        """Expected RSSI at ``distance_km``."""
        return self.budget.eirp_dbm - self.mean_path_loss_db(distance_km)

    def sample_rssi_dbm(
        self, distance_km: float, rng: np.random.Generator
    ) -> float:
        """One RSSI draw including lognormal shadowing."""
        shadow = float(rng.normal(0.0, self.environment.shadowing_sigma_db))
        return self.mean_rssi_dbm(distance_km) + shadow

    def mean_path_loss_db_many(self, distance_km: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`mean_path_loss_db` over a distance array."""
        d = np.asarray(distance_km, dtype=float)
        if d.size and float(d.min()) <= 0:
            raise ReproError("distances must be positive")
        d = np.maximum(d, 1e-4)  # clamp into the model's valid region
        return self._ref_loss_db + 10.0 * self.environment.path_loss_exponent * (
            np.log10(d / self.REFERENCE_KM)
        )

    def mean_rssi_dbm_many(self, distance_km: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`mean_rssi_dbm` over a distance array."""
        return self.budget.eirp_dbm - self.mean_path_loss_db_many(distance_km)

    def sample_rssi_dbm_many(
        self, distance_km: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """N shadowed RSSI draws for N links in one call.

        Consumes the ``rng`` stream exactly as N sequential
        :meth:`sample_rssi_dbm` calls would (numpy's batched normal
        draws are bitwise-identical to scalar draws), so switching a
        caller from the scalar loop to the batch API does not perturb
        downstream randomness.
        """
        d = np.asarray(distance_km, dtype=float)
        shadow = rng.normal(
            0.0, self.environment.shadowing_sigma_db, size=d.shape
        )
        return self.mean_rssi_dbm_many(d) + shadow

    def reception_probability(
        self,
        distance_km: float,
        sensitivity_dbm: float = ST_BOARD_SENSITIVITY_DBM,
        softness_db: float = 3.0,
    ) -> float:
        """Probability a packet at ``distance_km`` is demodulated.

        Logistic in the mean link margin; ``softness_db`` sets how fast
        success decays around the sensitivity threshold and absorbs both
        shadowing variance and interference.
        """
        margin = self.mean_rssi_dbm(distance_km) - sensitivity_dbm
        return 1.0 / (1.0 + math.exp(-margin / softness_db))

    def packet_received(
        self,
        distance_km: float,
        rng: np.random.Generator,
        sensitivity_dbm: float = ST_BOARD_SENSITIVITY_DBM,
    ) -> bool:
        """Bernoulli reception draw using a shadowed RSSI sample."""
        rssi = self.sample_rssi_dbm(distance_km, rng)
        return rssi >= sensitivity_dbm

    def max_range_km(
        self,
        sensitivity_dbm: float = ST_BOARD_SENSITIVITY_DBM,
        margin_db: float = 0.0,
    ) -> float:
        """Distance at which the mean RSSI meets sensitivity + margin."""
        available = self.budget.eirp_dbm - sensitivity_dbm - margin_db
        excess = available - self._ref_loss_db
        if excess <= 0:
            return self.REFERENCE_KM
        return self.REFERENCE_KM * 10.0 ** (
            excess / (10.0 * self.environment.path_loss_exponent)
        )


def sample_link_rssi_dbm_many(
    distance_km: np.ndarray,
    environments: Sequence[Environment],
    antenna_gain_dbi: np.ndarray,
    rng: np.random.Generator,
    tx_power_dbm: float = 27.0,
    freq_mhz: float = DEFAULT_FREQ_MHZ,
) -> np.ndarray:
    """Shadowed RSSI draws for N heterogeneous links in one call.

    Equivalent to constructing a :class:`PropagationModel` per link
    (each with its own environment and antenna gain) and calling
    :meth:`~PropagationModel.sample_rssi_dbm` once per link, in order —
    but with a single batched shadowing draw and vectorised path-loss
    math. The rng stream consumption matches the scalar loop exactly.
    """
    d = np.asarray(distance_km, dtype=float)
    if d.size == 0:
        return np.empty(0)
    # One (n, 3) table lookup instead of three attribute-walking fromiter
    # passes — the per-call fixed cost dominates at witness batch sizes.
    params = np.array(
        [_ENV_PARAMS[env.index] for env in environments], dtype=float
    )
    exponents = params[:, 0]
    sigmas = params[:, 1]
    excess = params[:, 2]
    gains = np.asarray(antenna_gain_dbi, dtype=float)
    ref_loss = fspl_db(PropagationModel.REFERENCE_KM, freq_mhz) + excess
    clamped = np.maximum(d, 1e-4)
    path_loss = ref_loss + 10.0 * exponents * (
        np.log10(clamped / PropagationModel.REFERENCE_KM)
    )
    mean = (tx_power_dbm + gains) - path_loss
    shadow = rng.normal(0.0, sigmas)
    return mean + shadow


def environment_for_density(hotspots_within_5km: int) -> Environment:
    """Heuristic mapping from local hotspot density to radio environment.

    Kept for callers that reason about *real-scale* densities; the
    simulator itself classifies by city population
    (:func:`environment_for_city`), which is scale-invariant.
    """
    if hotspots_within_5km >= 60:
        return Environment.URBAN
    if hotspots_within_5km >= 12:
        return Environment.SUBURBAN
    return Environment.RURAL


def environment_for_city(
    population: int, distance_from_center_km: float, core_radius_km: float
) -> Environment:
    """Radio environment from city size and position within it.

    Environment is about buildings, not about how many hotspots a
    simulation happens to deploy — so it derives from population (which
    is scale-invariant): big-city cores are urban, their fringes and
    mid-size cities suburban, small towns rural.
    """
    if population >= 400_000:
        if distance_from_center_km <= core_radius_km:
            return Environment.URBAN
        return Environment.SUBURBAN
    if population >= 40_000:
        return Environment.SUBURBAN
    return Environment.RURAL
