"""LoRa PHY substrate: modulation parameters and radio propagation.

The field experiments (§8) and the PoC witness machinery both ride on a
LoRa physical layer. :mod:`repro.radio.lora` models the modulation side —
spreading factors, airtime, receiver sensitivity, regional channel plans —
and :mod:`repro.radio.propagation` models the channel: free-space and
log-distance path loss, shadowing, and the paper's inverse-FSPL radius
growth formula used by the revised coverage model.
"""

from repro.radio.lora import (
    Bandwidth,
    ChannelPlan,
    CodingRate,
    EU868,
    LoRaParams,
    SpreadingFactor,
    US915,
    airtime_ms,
    sensitivity_dbm,
)
from repro.radio.propagation import (
    Environment,
    FSPL_SENSITIVITY_DBM,
    LinkBudget,
    PropagationModel,
    fspl_db,
    fspl_range_growth_m,
)

__all__ = [
    "SpreadingFactor",
    "Bandwidth",
    "CodingRate",
    "LoRaParams",
    "ChannelPlan",
    "US915",
    "EU868",
    "airtime_ms",
    "sensitivity_dbm",
    "Environment",
    "PropagationModel",
    "LinkBudget",
    "fspl_db",
    "fspl_range_growth_m",
    "FSPL_SENSITIVITY_DBM",
]
