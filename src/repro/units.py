"""Unit conversions and protocol constants shared across the library.

Helium mixes several unit systems: radio power in dBm/mW, money in HNT, DC
and USD, time in seconds, blocks and epochs. Keeping the conversions in one
module avoids the classic off-by-1000 errors between "bones" (the smallest
HNT denomination) and whole HNT, and between block heights and wall time.
"""

from __future__ import annotations

import math

__all__ = [
    "BLOCK_TIME_S",
    "BLOCKS_PER_DAY",
    "BLOCKS_PER_EPOCH",
    "BONES_PER_HNT",
    "DC_PER_USD",
    "USD_PER_DC",
    "GENESIS_UNIX_TIME",
    "dbm_to_mw",
    "mw_to_dbm",
    "dc_to_usd",
    "usd_to_dc",
    "hnt_to_bones",
    "bones_to_hnt",
    "block_to_unix_time",
    "unix_time_to_block",
    "blocks_between",
]

#: Target block cadence: "New blocks are minted every 60 s" (paper, §3).
BLOCK_TIME_S: int = 60

#: Blocks in one day at the target cadence.
BLOCKS_PER_DAY: int = 24 * 60 * 60 // BLOCK_TIME_S

#: Reward epoch length in blocks (Helium mints rewards every ~30 blocks).
BLOCKS_PER_EPOCH: int = 30

#: Smallest HNT denomination ("bones"), 10^8 per HNT like satoshi/bitcoin.
BONES_PER_HNT: int = 100_000_000

#: "Data Credits (DC), whose value is fixed at $0.00001 USD per 1 DC" (§2.4).
USD_PER_DC: float = 0.00001
DC_PER_USD: int = 100_000

#: "the first real entry to the blockchain was recorded on July 29, 2019"
#: (paper, §3) — 2019-07-29T00:00:00Z.
GENESIS_UNIX_TIME: int = 1_564_358_400


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level in milliwatts to dBm.

    Raises:
        ValueError: if ``mw`` is not strictly positive.
    """
    if mw <= 0:
        raise ValueError(f"power must be positive to express in dBm, got {mw}")
    return 10.0 * math.log10(mw)


def dc_to_usd(dc: int) -> float:
    """Convert a Data Credit amount to US dollars at the fixed DC price."""
    return dc * USD_PER_DC


def usd_to_dc(usd: float) -> int:
    """Convert US dollars to whole Data Credits (rounded down)."""
    return int(usd * DC_PER_USD)


def hnt_to_bones(hnt: float) -> int:
    """Convert whole HNT to bones (the integer on-chain denomination)."""
    return round(hnt * BONES_PER_HNT)


def bones_to_hnt(bones: int) -> float:
    """Convert bones to whole HNT."""
    return bones / BONES_PER_HNT


def block_to_unix_time(height: int) -> int:
    """Nominal Unix timestamp of a block at the target 60 s cadence."""
    return GENESIS_UNIX_TIME + height * BLOCK_TIME_S


def unix_time_to_block(unix_time: int) -> int:
    """Nominal block height containing ``unix_time`` (clamped at genesis)."""
    if unix_time <= GENESIS_UNIX_TIME:
        return 0
    return (unix_time - GENESIS_UNIX_TIME) // BLOCK_TIME_S


def blocks_between(days: float = 0.0, hours: float = 0.0, minutes: float = 0.0) -> int:
    """Number of blocks spanning a wall-clock interval at 60 s/block."""
    total_seconds = (days * 24 * 60 + hours * 60 + minutes) * 60
    return int(total_seconds // BLOCK_TIME_S)
