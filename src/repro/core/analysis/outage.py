"""Regional ISP-outage impact analysis (§6.1).

"An example of an outage that may have had a large impact on Helium was
the 2020 Spectrum outage in Los Angeles ... This could have taken down
291 out of the 333 hotspots (87%) in Los Angeles." This module answers
the general question: if ISP X goes dark in city Y (or nationwide), how
many hotspots fall, and how much modelled coverage goes with them?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.coverage import DiskModel
from repro.errors import AnalysisError
from repro.geo.geodesy import LatLon
from repro.p2p.backhaul import AsUniverse
from repro.p2p.multiaddr import parse_multiaddr
from repro.p2p.peerbook import Peerbook

__all__ = ["OutageImpact", "isp_outage_impact", "worst_city_outages"]


@dataclass(frozen=True)
class OutageImpact:
    """What one regional ISP outage would take down."""

    org: str
    city: Optional[str]
    hotspots_in_scope: int
    hotspots_down: int
    #: Relayed peers knocked offline because their *relay* was on the
    #: failing ISP — the §6.2 second-order fate-sharing.
    relayed_collateral: int
    coverage_disks_lost_fraction: float

    @property
    def down_fraction(self) -> float:
        """Directly affected share of in-scope hotspots."""
        if self.hotspots_in_scope == 0:
            return 0.0
        return self.hotspots_down / self.hotspots_in_scope


def _annotate_orgs(
    peerbook: Peerbook, universe: AsUniverse
) -> Dict[str, str]:
    """peer → org name for direct peers (the annotation pipeline)."""
    orgs: Dict[str, str] = {}
    for entry in peerbook.entries_with_listen_addrs():
        parsed = parse_multiaddr(entry.listen_addrs[0])
        if parsed.is_relayed or parsed.ip is None:
            continue
        asn = universe.asn_for_ip(parsed.ip)
        if asn is not None:
            orgs[entry.peer] = universe.org_for_asn(asn)
    return orgs


def isp_outage_impact(
    peerbook: Peerbook,
    universe: AsUniverse,
    peer_city: Dict[str, str],
    peer_location: Dict[str, LatLon],
    org: str,
    city: Optional[str] = None,
) -> OutageImpact:
    """Impact of ``org`` going dark, optionally scoped to one city.

    Args:
        peerbook: the p2p peerbook (direct + relayed entries).
        universe: AS universe for annotation.
        peer_city: peer → city name (geolocation equivalent).
        peer_location: peer → asserted location (for coverage loss).
        org: the failing ISP's organisation name.
        city: restrict the outage (and the denominator) to one city;
            None models a national outage.
    """
    orgs = _annotate_orgs(peerbook, universe)
    in_scope: List[str] = []
    down: Set[str] = set()
    for entry in peerbook.entries_with_listen_addrs():
        peer = entry.peer
        if city is not None and peer_city.get(peer) != city:
            continue
        in_scope.append(peer)
        if orgs.get(peer) == org:
            down.add(peer)
    if not in_scope:
        raise AnalysisError(
            f"no hotspots in scope for org={org!r}, city={city!r}"
        )
    # Second-order: relayed peers whose relay just died.
    relayed_collateral = 0
    for relay, peer in peerbook.relay_pairs():
        if relay in down and peer not in down:
            if city is None or peer_city.get(peer) == city:
                relayed_collateral += 1

    survivors = [
        peer_location[p] for p in in_scope
        if p not in down and p in peer_location
    ]
    located = [peer_location[p] for p in in_scope if p in peer_location]
    lost_fraction = 0.0
    if located:
        before = len(DiskModel(located).shapes)
        after = len(DiskModel(survivors).shapes) if survivors else 0
        lost_fraction = 1.0 - (after / before if before else 0.0)
    return OutageImpact(
        org=org,
        city=city,
        hotspots_in_scope=len(in_scope),
        hotspots_down=len(down),
        relayed_collateral=relayed_collateral,
        coverage_disks_lost_fraction=lost_fraction,
    )


def worst_city_outages(
    peerbook: Peerbook,
    universe: AsUniverse,
    peer_city: Dict[str, str],
    peer_location: Dict[str, LatLon],
    min_hotspots: int = 5,
    top_n: int = 10,
) -> List[OutageImpact]:
    """Rank cities by their worst single-ISP outage exposure.

    For every (city, dominant org) pair with at least ``min_hotspots``
    annotated hotspots, compute the outage impact and return the worst
    offenders — the generalisation of the paper's LA-Spectrum example
    and its Palma/Mesa/Rome single-ASN list.
    """
    orgs = _annotate_orgs(peerbook, universe)
    per_city_org: Dict[Tuple[str, str], int] = {}
    per_city_total: Dict[str, int] = {}
    for peer, org in orgs.items():
        city = peer_city.get(peer)
        if city is None:
            continue
        per_city_org[(city, org)] = per_city_org.get((city, org), 0) + 1
        per_city_total[city] = per_city_total.get(city, 0) + 1

    candidates = []
    for (city, org), count in per_city_org.items():
        if per_city_total[city] >= min_hotspots and count >= 2:
            candidates.append((count / per_city_total[city], city, org))
    candidates.sort(reverse=True)

    impacts = []
    seen_cities: Set[str] = set()
    for _, city, org in candidates:
        if city in seen_cities:
            continue
        seen_cities.add(city)
        impacts.append(isp_outage_impact(
            peerbook, universe, peer_city, peer_location, org, city
        ))
        if len(impacts) >= top_n * 3:
            break
    # The candidate ranking uses annotated (direct-IP) counts; the final
    # impact denominator also includes relayed peers, so re-rank on the
    # actual down fraction.
    impacts.sort(key=lambda impact: -impact.down_fraction)
    return impacts[:top_n]
