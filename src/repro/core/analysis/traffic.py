"""Data-transfer analyses (§5, Figure 8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import units
from repro.chain.blockchain import Blockchain
from repro.chain.transactions import StateChannelClose, StateChannelOpen
from repro.errors import AnalysisError

__all__ = [
    "ChannelShareStats",
    "channel_share",
    "packets_by_close",
    "TrafficSeries",
    "traffic_series",
    "spam_episode",
]

_CONSOLE_OUIS = (1, 2)


@dataclass(frozen=True)
class ChannelShareStats:
    """§5.2: who runs routers."""

    total_channel_txns: int
    console_channel_txns: int
    console_share: float
    ouis_seen: Tuple[int, ...]


def channel_share(chain: Blockchain) -> ChannelShareStats:
    """Console (OUI 1/2) share of state-channel open/close traffic."""
    total = 0
    console = 0
    ouis = set()
    for kind in (StateChannelOpen, StateChannelClose):
        for _, txn in chain.iter_transactions(kind):
            total += 1
            ouis.add(txn.oui)
            if txn.oui in _CONSOLE_OUIS:
                console += 1
    if total == 0:
        raise AnalysisError("no state-channel transactions on chain")
    return ChannelShareStats(
        total_channel_txns=total,
        console_channel_txns=console,
        console_share=console / total,
        ouis_seen=tuple(sorted(ouis)),
    )


def packets_by_close(
    chain: Blockchain,
) -> List[Tuple[int, int, int]]:
    """Figure 8's raw series: (block, oui, packets) per closing."""
    rows = []
    for height, txn in chain.iter_transactions(StateChannelClose):
        rows.append((height, txn.oui, txn.total_packets))
    return rows


@dataclass(frozen=True)
class TrafficSeries:
    """Daily packet totals split Console / third-party."""

    days: Tuple[int, ...]
    console_packets: Tuple[int, ...]
    third_party_packets: Tuple[int, ...]

    def total_on(self, day: int) -> int:
        """All packets on one day."""
        index = self.days.index(day)
        return self.console_packets[index] + self.third_party_packets[index]

    def final_packets_per_second(self, window_days: int = 7) -> float:
        """Aggregate rate over the final window (the ~14 pkt/s claim)."""
        tail_console = self.console_packets[-window_days:]
        tail_third = self.third_party_packets[-window_days:]
        per_day = (sum(tail_console) + sum(tail_third)) / max(
            len(tail_console), 1
        )
        return per_day / 86_400.0


def traffic_series(chain: Blockchain) -> TrafficSeries:
    """Daily packet totals from state-channel closings."""
    console: Dict[int, int] = {}
    third: Dict[int, int] = {}
    for height, txn in chain.iter_transactions(StateChannelClose):
        day = height // units.BLOCKS_PER_DAY
        bucket = console if txn.oui in _CONSOLE_OUIS else third
        bucket[day] = bucket.get(day, 0) + txn.total_packets
    if not console and not third:
        raise AnalysisError("no state-channel closings on chain")
    horizon = max(list(console) + list(third))
    days = tuple(range(horizon + 1))
    return TrafficSeries(
        days=days,
        console_packets=tuple(console.get(d, 0) for d in days),
        third_party_packets=tuple(third.get(d, 0) for d in days),
    )


@dataclass(frozen=True)
class SpamEpisode:
    """§5.3.2: the HIP 10 arbitrage spike."""

    peak_day: int
    peak_packets: int
    baseline_before: float
    spike_multiplier: float
    decayed_by_day: Optional[int]


def spam_episode(
    series: TrafficSeries, window: int = 14, threshold_multiplier: float = 5.0
) -> SpamEpisode:
    """Locate the traffic spike: peak day, magnitude, decay day.

    The spike is detected as the maximum day whose volume exceeds
    ``threshold_multiplier`` times the trailing-window baseline.
    """
    totals = [c + t for c, t in zip(series.console_packets, series.third_party_packets)]
    if len(totals) < window + 2:
        raise AnalysisError("traffic series too short for spike detection")
    peak_day = max(range(window, len(totals)), key=lambda d: totals[d])
    baseline = sum(totals[max(0, peak_day - 2 * window):peak_day - window // 2])
    baseline /= max(peak_day - window // 2 - max(0, peak_day - 2 * window), 1)
    baseline = max(baseline, 1.0)
    multiplier = totals[peak_day] / baseline
    decayed_by = None
    for day in range(peak_day + 1, len(totals)):
        if totals[day] < threshold_multiplier * baseline:
            decayed_by = day
            break
    return SpamEpisode(
        peak_day=peak_day,
        peak_packets=totals[peak_day],
        baseline_before=baseline,
        spike_multiplier=multiplier,
        decayed_by_day=decayed_by,
    )
