"""Resale-market analyses (§4.3.3, Figure 7).

Every public function accepts either a live :class:`Blockchain` or an
:class:`repro.etl.store.EtlStore`; both backends produce identical
numbers (asserted by parity tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple, Union

from repro import units
from repro.chain.blockchain import Blockchain
from repro.chain.crypto import Address
from repro.chain.transactions import TransferHotspot
from repro.errors import AnalysisError

#: Either analysis backend: the in-memory chain or the ETL store.
ChainSource = Union[Blockchain, "EtlStore"]  # noqa: F821 - duck-typed


def _transfer_rows(
    chain: ChainSource,
) -> Iterator[Tuple[int, Address, Address, Address, int]]:
    """``(height, gateway, seller, buyer, amount_dc)`` in chain order."""
    if isinstance(chain, Blockchain):
        for height, txn in chain.iter_transactions(TransferHotspot):
            yield height, txn.gateway, txn.seller, txn.buyer, txn.amount_dc
    else:
        yield from chain.transfer_rows()

__all__ = ["ResaleStats", "resale_stats", "transfers_over_time", "top_traders"]


@dataclass(frozen=True)
class ResaleStats:
    """Figure 7a + §4.3.3 headline numbers."""

    total_transfers: int
    hotspots_transferred: int
    transfers_per_hotspot: Dict[int, int]
    transferred_fraction_of_fleet: float
    at_most_two_transfers_fraction: float
    zero_dc_fraction: float


def resale_stats(chain: ChainSource) -> ResaleStats:
    """Transfer counts, repeat-transfer distribution, 0-DC share."""
    per_hotspot: Dict[Address, int] = {}
    zero_dc = 0
    total = 0
    for _, gateway, _, _, amount_dc in _transfer_rows(chain):
        per_hotspot[gateway] = per_hotspot.get(gateway, 0) + 1
        total += 1
        if amount_dc == 0:
            zero_dc += 1
    if total == 0:
        raise AnalysisError("no transfer_hotspot transactions on chain")
    histogram: Dict[int, int] = {}
    for count in per_hotspot.values():
        histogram[count] = histogram.get(count, 0) + 1
    transferred = len(per_hotspot)
    fleet = (
        chain.ledger.hotspot_count
        if isinstance(chain, Blockchain)
        else chain.hotspot_count
    )
    return ResaleStats(
        total_transfers=total,
        hotspots_transferred=transferred,
        transfers_per_hotspot=dict(sorted(histogram.items())),
        transferred_fraction_of_fleet=transferred / fleet if fleet else 0.0,
        at_most_two_transfers_fraction=sum(
            v for k, v in histogram.items() if k <= 2
        ) / transferred,
        zero_dc_fraction=zero_dc / total,
    )


def transfers_over_time(
    chain: ChainSource, bucket_days: int = 30
) -> List[Tuple[int, int]]:
    """Figure 7c: (bucket start day, transfer count) time series."""
    buckets: Dict[int, int] = {}
    for height, _, _, _, _ in _transfer_rows(chain):
        day = height // units.BLOCKS_PER_DAY
        bucket = (day // bucket_days) * bucket_days
        buckets[bucket] = buckets.get(bucket, 0) + 1
    return sorted(buckets.items())


@dataclass(frozen=True)
class TraderActivity:
    """One wallet's buy/sell volume (Figure 7b)."""

    owner: Address
    bought: int
    sold: int

    @property
    def total(self) -> int:
        """Combined transfer participation."""
        return self.bought + self.sold


def top_traders(chain: ChainSource, top_n: int = 200) -> List[TraderActivity]:
    """Figure 7b: the most active transfer participants."""
    bought: Dict[Address, int] = {}
    sold: Dict[Address, int] = {}
    for _, _, seller, buyer, _ in _transfer_rows(chain):
        bought[buyer] = bought.get(buyer, 0) + 1
        sold[seller] = sold.get(seller, 0) + 1
    # Sorted so equal-total traders rank deterministically (the later
    # sort is stable and must not inherit set-iteration order).
    owners = sorted(set(bought) | set(sold))
    activity = [
        TraderActivity(owner=o, bought=bought.get(o, 0), sold=sold.get(o, 0))
        for o in owners
    ]
    activity.sort(key=lambda a: -a.total)
    return activity[:top_n]
