"""Ownership analyses (§4.3, Figure 6).

"Every hotspot has a designated owner, or more precisely, a wallet that
receives the rewards earned by the hotspot." The distribution, the owner
classes (HNT-accumulating application operators vs frequently-encashing
mining pools), and the geography of big fleets all come from joining
current ledger state against chain history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chain.blockchain import Blockchain
from repro.chain.crypto import Address
from repro.chain.transactions import StateChannelClose
from repro.errors import AnalysisError
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexCell

__all__ = [
    "OwnershipStats",
    "ownership_stats",
    "OwnerProfile",
    "classify_owners",
    "owner_fleet_map",
]


@dataclass(frozen=True)
class OwnershipStats:
    """§4.3 distribution summary."""

    n_owners: int
    n_hotspots: int
    owners_by_count: Dict[int, int]
    one_hotspot_fraction: float
    two_hotspot_fraction: float
    three_hotspot_fraction: float
    at_most_three_fraction: float
    five_or_more_fraction: float
    max_owned: int


def ownership_stats(chain: Blockchain) -> OwnershipStats:
    """The owner-size distribution from current ledger state."""
    counts = chain.ledger.owner_counts()
    if not counts:
        raise AnalysisError("no hotspots on chain")
    histogram: Dict[int, int] = {}
    for owned in counts.values():
        histogram[owned] = histogram.get(owned, 0) + 1
    n_owners = len(counts)
    return OwnershipStats(
        n_owners=n_owners,
        n_hotspots=sum(counts.values()),
        owners_by_count=dict(sorted(histogram.items())),
        one_hotspot_fraction=histogram.get(1, 0) / n_owners,
        two_hotspot_fraction=histogram.get(2, 0) / n_owners,
        three_hotspot_fraction=histogram.get(3, 0) / n_owners,
        at_most_three_fraction=sum(
            v for k, v in histogram.items() if k <= 3
        ) / n_owners,
        five_or_more_fraction=sum(
            v for k, v in histogram.items() if k >= 5
        ) / n_owners,
        max_owned=max(counts.values()),
    )


@dataclass(frozen=True)
class OwnerProfile:
    """One owner's inferred class (§4.3's HNT-balance heuristic)."""

    owner: Address
    hotspots: int
    hnt_balance: float
    data_packets_ferried: int
    inferred_class: str  # "application" | "mining" | "individual"


def classify_owners(
    chain: Blockchain,
    min_fleet: int = 3,
    application_hnt_threshold: float = 50.0,
) -> List[OwnerProfile]:
    """Infer owner classes from balances and data activity.

    The paper's inference: owners "using Helium in service of a
    real-world end application engage in a large number of data
    transactions and have thousands to tens of thousands of HNT";
    profit-seeking owners "frequently encash their HNT" and take no part
    in data transactions. Thresholds scale with simulation emission.
    """
    counts = chain.ledger.owner_counts()
    ferried: Dict[Address, int] = {}
    hotspot_owner = {
        gw: record.owner for gw, record in chain.ledger.hotspots.items()
    }
    for _, txn in chain.iter_transactions(StateChannelClose):
        for summary in txn.summaries:
            owner = hotspot_owner.get(summary.hotspot)
            if owner is not None:
                ferried[owner] = ferried.get(owner, 0) + summary.num_packets
    profiles: List[OwnerProfile] = []
    for owner, fleet in counts.items():
        if fleet < min_fleet:
            inferred = "individual"
        else:
            packets = ferried.get(owner, 0)
            wallet = chain.ledger.wallets.get(owner)
            balance = wallet.hnt if wallet is not None else 0.0
            if packets > 0 and balance >= application_hnt_threshold:
                inferred = "application"
            else:
                inferred = "mining"
        wallet = chain.ledger.wallets.get(owner)
        profiles.append(OwnerProfile(
            owner=owner,
            hotspots=fleet,
            hnt_balance=wallet.hnt if wallet is not None else 0.0,
            data_packets_ferried=ferried.get(owner, 0),
            inferred_class=inferred,
        ))
    profiles.sort(key=lambda p: -p.hotspots)
    return profiles


def owner_fleet_map(
    chain: Blockchain, owner: Address
) -> List[Tuple[Address, Optional[LatLon]]]:
    """Figure 6: the locations of one owner's fleet."""
    fleet = chain.ledger.hotspots_of(owner)
    if not fleet:
        raise AnalysisError(f"owner {owner} has no hotspots")
    out: List[Tuple[Address, Optional[LatLon]]] = []
    for record in fleet:
        location = None
        if record.location_token is not None:
            location = HexCell.from_token(record.location_token).center()
        out.append((record.gateway, location))
    return out
