"""Meta-infrastructure analyses (§6.1, §9.1; Table 1, Figure 9).

Runs the paper's annotation pipeline over the peerbook: every direct
(``/ip4``) listen address is mapped IP → ASN (zannotate-style) → owning
organisation (as2org-style), then aggregated into the Table 1 ranking,
the Figure 9 ASN distribution, per-city ASN diversity, and the §9.1
Spectrum terms-of-service exposure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import AnalysisError
from repro.p2p.backhaul import AccessType, AsUniverse
from repro.p2p.multiaddr import parse_multiaddr
from repro.p2p.peerbook import Peerbook

__all__ = [
    "IspRanking",
    "isp_ranking",
    "asn_distribution",
    "CityDiversity",
    "city_asn_diversity",
    "TosExposure",
    "tos_exposure",
    "cloud_hosted_peers",
]


@dataclass(frozen=True)
class IspRanking:
    """Table 1: hotspots per ISP organisation."""

    rows: Tuple[Tuple[str, int], ...]  # (org name, hotspot count), ranked
    total_annotated: int
    total_asns: int


def _annotate(
    peerbook: Peerbook, universe: AsUniverse
) -> Dict[str, int]:
    """Map each direct peer to its origin ASN (zannotate equivalent)."""
    asn_by_peer: Dict[str, int] = {}
    for entry in peerbook.entries_with_listen_addrs():
        parsed = parse_multiaddr(entry.listen_addrs[0])
        if parsed.is_relayed or parsed.ip is None:
            continue
        asn = universe.asn_for_ip(parsed.ip)
        if asn is not None:
            asn_by_peer[entry.peer] = asn
    return asn_by_peer


def isp_ranking(
    peerbook: Peerbook, universe: AsUniverse, top_n: int = 15
) -> IspRanking:
    """Table 1: top ISPs by hotspot count (public-IP peers only)."""
    asn_by_peer = _annotate(peerbook, universe)
    if not asn_by_peer:
        raise AnalysisError("no annotatable public-IP peers in peerbook")
    counts: Dict[str, int] = {}
    for asn in asn_by_peer.values():
        org = universe.org_for_asn(asn)
        counts[org] = counts.get(org, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])
    return IspRanking(
        rows=tuple(ranked[:top_n]),
        total_annotated=len(asn_by_peer),
        total_asns=len({a for a in asn_by_peer.values()}),
    )


def asn_distribution(
    peerbook: Peerbook, universe: AsUniverse
) -> List[Tuple[int, int]]:
    """Figure 9: (asn, hotspot count) sorted descending by count."""
    asn_by_peer = _annotate(peerbook, universe)
    counts: Dict[int, int] = {}
    for asn in asn_by_peer.values():
        counts[asn] = counts.get(asn, 0) + 1
    return sorted(counts.items(), key=lambda kv: -kv[1])


@dataclass(frozen=True)
class CityDiversity:
    """§6.1 per-city ASN diversity."""

    cities_with_hotspots: int
    single_asn_cities: int
    single_asn_cities_with_2plus: int
    examples: Tuple[Tuple[str, int], ...]  # (city, hotspots) single-ASN


def city_asn_diversity(
    peer_city: Dict[str, str],
    peer_asn: Dict[str, int],
) -> CityDiversity:
    """Count cities served by exactly one ASN.

    Args:
        peer_city: peer address → city name (from the world's ground
            truth, as the paper geolocates from asserted location).
        peer_asn: peer address → origin ASN (annotation output).
    """
    if not peer_city:
        raise AnalysisError("no peers with city information")
    asns_by_city: Dict[str, set] = {}
    count_by_city: Dict[str, int] = {}
    for peer, city in peer_city.items():
        asn = peer_asn.get(peer)
        if asn is None:
            continue
        asns_by_city.setdefault(city, set()).add(asn)
        count_by_city[city] = count_by_city.get(city, 0) + 1
    single = [c for c, asns in asns_by_city.items() if len(asns) == 1]
    single_2plus = [c for c in single if count_by_city.get(c, 0) >= 2]
    examples = sorted(
        ((c, count_by_city[c]) for c in single_2plus),
        key=lambda kv: -kv[1],
    )
    return CityDiversity(
        cities_with_hotspots=len(asns_by_city),
        single_asn_cities=len(single),
        single_asn_cities_with_2plus=len(single_2plus),
        examples=tuple(examples[:10]),
    )


@dataclass(frozen=True)
class TosExposure:
    """§9.1: hotspots at risk from residential-only terms of service."""

    org: str
    hotspots_on_org: int
    us_hotspots_total: int
    us_fraction_at_risk: float
    detectable_on_port: int  # all of them: Helium uses port 44158


def tos_exposure(
    peerbook: Peerbook,
    universe: AsUniverse,
    us_peers: set,
    org: str = "Spectrum",
) -> TosExposure:
    """What fraction of US hotspots one ISP could knock offline.

    "If Spectrum were to flip the switch and enforce these provisions,
    at least 17 % of the US hotspots would fall offline." Detection is
    trivial: hotspots "attempt to use a unique port, 44158".
    """
    asn_by_peer = _annotate(peerbook, universe)
    on_org_us = 0
    port_detectable = 0
    us_annotated = 0
    for peer, asn in asn_by_peer.items():
        if peer not in us_peers:
            continue
        us_annotated += 1
        profile = universe.isp(asn)
        if profile.name == org:
            on_org_us += 1
            entry = peerbook.entry(peer)
            parsed = parse_multiaddr(entry.listen_addrs[0])
            if parsed.port == 44158:
                port_detectable += 1
    if us_annotated == 0:
        raise AnalysisError("no annotated US peers")
    return TosExposure(
        org=org,
        hotspots_on_org=on_org_us,
        us_hotspots_total=us_annotated,
        us_fraction_at_risk=on_org_us / us_annotated,
        detectable_on_port=port_detectable,
    )


def cloud_hosted_peers(
    peerbook: Peerbook, universe: AsUniverse
) -> Dict[str, int]:
    """§6.1: peers on cloud providers (the validator look-alikes)."""
    asn_by_peer = _annotate(peerbook, universe)
    counts: Dict[str, int] = {}
    for asn in asn_by_peer.values():
        profile = universe.isp(asn)
        if profile.access_type is AccessType.CLOUD:
            counts[profile.name] = counts.get(profile.name, 0) + 1
    return counts
