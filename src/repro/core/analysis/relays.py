"""Circuit-relay analyses (§6.2; Figures 10 and 11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.geo.geodesy import LatLon
from repro.p2p.peerbook import Peerbook

__all__ = [
    "RelayStats",
    "relay_stats",
    "relay_load_histogram",
    "RelayDistanceComparison",
    "relay_distances",
    "LightTransitionImpact",
    "light_hotspot_transition",
]


@dataclass(frozen=True)
class RelayStats:
    """§6.2 headline: how much of the network is relayed."""

    peers_with_listen_addrs: int
    relayed_peers: int
    relayed_fraction: float
    relay_nodes: int
    max_peers_per_relay: int


def relay_stats(peerbook: Peerbook) -> RelayStats:
    """Relay prevalence (paper: 55.48 % of 27,281 listening peers)."""
    listening = peerbook.entries_with_listen_addrs()
    if not listening:
        raise AnalysisError("peerbook has no listening peers")
    relayed = [e for e in listening if e.is_relayed]
    load = peerbook.relay_load()
    return RelayStats(
        peers_with_listen_addrs=len(listening),
        relayed_peers=len(relayed),
        relayed_fraction=len(relayed) / len(listening),
        relay_nodes=len(load),
        max_peers_per_relay=max(load.values()) if load else 0,
    )


def relay_load_histogram(peerbook: Peerbook) -> Dict[int, int]:
    """Figure 10: number of relays carrying n peers, keyed by n."""
    load = peerbook.relay_load()
    if not load:
        raise AnalysisError("no relayed peers in peerbook")
    histogram: Dict[int, int] = {}
    for peers in load.values():
        histogram[peers] = histogram.get(peers, 0) + 1
    return dict(sorted(histogram.items()))


@dataclass(frozen=True)
class RelayDistanceComparison:
    """Figure 11: actual relay→peer distances vs random reassignment."""

    actual_km: Tuple[float, ...]
    randomized_trials_km: Tuple[Tuple[float, ...], ...]
    actual_median_km: float
    randomized_median_km: float
    #: Two-sample Kolmogorov–Smirnov statistic between the actual
    #: distances and the pooled random trials. Small (≲0.05) supports
    #: the paper's conclusion that relay selection is random.
    ks_statistic: float


def relay_distances(
    peerbook: Peerbook,
    locations: Dict[str, LatLon],
    rng: np.random.Generator,
    n_trials: int = 5,
) -> RelayDistanceComparison:
    """Compare actual relay→peer distances against random assignment.

    Args:
        peerbook: the observed peerbook.
        locations: peer address → asserted location.
        rng: random stream for the reassignment trials.
        n_trials: number of randomised trials (the paper runs 5).
    """
    pairs = []
    for relay, peer in peerbook.relay_pairs():
        relay_loc = locations.get(relay)
        peer_loc = locations.get(peer)
        if relay_loc is None or peer_loc is None:
            continue
        if relay_loc.is_null_island() or peer_loc.is_null_island():
            continue
        pairs.append((relay_loc, peer_loc))
    if not pairs:
        raise AnalysisError("no locatable relay pairs")
    actual = [r.distance_km(p) for r, p in pairs]
    relay_pool = [r for r, _ in pairs]
    trials: List[Tuple[float, ...]] = []
    for _ in range(n_trials):
        trial = []
        for _, peer_loc in pairs:
            pick = relay_pool[int(rng.integers(len(relay_pool)))]
            trial.append(peer_loc.distance_km(pick))
        trials.append(tuple(trial))

    pooled = np.sort(np.concatenate([np.array(t) for t in trials]))
    actual_sorted = np.sort(np.array(actual))
    ks = _ks_statistic(actual_sorted, pooled)
    return RelayDistanceComparison(
        actual_km=tuple(actual),
        randomized_trials_km=tuple(trials),
        actual_median_km=float(np.median(actual_sorted)),
        randomized_median_km=float(np.median(pooled)),
        ks_statistic=ks,
    )


def _ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample KS statistic over pre-sorted samples."""
    grid = np.concatenate([a, b])
    grid.sort()
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


@dataclass(frozen=True)
class LightTransitionImpact:
    """What the validator/light-hotspot transition does to p2p analysis.

    Footnote 10 of the paper: "With the impending launch of validator
    nodes, hotspots will have the option to convert to so-called 'light'
    nodes. Only the validators will maintain a fully connected p2p graph,
    and thus only they will have access to the network information of
    some hotspots in the future." — i.e. the §6 measurements become
    impossible. This what-if quantifies the loss.
    """

    converted: int
    visible_before: int
    visible_after: int
    stranded_relayed_peers: int

    @property
    def visibility_loss(self) -> float:
        """Fraction of previously-listening peers no longer observable."""
        if self.visible_before == 0:
            return 0.0
        return 1.0 - self.visible_after / self.visible_before


def light_hotspot_transition(
    peerbook: Peerbook,
    convert_fraction: float,
    rng: np.random.Generator,
) -> LightTransitionImpact:
    """Simulate a fraction of hotspots converting to light nodes.

    Light nodes drop out of the public p2p graph: their own entries
    vanish, and any peer relayed *through* a converting node loses its
    listen address too (it must find a new relay among the shrinking
    public set — here counted as stranded).
    """
    if not (0.0 <= convert_fraction <= 1.0):
        raise AnalysisError(
            f"convert fraction must be in [0, 1]: {convert_fraction}"
        )
    listening = peerbook.entries_with_listen_addrs()
    peers = [entry.peer for entry in listening]
    n_convert = int(len(peers) * convert_fraction)
    converted = set(
        peers[int(i)] for i in rng.choice(len(peers), size=n_convert,
                                          replace=False)
    ) if n_convert else set()
    stranded = 0
    visible_after = 0
    for entry in listening:
        if entry.peer in converted:
            continue
        relay = entry.relay_peer
        if relay is not None and relay in converted:
            stranded += 1
            continue
        visible_after += 1
    return LightTransitionImpact(
        converted=len(converted),
        visible_before=len(listening),
        visible_after=visible_after,
        stranded_relayed_peers=stranded,
    )
