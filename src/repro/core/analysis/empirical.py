"""Assembled empirical analyses (§8.1, §8.2.2).

Thin composition layer over :mod:`repro.field`: builds the paper's two
experiment classes (stationary best-case, neighbourhood walks) on top of
a simulated world, and reduces them to the numbers §8 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.field.counter_app import CounterAppExperiment
from repro.field.reconcile import (
    AckTable,
    Hip15Accuracy,
    MissRunStats,
    ack_table,
    hip15_accuracy,
    miss_run_stats,
    prr,
)
from repro.field.walks import WalkExperiment, generate_walk
from repro.geo.geodesy import LatLon, haversine_km_many, latlon_arrays
from repro.lorawan.network import NetworkHotspot
from repro.radio.propagation import Environment
from repro.simulation.world import World

__all__ = [
    "hotspot_field_near",
    "StationaryReport",
    "run_stationary",
    "WalkReport",
    "run_walk",
]


def hotspot_field_near(
    world: World,
    center: LatLon,
    radius_km: float = 12.0,
) -> List[NetworkHotspot]:
    """Online hotspots near a site, as data-plane objects.

    Relay status comes from the hotspot's backhaul NAT flag, which is
    what slows its downlinks (Fig. 16's rarely-chosen relayed hotspot).

    Deliberately *not* served by ``world.index``: the live index lags a
    silent mover's relocation until its next rebuild and returns hits
    in bucket-insertion order, so the same world produces a different
    field in-memory than after a snapshot round-trip — and downstream
    field experiments consume RNG per hotspot in field order. One
    vectorised haversine pass over the fleet plus a gateway sort makes
    the field a pure function of the world's contents, so serial runs,
    farm workers and shard workers all produce byte-identical reports.
    """
    fleet = list(world.hotspots.values())
    if not fleet:
        raise AnalysisError(f"no online hotspots within {radius_km} km of {center}")
    lats, lons = latlon_arrays(h.actual_location for h in fleet)
    km = haversine_km_many(center.lat, center.lon, lats, lons)
    near = [
        sim_hotspot
        for sim_hotspot, distance in zip(fleet, km.tolist())
        if distance <= radius_km
        and sim_hotspot.online
        and not sim_hotspot.is_validator
    ]
    near.sort(key=lambda sim_hotspot: sim_hotspot.gateway)
    hotspots: List[NetworkHotspot] = []
    for sim_hotspot in near:
        relayed = (
            sim_hotspot.backhaul.behind_nat
            if sim_hotspot.backhaul is not None
            else False
        )
        hotspots.append(NetworkHotspot(
            gateway=sim_hotspot.gateway,
            location=sim_hotspot.actual_location,
            environment=sim_hotspot.environment,
            relayed=relayed,
        ))
    if not hotspots:
        raise AnalysisError(f"no online hotspots within {radius_km} km of {center}")
    return hotspots


@dataclass
class StationaryReport:
    """§8.1 numbers for one stationary run."""

    prr: float
    prr_excluding_outages: float
    packets_sent: int
    miss_runs: MissRunStats
    acks: AckTable


def run_stationary(
    world: World,
    site: LatLon,
    rng: np.random.Generator,
    duration_hours: float = 24.0,
    outages: Optional[List[Tuple[float, float]]] = None,
    environment: Environment = Environment.SUBURBAN,
) -> StationaryReport:
    """The best-case test: a fixed sensor amid the simulated fleet."""
    field = hotspot_field_near(world, site)
    experiment = CounterAppExperiment(
        field, site, device_environment=environment
    )
    result = experiment.run(rng, duration_hours=duration_hours, outages=outages)
    return StationaryReport(
        prr=result.prr,
        prr_excluding_outages=result.prr_excluding_outages(),
        packets_sent=result.packets_sent,
        miss_runs=miss_run_stats(result.records),
        acks=ack_table(result.records),
    )


@dataclass
class WalkReport:
    """§8.2.2 numbers for one walk."""

    prr: float
    packets_sent: int
    acks: AckTable
    hip15: Hip15Accuracy


def run_walk(
    world: World,
    start: LatLon,
    rng: np.random.Generator,
    environment: Environment = Environment.STREET_LEVEL,
    n_legs: int = 24,
) -> WalkReport:
    """One neighbourhood walk through the simulated fleet."""
    field = hotspot_field_near(world, start)
    experiment = WalkExperiment(field, environment=environment)
    trace = generate_walk(start, rng, n_legs=n_legs)
    result = experiment.run(trace, rng)
    return WalkReport(
        prr=result.prr,
        packets_sent=result.packets_sent,
        acks=ack_table(result.records),
        hip15=hip15_accuracy(result.records),
    )
