"""Every Section 3–8 measurement, as documented functions.

One module per paper theme:

* :mod:`~repro.core.analysis.chainstats` — §3 whole-chain statistics.
* :mod:`~repro.core.analysis.moves` — §4.1 location-change analyses.
* :mod:`~repro.core.analysis.growth` — §4.2 adoption curves.
* :mod:`~repro.core.analysis.ownership` — §4.3 owner distributions.
* :mod:`~repro.core.analysis.resale` — §4.3.3 transfer market.
* :mod:`~repro.core.analysis.traffic` — §5 data-transfer behaviour.
* :mod:`~repro.core.analysis.meta` — §6.1 ISP/ASN meta-infrastructure.
* :mod:`~repro.core.analysis.relays` — §6.2 circuit-relay fabric.
* :mod:`~repro.core.analysis.incentives` — §7 cheating case studies.
* :mod:`~repro.core.analysis.witnesses` — §8.2.1 witness distributions.
* :mod:`~repro.core.analysis.empirical` — §8.1/8.2.2 field statistics.
"""
