"""Incentive case-study analyses (§7): silent movers and lying witnesses.

Both detectors run on chain data only — the exact procedure the paper
used to find "Joyful Pink Skunk" (asserted in Pennsylvania, witnessing in
New York) and witnesses claiming RSSIs "as high as 1,041,313,293 dBm".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.chain.blockchain import Blockchain
from repro.chain.crypto import Address
from repro.chain.naming import hotspot_name
from repro.chain.transactions import PocReceipts, Rewards, RewardType
from repro.errors import AnalysisError
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexCell
from repro.radio.lora import MAX_EIRP_DBM_US

__all__ = [
    "SilentMoverFinding",
    "find_silent_movers",
    "RssiAnomaly",
    "find_rssi_anomalies",
    "cheater_rewards",
]


@dataclass(frozen=True)
class SilentMoverFinding:
    """A hotspot whose witnessing geometry contradicts its assert."""

    gateway: Address
    name: str
    asserted_location: LatLon
    #: Median location of challengees it witnessed (where it really is).
    witness_activity_centroid: LatLon
    contradiction_km: float
    contradictory_witness_events: int
    still_rewarded: bool


def find_silent_movers(
    chain: Blockchain,
    impossible_km: float = 300.0,
    min_events: int = 3,
) -> List[SilentMoverFinding]:
    """§7.1: witnesses physically impossible given asserted locations.

    Replays the chain in order, maintaining each hotspot's asserted
    location *as of each witness event* — a hotspot that honestly moved
    and re-asserted is never flagged for its pre-move witnessing. What
    remains are hotspots that repeatedly witness challenges farther than
    ``impossible_km`` from where they claim to be (no LoRa link reaches
    that far): silent movers, never-honest asserts (the Striped Yellow
    Bird pattern), and location-impossible collusion.
    """
    from repro.chain.transactions import AssertLocation

    asserted: Dict[Address, LatLon] = {}
    events: Dict[Address, List[LatLon]] = {}
    for _, txn in chain.iter_transactions():
        if isinstance(txn, AssertLocation):
            asserted[txn.gateway] = HexCell.from_token(txn.location_token).center()
            continue
        if not isinstance(txn, PocReceipts):
            continue
        receipt = txn
        challengee_loc = HexCell.from_token(
            receipt.challengee_location_token
        ).center()
        for report in receipt.witnesses:
            if not report.is_valid:
                continue
            witness_loc = asserted.get(report.witness)
            if witness_loc is None or witness_loc.is_null_island():
                continue
            if witness_loc.distance_km(challengee_loc) > impossible_km:
                events.setdefault(report.witness, []).append(challengee_loc)
    # Final asserted locations for reporting.
    asserted = {
        gateway: HexCell.from_token(record.location_token).center()
        for gateway, record in chain.ledger.hotspots.items()
        if record.location_token is not None
    }

    rewarded = _rewarded_gateways(chain)
    findings: List[SilentMoverFinding] = []
    for gateway, challengee_locs in events.items():
        if len(challengee_locs) < min_events:
            continue
        lats = sorted(l.lat for l in challengee_locs)
        lons = sorted(l.lon for l in challengee_locs)
        centroid = LatLon(lats[len(lats) // 2], lons[len(lons) // 2])
        witness_loc = asserted[gateway]
        findings.append(SilentMoverFinding(
            gateway=gateway,
            name=hotspot_name(gateway),
            asserted_location=witness_loc,
            witness_activity_centroid=centroid,
            contradiction_km=witness_loc.distance_km(centroid),
            contradictory_witness_events=len(challengee_locs),
            still_rewarded=gateway in rewarded,
        ))
    findings.sort(key=lambda f: -f.contradiction_km)
    return findings


@dataclass(frozen=True)
class RssiAnomaly:
    """A witness report with a physically impossible RSSI (§7.2)."""

    witness: Address
    name: str
    rssi_dbm: float
    challengee: Address
    passed_validity: bool


def find_rssi_anomalies(
    chain: Blockchain, eirp_bound_dbm: float = MAX_EIRP_DBM_US
) -> List[RssiAnomaly]:
    """Witness reports above the legal EIRP bound (impossible RSSI).

    "FCC regulations limit transmitters to +36 dBm EIRP. Yet some
    witnesses claim an RSSI as high as 1,041,313,293 dBm."
    """
    anomalies: List[RssiAnomaly] = []
    for _, receipt in chain.iter_transactions(PocReceipts):
        for report in receipt.witnesses:
            if report.rssi_dbm > eirp_bound_dbm:
                anomalies.append(RssiAnomaly(
                    witness=report.witness,
                    name=hotspot_name(report.witness),
                    rssi_dbm=report.rssi_dbm,
                    challengee=receipt.challengee,
                    passed_validity=report.is_valid,
                ))
    anomalies.sort(key=lambda a: -a.rssi_dbm)
    return anomalies


def _rewarded_gateways(chain: Blockchain) -> set:
    """Gateways that ever earned PoC witness/challengee rewards."""
    rewarded = set()
    for _, txn in chain.iter_transactions(Rewards):
        for share in txn.shares:
            if share.gateway is not None and share.reward_type in (
                RewardType.POC_WITNESS, RewardType.POC_CHALLENGEE
            ):
                rewarded.add(share.gateway)
    return rewarded


def cheater_rewards(
    chain: Blockchain, gateways: List[Address]
) -> Dict[Address, float]:
    """Total HNT earned by specific gateways (are cheats profitable?)."""
    if not gateways:
        raise AnalysisError("no gateways given")
    wanted = set(gateways)
    totals: Dict[Address, int] = {g: 0 for g in gateways}
    for _, txn in chain.iter_transactions(Rewards):
        for share in txn.shares:
            if share.gateway in wanted:
                totals[share.gateway] += share.amount_bones
    from repro import units

    return {g: units.bones_to_hnt(b) for g, b in totals.items()}
