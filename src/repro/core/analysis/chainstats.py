"""Whole-chain statistics (§3).

Headline result: "Out of 59,092,640 total transactions, 58,619,153 are
carried out only to provide proof for the network accuracy and validity.
... approximately 99.2% of all blockchain transactions are PoC
transactions."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.chain.blockchain import Blockchain
from repro.errors import AnalysisError

__all__ = ["ChainStats", "chain_stats"]

_POC_KINDS = ("poc_request", "poc_receipts")


@dataclass(frozen=True)
class ChainStats:
    """Transaction census of one chain."""

    total_transactions: int
    counts_by_kind: Dict[str, int]
    poc_transactions: int
    poc_share: float
    #: Share corrected for PoC thinning (simulations run fewer
    #: challenges than the real chain; see ScenarioConfig).
    poc_share_descaled: Optional[float]
    first_block_time: int
    tip_height: int


def chain_stats(
    chain: Blockchain, poc_thinning_factor: Optional[float] = None
) -> ChainStats:
    """Census the chain's transactions.

    Args:
        chain: the blockchain to census.
        poc_thinning_factor: how many real challenges each simulated one
            represents; when given, a descaled PoC share is computed as
            ``poc·f / (poc·f + non_poc)``.
    """
    counts = chain.count_transactions()
    total = sum(counts.values())
    if total == 0:
        raise AnalysisError("chain has no transactions to census")
    poc = sum(counts.get(kind, 0) for kind in _POC_KINDS)
    descaled = None
    if poc_thinning_factor is not None:
        if poc_thinning_factor <= 0:
            raise AnalysisError(
                f"thinning factor must be positive: {poc_thinning_factor}"
            )
        scaled_poc = poc * poc_thinning_factor
        descaled = scaled_poc / (scaled_poc + (total - poc))
    return ChainStats(
        total_transactions=total,
        counts_by_kind=dict(counts),
        poc_transactions=poc,
        poc_share=poc / total,
        poc_share_descaled=descaled,
        first_block_time=chain.time_of(0),
        tip_height=chain.height,
    )
