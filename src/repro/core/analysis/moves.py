"""Location-change analyses (§4.1; Figures 2, 3, 4).

All results come from scanning assert_location transactions on the
chain, exactly as the paper scans the DeWi replica. A hotspot's *moves*
are its asserts after the first (the initial assert publishes, it does
not move).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.chain.blockchain import Blockchain
from repro.chain.crypto import Address
from repro.chain.transactions import AssertLocation
from repro.errors import AnalysisError
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexCell

__all__ = [
    "MoveStats",
    "MoveRecord",
    "collect_move_records",
    "move_stats",
    "move_distance_cdf",
    "long_moves",
    "move_interval_blocks",
    "null_island_stats",
]


@dataclass(frozen=True)
class MoveRecord:
    """One relocation: from → to, with chain timing."""

    gateway: Address
    from_location: LatLon
    to_location: LatLon
    block: int
    prev_block: int

    @property
    def distance_km(self) -> float:
        """Great-circle length of the move."""
        return self.from_location.distance_km(self.to_location)

    @property
    def interval_blocks(self) -> int:
        """Blocks since the previous assert of this hotspot."""
        return self.block - self.prev_block


@dataclass
class MoveStats:
    """Figure 2 summary: moves-per-hotspot distribution."""

    n_hotspots: int
    moves_per_hotspot: Dict[int, int]
    never_moved_fraction: float
    at_most_two_fraction: float
    more_than_five_fraction: float
    max_moves: int
    #: Conditional (among movers) versions, the consistent Fig. 2 reading.
    movers_at_most_two_fraction: float = 0.0
    movers_more_than_five_fraction: float = 0.0


def collect_move_records(chain: Blockchain) -> List[MoveRecord]:
    """All relocations, in chain order."""
    last_seen: Dict[Address, Tuple[LatLon, int]] = {}
    records: List[MoveRecord] = []
    for height, txn in chain.iter_transactions(AssertLocation):
        location = HexCell.from_token(txn.location_token).center()
        previous = last_seen.get(txn.gateway)
        if previous is not None:
            records.append(MoveRecord(
                gateway=txn.gateway,
                from_location=previous[0],
                to_location=location,
                block=height,
                prev_block=previous[1],
            ))
        last_seen[txn.gateway] = (location, height)
    return records


def move_stats(chain: Blockchain) -> MoveStats:
    """Figure 2: the distribution of location changes per hotspot."""
    move_counts: Dict[Address, int] = {}
    for _, txn in chain.iter_transactions(AssertLocation):
        move_counts[txn.gateway] = move_counts.get(txn.gateway, 0) + 1
    if not move_counts:
        raise AnalysisError("no assert_location transactions on chain")
    # nonce 1 = initial assert; moves = asserts - 1.
    moves = {gw: n - 1 for gw, n in move_counts.items()}
    histogram: Dict[int, int] = {}
    for count in moves.values():
        histogram[count] = histogram.get(count, 0) + 1
    n = len(moves)
    never = histogram.get(0, 0)
    at_most_two = sum(v for k, v in histogram.items() if k <= 2)
    more_than_five = sum(v for k, v in histogram.items() if k > 5)
    movers = n - never
    return MoveStats(
        n_hotspots=n,
        moves_per_hotspot=dict(sorted(histogram.items())),
        never_moved_fraction=never / n,
        at_most_two_fraction=at_most_two / n,
        more_than_five_fraction=more_than_five / n,
        max_moves=max(histogram) if histogram else 0,
        movers_at_most_two_fraction=(
            sum(v for k, v in histogram.items() if 1 <= k <= 2) / movers
            if movers else 0.0
        ),
        movers_more_than_five_fraction=(
            more_than_five / movers if movers else 0.0
        ),
    )


def move_distance_cdf(
    records: List[MoveRecord], exclude_null_island: bool = False
) -> np.ndarray:
    """Sorted move distances (km) for the Figure 3a/3b CDFs."""
    distances = [
        r.distance_km
        for r in records
        if not (
            exclude_null_island
            and (r.from_location.is_null_island() or r.to_location.is_null_island())
        )
    ]
    if not distances:
        raise AnalysisError("no move records to build a CDF from")
    return np.sort(np.array(distances))


def long_moves(
    records: List[MoveRecord], threshold_km: float = 500.0
) -> List[MoveRecord]:
    """Figure 3c: relocations longer than ``threshold_km``."""
    return [r for r in records if r.distance_km > threshold_km]


@dataclass(frozen=True)
class MoveIntervalStats:
    """Figure 4: CDF anchors of blocks between relocations."""

    intervals_blocks: Tuple[int, ...]
    within_day_fraction: float
    within_week_fraction: float
    within_month_fraction: float


def move_interval_blocks(records: List[MoveRecord]) -> MoveIntervalStats:
    """Figure 4: block intervals between consecutive relocations."""
    if not records:
        raise AnalysisError("no move records")
    intervals = sorted(r.interval_blocks for r in records)
    array = np.array(intervals)
    day, week, month = 1440, 7 * 1440, 30 * 1440
    n = len(array)
    return MoveIntervalStats(
        intervals_blocks=tuple(intervals),
        within_day_fraction=float((array <= day).sum()) / n,
        within_week_fraction=float((array <= week).sum()) / n,
        within_month_fraction=float((array <= month).sum()) / n,
    )


@dataclass(frozen=True)
class NullIslandStats:
    """§4.1 (0,0) accounting: 372 asserts, 331 (89 %) first-time."""

    total_null_asserts: int
    first_time_null_asserts: int
    relocations_to_null: int
    currently_at_null: int

    @property
    def first_time_fraction(self) -> float:
        """Share of (0,0) asserts that were initial asserts."""
        if self.total_null_asserts == 0:
            return 0.0
        return self.first_time_null_asserts / self.total_null_asserts


def null_island_stats(chain: Blockchain) -> NullIslandStats:
    """Count (0, 0) location assertions and who stayed there."""
    total = 0
    first_time = 0
    relocations = 0
    current: Dict[Address, bool] = {}
    for _, txn in chain.iter_transactions(AssertLocation):
        location = HexCell.from_token(txn.location_token).center()
        at_null = location.is_null_island()
        current[txn.gateway] = at_null
        if at_null:
            total += 1
            if txn.nonce == 1:
                first_time += 1
            else:
                relocations += 1
    return NullIslandStats(
        total_null_asserts=total,
        first_time_null_asserts=first_time,
        relocations_to_null=relocations,
        currently_at_null=sum(1 for v in current.values() if v),
    )
