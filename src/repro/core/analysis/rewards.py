"""Reward-economics analyses: earnings distribution and payback time.

Footnote 1 of the paper: "Hotspots pay for themselves in a few weeks, but
we do not view the current valuation of the HNT token as sustainable if
the paying user base does not grow as well." These analyses quantify
both halves: per-hotspot earnings over time, the payback distribution at
prevailing prices, and the speculative ratio (coverage rewards vs data
revenue) behind the sustainability worry.

Every public function accepts either a live :class:`Blockchain` or an
:class:`repro.etl.store.EtlStore`; both backends produce identical
numbers (asserted by parity tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro import units
from repro.chain.blockchain import Blockchain
from repro.chain.crypto import Address
from repro.chain.transactions import Rewards, RewardType
from repro.errors import AnalysisError

#: Either analysis backend: the in-memory chain or the ETL store.
ChainSource = Union[Blockchain, "EtlStore"]  # noqa: F821 - duck-typed

__all__ = [
    "EarningsStats",
    "hotspot_earnings",
    "PaybackStats",
    "payback_analysis",
    "speculation_ratio",
]


@dataclass(frozen=True)
class EarningsStats:
    """Distribution of lifetime HNT earnings across hotspots."""

    n_hotspots: int
    total_hnt: float
    median_hnt: float
    p90_hnt: float
    max_hnt: float
    by_reward_type_hnt: Dict[str, float]


def hotspot_earnings(chain: ChainSource) -> EarningsStats:
    """Lifetime earnings per hotspot, plus the split by reward class."""
    if isinstance(chain, Blockchain):
        per_gateway: Dict[Address, int] = {}
        by_type: Dict[str, int] = {}
        for _, txn in chain.iter_transactions(Rewards):
            for share in txn.shares:
                by_type[share.reward_type.value] = (
                    by_type.get(share.reward_type.value, 0) + share.amount_bones
                )
                if share.gateway is not None:
                    per_gateway[share.gateway] = (
                        per_gateway.get(share.gateway, 0) + share.amount_bones
                    )
    else:
        per_gateway = chain.rewards_by_gateway()
        by_type = chain.rewards_by_type()
    if not per_gateway:
        raise AnalysisError("no gateway rewards on chain")
    values = np.sort(np.array(
        [units.bones_to_hnt(b) for b in per_gateway.values()]
    ))
    return EarningsStats(
        n_hotspots=len(values),
        total_hnt=float(values.sum()),
        median_hnt=float(np.median(values)),
        p90_hnt=float(np.percentile(values, 90)),
        max_hnt=float(values[-1]),
        by_reward_type_hnt={
            k: units.bones_to_hnt(v) for k, v in by_type.items()
        },
    )


@dataclass(frozen=True)
class PaybackStats:
    """Footnote 1: how fast a hotspot pays for itself."""

    hotspot_cost_usd: float
    hnt_price_usd: float
    n_hotspots: int
    median_payback_days: float
    p25_payback_days: float
    paid_back_fraction: float  # within the observed window


def payback_analysis(
    chain: ChainSource,
    hnt_price_usd: float,
    hotspot_cost_usd: float = 400.0,
    scale_factor: Optional[float] = None,
) -> PaybackStats:
    """Time-to-payback per hotspot at a given HNT price.

    Walks reward transactions in chain order, accumulating USD value per
    gateway, and records the block at which each crosses the hardware
    cost. ``scale_factor`` descales per-hotspot earnings for scaled-down
    simulations (emission scales with the fleet, so per-hotspot earnings
    are scale-invariant already; pass None normally).
    """
    if hnt_price_usd <= 0 or hotspot_cost_usd <= 0:
        raise AnalysisError("price and cost must be positive")
    if isinstance(chain, Blockchain):
        added_block: Dict[Address, int] = {
            g: r.added_block for g, r in chain.ledger.hotspots.items()
        }
        share_rows = (
            (height, share.gateway, share.amount_bones)
            for height, txn in chain.iter_transactions(Rewards)
            for share in txn.shares
        )
    else:
        added_block = chain.gateway_added_blocks()
        share_rows = (
            (height, gateway, amount)
            for height, _, gateway, amount, _ in chain.reward_share_rows()
        )
    cumulative: Dict[Address, float] = {}
    payback_block: Dict[Address, int] = {}
    factor = 1.0 if not scale_factor else 1.0
    for height, gateway, amount_bones in share_rows:
        if gateway is None:
            continue
        value = units.bones_to_hnt(amount_bones) * hnt_price_usd * factor
        total = cumulative.get(gateway, 0.0) + value
        cumulative[gateway] = total
        if total >= hotspot_cost_usd and gateway not in payback_block:
            payback_block[gateway] = height
    if not added_block:
        raise AnalysisError("no hotspots on chain")
    payback_days: List[float] = []
    for gateway, block in payback_block.items():
        start = added_block.get(gateway, 0)
        payback_days.append((block - start) / units.BLOCKS_PER_DAY)
    if not payback_days:
        return PaybackStats(
            hotspot_cost_usd=hotspot_cost_usd,
            hnt_price_usd=hnt_price_usd,
            n_hotspots=len(added_block),
            median_payback_days=float("inf"),
            p25_payback_days=float("inf"),
            paid_back_fraction=0.0,
        )
    array = np.sort(np.array(payback_days))
    return PaybackStats(
        hotspot_cost_usd=hotspot_cost_usd,
        hnt_price_usd=hnt_price_usd,
        n_hotspots=len(added_block),
        median_payback_days=float(np.median(array)),
        p25_payback_days=float(np.percentile(array, 25)),
        paid_back_fraction=len(array) / len(added_block),
    )


_COVERAGE_TYPES = (
    RewardType.POC_CHALLENGER,
    RewardType.POC_CHALLENGEE,
    RewardType.POC_WITNESS,
)


def speculation_ratio(chain: ChainSource) -> float:
    """Coverage-reward HNT per data-transfer HNT (the §5 imbalance).

    A large ratio is the paper's "more hotspot activity than user
    activity": the network pays far more for *being there* than for
    *carrying data*.
    """
    coverage = 0
    data = 0
    if isinstance(chain, Blockchain):
        for _, txn in chain.iter_transactions(Rewards):
            for share in txn.shares:
                if share.reward_type in _COVERAGE_TYPES:
                    coverage += share.amount_bones
                elif share.reward_type is RewardType.DATA_TRANSFER:
                    data += share.amount_bones
    else:
        by_type = chain.rewards_by_type()
        coverage = sum(by_type.get(t.value, 0) for t in _COVERAGE_TYPES)
        data = by_type.get(RewardType.DATA_TRANSFER.value, 0)
    if data == 0:
        raise AnalysisError("no data-transfer rewards on chain")
    return coverage / data
