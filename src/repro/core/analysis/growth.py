"""Adoption-curve analyses (§4.2, Figure 5).

Two sources are combined, as in the paper: the chain gives *connected*
counts (every add_gateway ever); the p2p/world side gives *online*
counts ("fully synced and participating in PoC challenges").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.chain.blockchain import Blockchain
from repro.chain.transactions import AddGateway
from repro.errors import AnalysisError

__all__ = ["GrowthCurves", "growth_curves", "snapshot"]


@dataclass(frozen=True)
class GrowthCurves:
    """Daily adoption series (Figure 5)."""

    days: Tuple[int, ...]
    daily_added: Tuple[int, ...]
    cumulative_connected: Tuple[int, ...]
    online: Tuple[int, ...]
    online_us: Tuple[int, ...]
    online_international: Tuple[int, ...]

    def peak_daily(self) -> int:
        """Largest single-day addition."""
        return max(self.daily_added)

    def final_daily_rate(self, window_days: int = 14) -> float:
        """Mean additions/day over the final window (the "1,000/day"
        claim, descaled by the caller's scale factor)."""
        tail = self.daily_added[-window_days:]
        return float(np.mean(tail))


def growth_curves(
    chain: Blockchain,
    growth_log: Optional[Sequence] = None,
) -> GrowthCurves:
    """Build Figure 5's series from the chain (+ optional world log).

    Args:
        chain: source of add_gateway timing.
        growth_log: optional engine :class:`GrowthLogRow` sequence for
            the online/US split; without it, online columns are zeros.
    """
    adds_by_day: dict = {}
    for height, _ in chain.iter_transactions(AddGateway):
        day = height // units.BLOCKS_PER_DAY
        adds_by_day[day] = adds_by_day.get(day, 0) + 1
    if not adds_by_day:
        raise AnalysisError("no add_gateway transactions on chain")
    horizon = max(adds_by_day)
    if growth_log:
        horizon = max(horizon, max(row.day for row in growth_log))
    days = list(range(horizon + 1))
    daily = [adds_by_day.get(d, 0) for d in days]
    cumulative = list(np.cumsum(daily))

    online = [0] * len(days)
    online_us = [0] * len(days)
    online_intl = [0] * len(days)
    if growth_log:
        for row in growth_log:
            if row.day < len(days):
                online[row.day] = row.online
                online_us[row.day] = row.online_us
                online_intl[row.day] = row.online_international
    return GrowthCurves(
        days=tuple(days),
        daily_added=tuple(daily),
        cumulative_connected=tuple(int(c) for c in cumulative),
        online=tuple(online),
        online_us=tuple(online_us),
        online_international=tuple(online_intl),
    )


@dataclass(frozen=True)
class GrowthSnapshot:
    """Connected/online split at one day (the paper's Mar 7 / May 26)."""

    day: int
    connected: int
    online: int
    online_us: int
    online_international: int


def snapshot(curves: GrowthCurves, day: int) -> GrowthSnapshot:
    """The network state on simulation day ``day``."""
    if day < 0 or day >= len(curves.days):
        raise AnalysisError(
            f"day {day} outside curve range [0, {len(curves.days) - 1}]"
        )
    return GrowthSnapshot(
        day=day,
        connected=curves.cumulative_connected[day],
        online=curves.online[day],
        online_us=curves.online_us[day],
        online_international=curves.online_international[day],
    )
