"""Hex-aggregated deployment density (the explorer's hex view).

The Helium Explorer aggregates hotspots into coarse H3 cells — the
paper's Figure 16 links a res-8 hex page
(``explorer.helium.com/hotspots/hex/8829a41a95fffff``). These analyses
provide the same aggregation over the simulated chain: counts per cell,
the densest deployments, the HIP-15 density disincentive in action
(how many hotspots sit within 300 m of another), and a spatial
concentration index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.chain.blockchain import Blockchain
from repro.errors import AnalysisError
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexCell
from repro.geo.spatialindex import SpatialIndex

__all__ = [
    "DensityStats",
    "hex_density",
    "crowding_stats",
    "spatial_gini",
]

#: The explorer aggregates at res 8 (edge ≈ 530 m).
EXPLORER_HEX_RESOLUTION: int = 8


@dataclass(frozen=True)
class DensityStats:
    """Hotspots aggregated into coarse hex cells."""

    resolution: int
    occupied_cells: int
    total_hotspots: int
    max_cell_count: int
    top_cells: Tuple[Tuple[str, int], ...]  # (token, count), densest first

    @property
    def mean_per_occupied_cell(self) -> float:
        """Average hotspots per occupied cell."""
        if self.occupied_cells == 0:
            return 0.0
        return self.total_hotspots / self.occupied_cells


def _located_hotspots(chain: Blockchain) -> List[Tuple[str, LatLon]]:
    out = []
    for gateway, record in chain.ledger.hotspots.items():
        if record.location_token is None:
            continue
        location = HexCell.from_token(record.location_token).center()
        if location.is_null_island():
            continue
        out.append((gateway, location))
    if not out:
        raise AnalysisError("no located hotspots on chain")
    return out


def hex_density(
    chain: Blockchain,
    resolution: int = EXPLORER_HEX_RESOLUTION,
    top_n: int = 10,
) -> DensityStats:
    """Aggregate asserted hotspot locations into res-``resolution`` cells."""
    from repro.geo.hexgrid import HexGrid

    counts: Dict[str, int] = {}
    located = _located_hotspots(chain)
    for _, location in located:
        token = HexGrid.encode_cell(location, resolution).token
        counts[token] = counts.get(token, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])
    return DensityStats(
        resolution=resolution,
        occupied_cells=len(counts),
        total_hotspots=len(located),
        max_cell_count=ranked[0][1],
        top_cells=tuple(ranked[:top_n]),
    )


@dataclass(frozen=True)
class CrowdingStats:
    """The HIP-15 density disincentive, measured (§2.3, §8.2.1)."""

    total_hotspots: int
    #: Hotspots with at least one neighbour inside the 300 m exclusion.
    crowded_hotspots: int
    #: Hotspots with no neighbour within witness range at all ("if a
    #: hotspot cannot 'see' any other hotspots", §2.3).
    isolated_hotspots: int
    witness_range_km: float

    @property
    def crowded_fraction(self) -> float:
        """Share of the fleet forfeiting witness rewards to crowding."""
        return self.crowded_hotspots / self.total_hotspots

    @property
    def isolated_fraction(self) -> float:
        """Share of the fleet that can only earn challenger rewards."""
        return self.isolated_hotspots / self.total_hotspots


def crowding_stats(
    chain: Blockchain,
    exclusion_km: float = 0.3,
    witness_range_km: float = 15.0,
) -> CrowdingStats:
    """Count HIP-15-crowded and witness-isolated hotspots."""
    located = _located_hotspots(chain)
    index: SpatialIndex[str] = SpatialIndex(cell_deg=0.25)
    for gateway, location in located:
        index.insert(location, gateway)
    crowded = 0
    isolated = 0
    for gateway, location in located:
        in_range = [
            g for _, g in index.within_radius(location, witness_range_km)
            if g != gateway
        ]
        if not in_range:
            isolated += 1
            continue
        near = [
            g for _, g in index.within_radius(location, exclusion_km)
            if g != gateway
        ]
        if near:
            crowded += 1
    return CrowdingStats(
        total_hotspots=len(located),
        crowded_hotspots=crowded,
        isolated_hotspots=isolated,
        witness_range_km=witness_range_km,
    )


def spatial_gini(
    chain: Blockchain, resolution: int = EXPLORER_HEX_RESOLUTION
) -> float:
    """Gini coefficient of hotspots over occupied hex cells.

    0 = perfectly even spread (the coverage ideal the incentives chase);
    →1 = everything piled into a few cells (the crowding the decay rule
    punishes). A useful single-number summary of "uncontrolled
    deployment does not ensure predictable coverage" (§10).
    """
    from repro.geo.hexgrid import HexGrid

    counts: Dict[str, int] = {}
    for _, location in _located_hotspots(chain):
        token = HexGrid.encode_cell(location, resolution).token
        counts[token] = counts.get(token, 0) + 1
    values = np.sort(np.array(list(counts.values()), dtype=float))
    n = len(values)
    if n == 1:
        return 0.0
    # Standard Gini over the occupied-cell count distribution.
    ranks = np.arange(1, n + 1)
    return float(2 * np.sum(ranks * values) / (n * values.sum()) - (n + 1) / n)
