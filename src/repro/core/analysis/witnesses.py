"""Witness-distribution analyses (§8.2.1; Figures 13 and 14).

Every public function accepts either a live :class:`Blockchain` or an
:class:`repro.etl.store.EtlStore` — the persisted ETL replica — and
produces identical numbers from both (asserted by parity tests). The
store path reads precomputed distance/validity columns via indexed SQL
instead of re-deriving hex-cell geometry per receipt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.chain.blockchain import Blockchain
from repro.chain.transactions import PocReceipts
from repro.errors import AnalysisError
from repro.geo.hexgrid import HexCell

#: Either analysis backend: the in-memory chain or the ETL store.
ChainSource = Union[Blockchain, "EtlStore"]  # noqa: F821 - duck-typed

__all__ = [
    "WitnessDistanceStats",
    "witness_distance_cdf",
    "WitnessRssiStats",
    "witness_rssi_cdf",
    "WitnessCountStats",
    "witnesses_per_challenge",
    "validity_breakdown",
]


@dataclass(frozen=True)
class WitnessDistanceStats:
    """Figure 13: distances of purportedly valid witnesses."""

    distances_km: Tuple[float, ...]
    median_km: float
    p95_km: float
    max_km: float
    beyond_25km_fraction: float
    beyond_60km_count: int  # the over-water outlier tail


def witness_distance_cdf(
    chain: ChainSource,
    start_height: int = 0,
    end_height: Optional[int] = None,
) -> WitnessDistanceStats:
    """Distance CDF of all valid witnesses over a block window."""
    if isinstance(chain, Blockchain):
        distances: List[float] = []
        for _, receipt in chain.iter_transactions(
            PocReceipts, start_height=start_height, end_height=end_height
        ):
            challengee = HexCell.from_token(
                receipt.challengee_location_token
            ).center()
            for report in receipt.witnesses:
                if not report.is_valid:
                    continue
                witness = HexCell.from_token(
                    report.reported_location_token
                ).center()
                if witness.is_null_island() or challengee.is_null_island():
                    continue
                distances.append(challengee.distance_km(witness))
    else:
        distances = chain.witness_distances(start_height, end_height)
    if not distances:
        raise AnalysisError("no valid witnesses in the requested window")
    array = np.sort(np.array(distances))
    return WitnessDistanceStats(
        distances_km=tuple(float(d) for d in array),
        median_km=float(np.median(array)),
        p95_km=float(np.percentile(array, 95)),
        max_km=float(array[-1]),
        beyond_25km_fraction=float((array > 25.0).mean()),
        beyond_60km_count=int((array > 60.0).sum()),
    )


@dataclass(frozen=True)
class WitnessRssiStats:
    """Figure 14: RSSI distribution of witness reports."""

    rssis_dbm: Tuple[float, ...]
    median_dbm: float
    p5_dbm: float
    p95_dbm: float


def witness_rssi_cdf(
    chain: ChainSource,
    start_height: int = 0,
    end_height: Optional[int] = None,
    valid_only: bool = True,
) -> WitnessRssiStats:
    """RSSI CDF of witness reports over a block window.

    The paper computes this over a four-day window (2021-05-18 to
    2021-05-22) of PoC receipts; pass the matching block bounds to
    reproduce that slice.
    """
    if isinstance(chain, Blockchain):
        rssis: List[float] = []
        for _, receipt in chain.iter_transactions(
            PocReceipts, start_height=start_height, end_height=end_height
        ):
            for report in receipt.witnesses:
                if valid_only and not report.is_valid:
                    continue
                rssis.append(report.rssi_dbm)
    else:
        rssis = chain.witness_rssis(start_height, end_height, valid_only)
    if not rssis:
        raise AnalysisError("no witness reports in the requested window")
    array = np.sort(np.array(rssis))
    return WitnessRssiStats(
        rssis_dbm=tuple(float(r) for r in array),
        median_dbm=float(np.median(array)),
        p5_dbm=float(np.percentile(array, 5)),
        p95_dbm=float(np.percentile(array, 95)),
    )


@dataclass(frozen=True)
class WitnessCountStats:
    """Valid witnesses per challenge ("more witnesses are better", §2.3)."""

    challenges: int
    histogram: Tuple[Tuple[int, int], ...]  # (witness count, challenges)
    zero_witness_fraction: float
    median_witnesses: float
    max_witnesses: int


def witnesses_per_challenge(chain: ChainSource) -> WitnessCountStats:
    """Distribution of valid-witness counts across challenges.

    The zero-witness fraction is the §2.3 sparse-deployment population:
    hotspots that "can only earn PoC rewards for challenge construction".
    """
    if isinstance(chain, Blockchain):
        counts: List[int] = []
        for _, receipt in chain.iter_transactions(PocReceipts):
            counts.append(len(receipt.valid_witnesses))
    else:
        counts = chain.receipt_valid_witness_counts()
    if not counts:
        raise AnalysisError("no PoC receipts on chain")
    histogram: dict = {}
    for count in counts:
        histogram[count] = histogram.get(count, 0) + 1
    array = np.array(counts)
    return WitnessCountStats(
        challenges=len(counts),
        histogram=tuple(sorted(histogram.items())),
        zero_witness_fraction=float((array == 0).mean()),
        median_witnesses=float(np.median(array)),
        max_witnesses=int(array.max()),
    )


def validity_breakdown(chain: ChainSource) -> dict:
    """Counts of witness reports by validity outcome/reason."""
    if isinstance(chain, Blockchain):
        breakdown = {"valid": 0}
        for _, receipt in chain.iter_transactions(PocReceipts):
            for report in receipt.witnesses:
                if report.is_valid:
                    breakdown["valid"] += 1
                else:
                    reason = report.invalid_reason or "unspecified"
                    breakdown[reason] = breakdown.get(reason, 0) + 1
    else:
        breakdown = chain.witness_validity_breakdown()
    if sum(breakdown.values()) == 0:
        raise AnalysisError("no witness reports on chain")
    return breakdown
