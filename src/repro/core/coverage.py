"""Incentive-derived coverage models (§8.2.1).

"As Helium lacks clear, radio-oriented coverage maps, we develop and test
coverage models based on network incentives." The progression:

1. :class:`ExplorerDotMap` — what explorer.helium.com shows: dots, not
   coverage (Figure 12a). Provides counts, deliberately no area.
2. :class:`DiskModel` — HIP 15 implies a hotspot covers a 300 m radius;
   0.09295 % of the contiguous US (Figure 12b).
3. :class:`HullModel` — convex hulls around each challengee and its
   valid witnesses (Figure 12c); optionally dropping witnesses beyond a
   25 km plausibility cutoff (Figure 12d, 0.5723 %).
4. :class:`RevisedModel` — hulls plus radial coverage at each hull
   vertex (radius = vertex→challengee distance) grown by the inverse-
   FSPL RSSI term d = 10^((w−s)/20) (Figure 12e, 3.3032 %).

Union areas are computed with an unbiased within-shape sampling
estimator: for shape i, the fraction of its own uniform samples whose
lowest-index covering shape is i, times its area, sums to the union area
— exact in expectation and cheap even for thousands of overlapping
shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError, GeoError
from repro.geo.geodesy import (
    LatLon,
    destination,
    destination_many,
    haversine_km_many,
)
from repro.geo.landmass import Landmass
from repro.geo.polygon import Polygon, convex_hull, disk_area_km2
from repro.radio.propagation import FSPL_SENSITIVITY_DBM, fspl_range_growth_m

__all__ = [
    "WitnessGeometry",
    "build_witness_geometry",
    "Shape",
    "Disk",
    "HullShape",
    "CoverageEstimate",
    "CoverageModel",
    "ExplorerDotMap",
    "DiskModel",
    "HullModel",
    "RevisedModel",
    "PredictionScore",
    "prediction_accuracy",
]


# --------------------------------------------------------------------------
# Witness geometry extraction
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class WitnessGeometry:
    """One challenge reduced to the geometry the coverage models use."""

    challengee: LatLon
    #: (witness location, witness distance km, witness RSSI dBm) for each
    #: chain-valid witness.
    witnesses: Tuple[Tuple[LatLon, float, float], ...]


def build_witness_geometry(
    receipts: Iterable,
    locate,
    max_witness_km: Optional[float] = None,
) -> List[WitnessGeometry]:
    """Convert PoC receipts into witness geometries.

    Args:
        receipts: :class:`~repro.chain.transactions.PocReceipts` objects.
        locate: callable mapping a hex token to :class:`LatLon` (usually
            ``HexCell.from_token(...).center()``; injected so analyses can
            substitute historical ledgers).
        max_witness_km: optional plausibility cutoff — witnesses farther
            than this from the challengee are dropped (the paper's 25 km
            refinement).
    """
    geometries: List[WitnessGeometry] = []
    for receipt in receipts:
        challengee = locate(receipt.challengee_location_token)
        if challengee is None:
            continue
        witnesses: List[Tuple[LatLon, float, float]] = []
        for report in receipt.witnesses:
            if not report.is_valid:
                continue
            location = locate(report.reported_location_token)
            if location is None:
                continue
            distance = challengee.distance_km(location)
            if max_witness_km is not None and distance > max_witness_km:
                continue
            witnesses.append((location, distance, report.rssi_dbm))
        geometries.append(WitnessGeometry(
            challengee=challengee, witnesses=tuple(witnesses)
        ))
    return geometries


# --------------------------------------------------------------------------
# Shapes
# --------------------------------------------------------------------------


class Shape:
    """A covered region: supports contains/area/sample/extent."""

    def contains(self, point: LatLon) -> bool:
        raise NotImplementedError

    def area_km2(self) -> float:
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> LatLon:
        """A uniform point inside the shape."""
        raise NotImplementedError

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``n`` uniform interior points as parallel lat/lon arrays.

        Subclasses override with batch draws that consume the RNG stream
        bitwise-identically to ``n`` sequential :meth:`sample` calls;
        this fallback just loops.
        """
        lats = np.empty(n)
        lons = np.empty(n)
        for i in range(n):
            point = self.sample(rng)
            lats[i] = point.lat
            lons[i] = point.lon
        return lats, lons

    def contains_many(
        self, lats: np.ndarray, lons: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`contains` over parallel lat/lon arrays."""
        return np.fromiter(
            (
                self.contains(LatLon(float(lat), float(lon)))
                for lat, lon in zip(lats, lons)
            ),
            dtype=bool,
            count=len(lats),
        )

    @property
    def centroid(self) -> LatLon:
        raise NotImplementedError

    @property
    def extent_km(self) -> float:
        """Max distance from centroid to any covered point."""
        raise NotImplementedError

    def bbox(self) -> Tuple[float, float, float, float]:
        """(south, west, north, east) bounding box of the shape."""
        center = self.centroid
        pad_lat = self.extent_km / 110.574
        cos_lat = max(math.cos(math.radians(center.lat)), 0.05)
        pad_lon = self.extent_km / (111.320 * cos_lat)
        return (
            center.lat - pad_lat,
            center.lon - pad_lon,
            center.lat + pad_lat,
            center.lon + pad_lon,
        )


class _ShapeBinIndex:
    """Bbox-binned index: point query touches exactly one bin.

    Shapes register in every grid bin their bounding box overlaps, so a
    point lookup is a single dict access plus exact contains tests —
    independent of the largest shape's extent (a global-radius search
    over thousands of overlapping hulls would be quadratic in practice).
    """

    def __init__(self, shapes: Sequence[Shape], bin_deg: float = 0.25) -> None:
        self.bin_deg = bin_deg
        self._bins: Dict[Tuple[int, int], List[int]] = {}
        for index, shape in enumerate(shapes):
            south, west, north, east = shape.bbox()
            lat_lo = int(math.floor(south / bin_deg))
            lat_hi = int(math.floor(north / bin_deg))
            lon_lo = int(math.floor(west / bin_deg))
            lon_hi = int(math.floor(east / bin_deg))
            for lat_bin in range(lat_lo, lat_hi + 1):
                for lon_bin in range(lon_lo, lon_hi + 1):
                    self._bins.setdefault((lat_bin, lon_bin), []).append(index)

    def candidates(self, point: LatLon) -> List[int]:
        """Shape indices whose bbox bin contains ``point``."""
        key = (
            int(math.floor(point.lat / self.bin_deg)),
            int(math.floor(point.lon / self.bin_deg)),
        )
        return self._bins.get(key, [])


@dataclass(frozen=True)
class Disk(Shape):
    """A great-circle disk."""

    center: LatLon
    radius_km: float

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise GeoError(f"disk radius must be positive: {self.radius_km}")

    def contains(self, point: LatLon) -> bool:
        return self.center.distance_km(point) <= self.radius_km

    def area_km2(self) -> float:
        return disk_area_km2(self.radius_km)

    def sample(self, rng: np.random.Generator) -> LatLon:
        radius = self.radius_km * math.sqrt(float(rng.random()))
        return destination(self.center, float(rng.uniform(0, 360)), radius)

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        # One draw of 2n uniforms consumes the stream exactly like n
        # sequential (radius, bearing) scalar draws: uniform(0, 360) is
        # bitwise 360 * random().
        u = rng.random(2 * n)
        radii = self.radius_km * np.sqrt(u[0::2])
        bearings = 360.0 * u[1::2]
        return destination_many(
            self.center.lat, self.center.lon, bearings, radii
        )

    def contains_many(
        self, lats: np.ndarray, lons: np.ndarray
    ) -> np.ndarray:
        distances = haversine_km_many(
            self.center.lat, self.center.lon, lats, lons
        )
        return distances <= self.radius_km

    @property
    def centroid(self) -> LatLon:
        return self.center

    @property
    def extent_km(self) -> float:
        return self.radius_km


class HullShape(Shape):
    """A convex hull, sampled via fan triangulation."""

    def __init__(self, polygon: Polygon) -> None:
        self.polygon = polygon
        self._centroid = polygon.centroid()
        self._extent = polygon.max_radius_km()
        self._area = polygon.area_km2()
        self._triangles = self._triangulate()
        # Parallel arrays over the fan triangles for batch sampling.
        self._tri_b = np.array(
            [(b.lat, b.lon) for _, b, _, _ in self._triangles]
        ).reshape(len(self._triangles), 2)
        self._tri_c = np.array(
            [(c.lat, c.lon) for _, _, c, _ in self._triangles]
        ).reshape(len(self._triangles), 2)
        self._tri_cum = np.cumsum([t[3] for t in self._triangles])

    def _triangulate(self) -> List[Tuple[LatLon, LatLon, LatLon, float]]:
        vertices = self.polygon.vertices
        anchor = vertices[0]
        triangles = []
        for i in range(1, len(vertices) - 1):
            b, c = vertices[i], vertices[i + 1]
            area = _triangle_area_km2(anchor, b, c)
            triangles.append((anchor, b, c, area))
        return triangles

    def contains(self, point: LatLon) -> bool:
        return self.polygon.contains(point)

    def area_km2(self) -> float:
        return self._area

    def sample(self, rng: np.random.Generator) -> LatLon:
        areas = [t[3] for t in self._triangles]
        total = sum(areas)
        if total <= 0:
            return self._centroid
        roll = float(rng.random()) * total
        cumulative = 0.0
        chosen = self._triangles[-1]
        for triangle in self._triangles:
            cumulative += triangle[3]
            if roll <= cumulative:
                chosen = triangle
                break
        a, b, c, _ = chosen
        u, v = float(rng.random()), float(rng.random())
        if u + v > 1.0:
            u, v = 1.0 - u, 1.0 - v
        lat = a.lat + u * (b.lat - a.lat) + v * (c.lat - a.lat)
        lon = a.lon + u * (b.lon - a.lon) + v * (c.lon - a.lon)
        return LatLon(lat, lon)

    def sample_many(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Stream-compatible with n sequential sample() calls: each point
        # consumes (roll, u, v), so one draw of 3n uniforms sliced by
        # stride matches the scalar path bitwise.
        total = float(self._tri_cum[-1]) if len(self._triangles) else 0.0
        if total <= 0:
            return (
                np.full(n, self._centroid.lat),
                np.full(n, self._centroid.lon),
            )
        draws = rng.random(3 * n)
        rolls = draws[0::3] * total
        chosen = np.minimum(
            np.searchsorted(self._tri_cum, rolls, side="left"),
            len(self._triangles) - 1,
        )
        u, v = draws[1::3], draws[2::3]
        reflect = u + v > 1.0
        u = np.where(reflect, 1.0 - u, u)
        v = np.where(reflect, 1.0 - v, v)
        anchor = self._triangles[0][0]
        b_lat = self._tri_b[chosen, 0]
        b_lon = self._tri_b[chosen, 1]
        c_lat = self._tri_c[chosen, 0]
        c_lon = self._tri_c[chosen, 1]
        lats = anchor.lat + u * (b_lat - anchor.lat) + v * (c_lat - anchor.lat)
        lons = anchor.lon + u * (b_lon - anchor.lon) + v * (c_lon - anchor.lon)
        return lats, lons

    def contains_many(
        self, lats: np.ndarray, lons: np.ndarray
    ) -> np.ndarray:
        return self.polygon.contains_many(lats, lons)

    @property
    def centroid(self) -> LatLon:
        return self._centroid

    @property
    def extent_km(self) -> float:
        return self._extent


def _triangle_area_km2(a: LatLon, b: LatLon, c: LatLon) -> float:
    """Planar triangle area on the local tangent plane (km²)."""
    from repro.geo.geodesy import local_project_km

    (x1, y1), (x2, y2), (x3, y3) = local_project_km([a, b, c], a)
    return abs((x2 - x1) * (y3 - y1) - (x3 - x1) * (y2 - y1)) / 2.0


# --------------------------------------------------------------------------
# Models
# --------------------------------------------------------------------------


@dataclass
class CoverageEstimate:
    """Result of evaluating one coverage model against a landmass."""

    model: str
    n_shapes: int
    union_area_km2: float
    landmass_fraction: float
    #: Fraction descaled to the real fleet size (≈ linear in the sparse
    #: regime; None when no scale factor was supplied).
    descaled_fraction: Optional[float] = None
    #: Area contribution by shape class (hull / radial / rssi), Fig 12e.
    breakdown_km2: Dict[str, float] = field(default_factory=dict)


#: Below this many points a scatter costs more than it saves — pickling
#: the model and shipping chunks dominates the contains sweep itself.
_SHARD_MIN_POINTS = 4096


class CoverageModel:
    """Base: a set of shapes plus union-area machinery."""

    name = "base"

    def __init__(self, shapes: Sequence[Shape], tags: Optional[Sequence[str]] = None):
        self.shapes: List[Shape] = list(shapes)
        self.tags: List[str] = list(tags) if tags is not None else ["shape"] * len(self.shapes)
        if len(self.tags) != len(self.shapes):
            raise AnalysisError("tags must align with shapes")
        self._index = _ShapeBinIndex(self.shapes)

    # -- point queries ------------------------------------------------------

    def covering_shapes(self, point: LatLon) -> List[int]:
        """Indices of shapes containing ``point``, ascending."""
        if not self.shapes:
            return []
        return sorted(
            i for i in self._index.candidates(point)
            if self.shapes[i].contains(point)
        )

    def first_covering(self, point: LatLon) -> Optional[int]:
        """Lowest index of a covering shape, or None (fast path).

        Bin candidate lists are built in ascending index order, so the
        first containing candidate is the answer — under heavy overlap
        this terminates after a handful of tests.
        """
        for i in self._index.candidates(point):
            if self.shapes[i].contains(point):
                return i
        return None

    def covers(self, point: LatLon) -> bool:
        """Whether the model predicts coverage at ``point``."""
        return bool(self.covering_shapes(point))

    def first_covering_many(
        self, lats: np.ndarray, lons: np.ndarray, pool=None
    ) -> np.ndarray:
        """Vectorised :meth:`first_covering` over parallel lat/lon arrays.

        Points are routed to their grid bin's candidate shapes, then the
        candidate shapes are swept in ascending index order — one batch
        ``contains_many`` per shape over every point still unresolved in
        that shape's bins, retiring points as soon as a cover is found.
        Returns the covering shape index per point, −1 when uncovered.

        With a :class:`~repro.parallel.shards.ShardPool`, large batches
        scatter over the workers instead: ownership is a pure function
        of the single point (lowest-index covering shape), so chunk
        boundaries cannot change any answer and the sharded result is
        byte-identical to serial for any worker count.
        """
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        if (
            pool is not None
            and pool.workers > 1
            and lats.size >= _SHARD_MIN_POINTS
        ):
            return self._first_covering_sharded(lats, lons, pool)
        owners = np.full(lats.shape, -1, dtype=np.int64)
        if not self.shapes or lats.size == 0:
            return owners
        bin_deg = self._index.bin_deg
        lat_bins = np.floor(lats / bin_deg).astype(np.int64)
        lon_bins = np.floor(lons / bin_deg).astype(np.int64)
        combined = np.stack([lat_bins, lon_bins], axis=1)
        uniq, inverse, counts = np.unique(
            combined, axis=0, return_inverse=True, return_counts=True
        )
        order = np.argsort(inverse, kind="stable")
        groups = np.split(order, np.cumsum(counts)[:-1])
        # Invert bin→candidates into shape→points so each shape is
        # tested once, over one large batch.
        shape_points: Dict[int, List[np.ndarray]] = {}
        for g, group in enumerate(groups):
            candidates = self._index._bins.get(
                (int(uniq[g, 0]), int(uniq[g, 1]))
            )
            if not candidates:
                continue
            for shape_index in candidates:
                shape_points.setdefault(shape_index, []).append(group)
        unowned = np.ones(lats.shape, dtype=bool)
        for shape_index in sorted(shape_points):
            pts = np.concatenate(shape_points[shape_index])
            pts = pts[unowned[pts]]
            if pts.size == 0:
                continue
            hit = self.shapes[shape_index].contains_many(
                lats[pts], lons[pts]
            )
            if hit.any():
                covered = pts[hit]
                owners[covered] = shape_index
                unowned[covered] = False
        return owners

    def _first_covering_sharded(
        self, lats: np.ndarray, lons: np.ndarray, pool
    ) -> np.ndarray:
        """Scatter one first-covering query over the shard pool.

        Partition: points sort by their candidate-index grid bin (the
        model's own spatial partition — the hex-region analogue for
        sample points) and split into contiguous chunks, one per
        worker, so a chunk's points share candidate shapes and each
        worker touches a compact neighbourhood. The model ships once as
        a digest-checked pickle that workers memoise; every chunk comes
        back tagged with its point indices, so the merge reassembles
        the exact serial answer regardless of which worker ran what.
        """
        import hashlib
        import os
        import pickle
        import tempfile

        bin_deg = self._index.bin_deg
        lat_bins = np.floor(lats / bin_deg).astype(np.int64)
        lon_bins = np.floor(lons / bin_deg).astype(np.int64)
        order = np.lexsort((lon_bins, lat_bins))
        n_chunks = min(pool.workers, lats.size)
        base, extra = divmod(lats.size, n_chunks)
        chunks = []
        start = 0
        for c in range(n_chunks):
            size = base + (1 if c < extra else 0)
            chunks.append(order[start:start + size])
            start += size
        blob = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        sha = hashlib.sha256(blob).hexdigest()
        handle, path = tempfile.mkstemp(
            prefix="coverage-model-", suffix=".pkl"
        )
        try:
            with os.fdopen(handle, "wb") as fh:
                fh.write(blob)
            gathered = pool.run([
                ("coverage_chunk", (path, sha, lats[chunk], lons[chunk], chunk))
                for chunk in chunks
            ])
        finally:
            os.unlink(path)
        owners = np.full(lats.shape, -1, dtype=np.int64)
        for indices, chunk_owners in gathered:
            owners[indices] = chunk_owners
        return owners

    # -- union area ----------------------------------------------------------

    def union_area_km2(
        self,
        rng: np.random.Generator,
        samples_per_shape: int = 24,
        pool=None,
    ) -> Tuple[float, Dict[str, float]]:
        """Unbiased union area and per-tag breakdown.

        For each shape, uniform interior samples are credited to the
        *lowest-index* covering shape; the shape's area times its
        credited fraction contributes to the union. Summed over shapes
        this is exactly the area of the union, in expectation.

        Each shape's samples are drawn in one batch (stream-compatible
        with the scalar reference); ownership for every sample across
        all shapes is then resolved with one batched first-covering
        query. The RNG never leaves this thread — only the pure
        ownership query shards over ``pool``, so the estimate is
        byte-identical for any worker count.
        """
        n_shapes = len(self.shapes)
        if n_shapes == 0:
            return 0.0, {}
        lat_parts = []
        lon_parts = []
        for shape in self.shapes:
            lats, lons = shape.sample_many(rng, samples_per_shape)
            lat_parts.append(lats)
            lon_parts.append(lons)
        all_lats = np.concatenate(lat_parts)
        all_lons = np.concatenate(lon_parts)
        owners = self.first_covering_many(all_lats, all_lons, pool=pool)
        source = np.repeat(np.arange(n_shapes), samples_per_shape)
        credited_mask = (owners == -1) | (owners == source)
        credited = np.bincount(
            source[credited_mask], minlength=n_shapes
        )
        total = 0.0
        by_tag: Dict[str, float] = {}
        for i, shape in enumerate(self.shapes):
            contribution = (
                shape.area_km2() * int(credited[i]) / samples_per_shape
            )
            total += contribution
            tag = self.tags[i]
            by_tag[tag] = by_tag.get(tag, 0.0) + contribution
        return total, by_tag

    def union_area_km2_reference(
        self, rng: np.random.Generator, samples_per_shape: int = 24
    ) -> Tuple[float, Dict[str, float]]:
        """Scalar reference for :meth:`union_area_km2` (property tests,
        benchmark baseline). Consumes the RNG stream identically."""
        total = 0.0
        by_tag: Dict[str, float] = {}
        for i, shape in enumerate(self.shapes):
            credited = 0
            for _ in range(samples_per_shape):
                point = shape.sample(rng)
                owner = self.first_covering(point)
                if owner is None or owner == i:
                    credited += 1
            contribution = shape.area_km2() * credited / samples_per_shape
            total += contribution
            tag = self.tags[i]
            by_tag[tag] = by_tag.get(tag, 0.0) + contribution
        return total, by_tag

    def landmass_fraction(
        self,
        landmass: Landmass,
        rng: np.random.Generator,
        samples_per_shape: int = 24,
        scale_factor: Optional[float] = None,
        pool=None,
    ) -> CoverageEstimate:
        """Fraction of ``landmass`` covered, with overseas area excluded.

        Shapes centred outside the landmass are skipped (consuming no
        randomness); samples landing off-landmass are not credited. The
        centroid gate, the landmass mask over every sample, and the
        first-covering ownership query each run as one batched pass —
        the last of which shards over ``pool`` when one is supplied,
        byte-identically (all randomness is drawn on this thread before
        the scatter).
        """
        n_shapes = len(self.shapes)
        total = 0.0
        by_tag: Dict[str, float] = {}
        if n_shapes == 0:
            fraction = 0.0
        else:
            cen_lats = np.fromiter(
                (s.centroid.lat for s in self.shapes),
                dtype=float,
                count=n_shapes,
            )
            cen_lons = np.fromiter(
                (s.centroid.lon for s in self.shapes),
                dtype=float,
                count=n_shapes,
            )
            kept = np.flatnonzero(landmass.contains_many(cen_lats, cen_lons))
            lat_parts = []
            lon_parts = []
            for i in kept:
                lats, lons = self.shapes[i].sample_many(
                    rng, samples_per_shape
                )
                lat_parts.append(lats)
                lon_parts.append(lons)
            if lat_parts:
                all_lats = np.concatenate(lat_parts)
                all_lons = np.concatenate(lon_parts)
                source = np.repeat(kept, samples_per_shape)
                on_land = landmass.contains_many(all_lats, all_lons)
                owners = self.first_covering_many(
                    all_lats[on_land], all_lons[on_land], pool=pool
                )
                land_source = source[on_land]
                credited_mask = (owners == -1) | (owners == land_source)
                credited = np.bincount(
                    land_source[credited_mask], minlength=n_shapes
                )
                for i in kept:
                    contribution = (
                        self.shapes[i].area_km2()
                        * int(credited[i])
                        / samples_per_shape
                    )
                    total += contribution
                    tag = self.tags[i]
                    by_tag[tag] = by_tag.get(tag, 0.0) + contribution
            fraction = total / landmass.area_km2
        descaled = None
        if scale_factor is not None and scale_factor > 0:
            descaled = min(fraction / scale_factor, 1.0)
        return CoverageEstimate(
            model=self.name,
            n_shapes=len(self.shapes),
            union_area_km2=total,
            landmass_fraction=fraction,
            descaled_fraction=descaled,
            breakdown_km2=by_tag,
        )

    def landmass_fraction_reference(
        self,
        landmass: Landmass,
        rng: np.random.Generator,
        samples_per_shape: int = 24,
        scale_factor: Optional[float] = None,
    ) -> CoverageEstimate:
        """Scalar reference for :meth:`landmass_fraction` (property
        tests, benchmark baseline). Consumes the RNG stream identically."""
        total = 0.0
        by_tag: Dict[str, float] = {}
        for i, shape in enumerate(self.shapes):
            if not landmass.contains(shape.centroid):
                continue
            credited = 0
            for _ in range(samples_per_shape):
                point = shape.sample(rng)
                if not landmass.contains(point):
                    continue
                owner = self.first_covering(point)
                if owner is None or owner == i:
                    credited += 1
            contribution = shape.area_km2() * credited / samples_per_shape
            total += contribution
            tag = self.tags[i]
            by_tag[tag] = by_tag.get(tag, 0.0) + contribution
        fraction = total / landmass.area_km2
        descaled = None
        if scale_factor is not None and scale_factor > 0:
            descaled = min(fraction / scale_factor, 1.0)
        return CoverageEstimate(
            model=self.name,
            n_shapes=len(self.shapes),
            union_area_km2=total,
            landmass_fraction=fraction,
            descaled_fraction=descaled,
            breakdown_km2=by_tag,
        )


@dataclass(frozen=True)
class PredictionScore:
    """A coverage model scored against field ground truth (§8.2.2)."""

    model: str
    packets: int
    predicted_covered: int
    #: P(received | model says covered) — the paper's "in-radius" score.
    covered_received_fraction: float
    #: P(missed | model says uncovered) — the "out-of-radius" score.
    uncovered_missed_fraction: float
    #: Plain accuracy: fraction of packets whose outcome the model got right.
    accuracy: float


def prediction_accuracy(model: CoverageModel, records) -> PredictionScore:
    """Score any coverage model against walk/stationary ground truth.

    Generalises the paper's HIP-15 scoring ("Predicting reception when
    within 300 m of a hotspot is accurate 55.5 % of the time...") to the
    whole model family: for each transmitted packet, compare the model's
    covered/uncovered verdict at the transmit location against whether
    the cloud actually received it.

    Args:
        model: any :class:`CoverageModel`.
        records: :class:`~repro.lorawan.network.TransmissionRecord`s.
    """
    if not records:
        raise AnalysisError("no transmission records to score against")
    covered_received = covered_total = 0
    uncovered_missed = uncovered_total = 0
    for record in records:
        covered = model.covers(record.device_location)
        if covered:
            covered_total += 1
            covered_received += record.delivered_to_cloud
        else:
            uncovered_total += 1
            uncovered_missed += not record.delivered_to_cloud
    correct = covered_received + uncovered_missed
    return PredictionScore(
        model=model.name,
        packets=len(records),
        predicted_covered=covered_total,
        covered_received_fraction=(
            covered_received / covered_total if covered_total else 0.0
        ),
        uncovered_missed_fraction=(
            uncovered_missed / uncovered_total if uncovered_total else 0.0
        ),
        accuracy=correct / len(records),
    )


class ExplorerDotMap:
    """Figure 12a: the explorer's dot map — hotspot counts, no area.

    The paper's criticism is that dots "always render at the same size",
    so the class deliberately offers no area method.
    """

    def __init__(self, online: Sequence[LatLon], offline: Sequence[LatLon]):
        self.online = list(online)
        self.offline = list(offline)

    @property
    def n_online(self) -> int:
        """Green dots."""
        return len(self.online)

    @property
    def n_offline(self) -> int:
        """Red dots."""
        return len(self.offline)


class DiskModel(CoverageModel):
    """Figure 12b: HIP-15-implied 300 m disks around each hotspot."""

    name = "disk-300m"

    def __init__(self, hotspots: Sequence[LatLon], radius_km: float = 0.3):
        shapes = [Disk(h, radius_km) for h in hotspots]
        super().__init__(shapes, ["disk"] * len(shapes))
        self.radius_km = radius_km


def _dedup_hulls(
    geometries: Sequence[WitnessGeometry],
    max_witness_km: Optional[float],
) -> List[HullShape]:
    """Build hull shapes, collapsing repeated point sets.

    The same challengee is challenged many times with the same witnesses;
    identical point sets give identical hulls, so deduplication changes
    nothing about the union while cutting shape count dramatically.
    """
    shapes: List[HullShape] = []
    seen = set()
    for geometry in geometries:
        points = [geometry.challengee] + [
            w[0] for w in geometry.witnesses
            if max_witness_km is None or w[1] <= max_witness_km
        ]
        key = frozenset(
            (round(p.lat, 5), round(p.lon, 5)) for p in points
        )
        if len(key) < 3 or key in seen:
            continue
        seen.add(key)
        try:
            shapes.append(HullShape(convex_hull(points)))
        except GeoError:
            continue  # collinear witnesses: degenerate hull
    return shapes


class HullModel(CoverageModel):
    """Figures 12c/12d: convex hulls of challengee + valid witnesses.

    Challenges with fewer than three distinct points contribute nothing
    (a lone witness pair has no interior); repeated identical point sets
    are collapsed (same union, far fewer shapes).
    """

    name = "witness-hulls"

    def __init__(
        self,
        geometries: Sequence[WitnessGeometry],
        max_witness_km: Optional[float] = None,
    ):
        shapes = _dedup_hulls(geometries, max_witness_km)
        super().__init__(list(shapes), ["hull"] * len(shapes))
        self.max_witness_km = max_witness_km
        if max_witness_km is not None:
            self.name = f"witness-hulls-{int(max_witness_km)}km"


class RevisedModel(CoverageModel):
    """Figure 12e: hulls + vertex radial disks + RSSI growth.

    Every witness inside the cutoff contributes a disk of radius equal to
    its distance from the challengee (radial term, the paper's yellow)
    grown by the inverse-FSPL RSSI term (red trim):
    d = 10^((w − s)/20) metres.

    Two union-preserving reductions keep the shape count tractable:
    repeated hull point sets are collapsed, and concentric disks at one
    witness location union to the single largest disk — so the model
    keeps one grown disk per witness site (tagged ``radial``). The RSSI
    trim's standalone area (tiny: +20 m at the median RSSI) is reported
    analytically in :attr:`rssi_ring_area_km2`.
    """

    name = "revised"

    def __init__(
        self,
        geometries: Sequence[WitnessGeometry],
        max_witness_km: float = 25.0,
        sensitivity_dbm: float = FSPL_SENSITIVITY_DBM,
    ):
        hulls = _dedup_hulls(geometries, max_witness_km)
        shapes: List[Shape] = list(hulls)
        tags: List[str] = ["hull"] * len(hulls)

        # One disk per witness site: the max grown radius seen there.
        best_radius: Dict[Tuple[float, float], Tuple[LatLon, float]] = {}
        rssi_ring_area = 0.0
        for geometry in geometries:
            for location, distance, rssi in geometry.witnesses:
                if distance > max_witness_km:
                    continue
                radial = max(distance, 0.05)
                growth_km = fspl_range_growth_m(rssi, sensitivity_dbm) / 1000.0
                grown = radial + max(growth_km, 0.0)
                rssi_ring_area += disk_area_km2(grown) - disk_area_km2(radial)
                key = (round(location.lat, 5), round(location.lon, 5))
                current = best_radius.get(key)
                if current is None or grown > current[1]:
                    best_radius[key] = (location, grown)
        for location, radius in best_radius.values():
            shapes.append(Disk(location, radius))
            tags.append("radial")
        super().__init__(shapes, tags)
        self.max_witness_km = max_witness_km
        self.sensitivity_dbm = sensitivity_dbm
        #: Analytic (overlap-ignoring) area of the RSSI growth rings.
        self.rssi_ring_area_km2 = rssi_ring_area
