"""The paper's analytical contribution, as a library.

:mod:`repro.core.coverage` implements the incentive-derived coverage
models of §8.2.1 — the progression from the Helium explorer's dot map,
through the HIP-15 300 m disk model, witness convex hulls, the 25 km
cutoff refinement, and the final radial + RSSI revision.

:mod:`repro.core.analysis` packages every Section 3–8 measurement as a
documented function over chain/p2p/field data.
"""

from repro.core.coverage import (
    CoverageEstimate,
    CoverageModel,
    DiskModel,
    ExplorerDotMap,
    HullModel,
    RevisedModel,
    build_witness_geometry,
    WitnessGeometry,
)
from repro.core.explorer import Explorer

__all__ = [
    "CoverageModel",
    "CoverageEstimate",
    "ExplorerDotMap",
    "DiskModel",
    "HullModel",
    "RevisedModel",
    "WitnessGeometry",
    "build_witness_geometry",
    "Explorer",
]
