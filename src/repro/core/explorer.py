"""An explorer.helium.com-equivalent query layer.

The paper leans on the Helium Explorer throughout — hotspot pages with
names, owners, locations and witness lists (Fig. 16), the coverage dot
map (Fig. 12a), owner wallets, reward histories. This module provides the
same views over a simulated (or dumped) chain, so every case study in the
paper can be retraced interactively:

>>> explorer = Explorer(result.chain)                   # doctest: +SKIP
>>> page = explorer.hotspot_by_name("Joyful Pink Skunk")  # doctest: +SKIP
>>> page.recent_witnesses[:3]                             # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro import units
from repro.chain.blockchain import Blockchain
from repro.chain.crypto import Address
from repro.chain.naming import hotspot_name
from repro.chain.transactions import (
    PocReceipts,
    Rewards,
    StateChannelClose,
    TransferHotspot,
)
from repro.errors import AnalysisError
from repro.geo.geodesy import LatLon
from repro.geo.hexgrid import HexCell

__all__ = ["HotspotPage", "OwnerPage", "WitnessEvent", "Explorer"]


@dataclass(frozen=True)
class WitnessEvent:
    """One witnessing interaction, as an explorer page lists it."""

    block: int
    counterparty: Address
    counterparty_name: str
    rssi_dbm: float
    distance_km: float
    valid: bool


@dataclass
class HotspotPage:
    """Everything the explorer shows for one hotspot."""

    gateway: Address
    name: str
    owner: Address
    location: Optional[LatLon]
    location_token: Optional[str]
    added_block: int
    assert_count: int
    total_rewards_hnt: float
    packets_ferried: int
    transfer_count: int
    recent_witnesses: List[WitnessEvent] = field(default_factory=list)
    recent_witnessed_by: List[WitnessEvent] = field(default_factory=list)


@dataclass
class OwnerPage:
    """Everything the explorer shows for one wallet."""

    owner: Address
    hotspot_count: int
    hotspots: List[Tuple[Address, str]]
    hnt_balance: float
    dc_balance: int
    total_rewards_hnt: float


class Explorer:
    """Indexes a chain once; answers page queries in O(1)-ish.

    Two interchangeable backends answer the same queries with identical
    pages (parity is property-tested):

    * ``Explorer(chain)`` walks the in-memory object graph once and
      indexes it, as always;
    * ``Explorer(store=etl_store)`` (or :meth:`from_store`) delegates
      page queries to a :class:`repro.etl.store.EtlStore`, the
      persisted DeWi-style replica — no chain object needed.

    Args:
        chain: the chain to explore (in-memory backend).
        recent_limit: witness events retained per hotspot page.
        store: an ETL store to query instead of a chain.
    """

    def __init__(
        self,
        chain: Optional[Blockchain] = None,
        recent_limit: int = 25,
        store=None,
    ) -> None:
        if (chain is None) == (store is None):
            raise AnalysisError(
                "Explorer needs exactly one backend: a chain or a store"
            )
        self.chain = chain
        self.store = store
        self.recent_limit = recent_limit
        self._name_index: Dict[str, Address] = {}
        self._rewards: Dict[Address, int] = {}
        self._packets: Dict[Address, int] = {}
        self._transfers: Dict[Address, int] = {}
        self._witnessing: Dict[Address, List[WitnessEvent]] = {}
        self._witnessed_by: Dict[Address, List[WitnessEvent]] = {}
        if chain is not None:
            self._build_indexes()
        else:
            for gateway, name, _ in store.hotspot_rows():
                self._name_index[name.lower()] = gateway

    @classmethod
    def from_store(cls, store, recent_limit: int = 25) -> "Explorer":
        """An explorer answering from an ETL store instead of a chain."""
        return cls(recent_limit=recent_limit, store=store)

    def _build_indexes(self) -> None:
        for gateway in self.chain.ledger.hotspots:
            self._name_index[hotspot_name(gateway).lower()] = gateway
        for height, txn in self.chain.iter_transactions():
            if isinstance(txn, Rewards):
                for share in txn.shares:
                    if share.gateway is not None:
                        self._rewards[share.gateway] = (
                            self._rewards.get(share.gateway, 0)
                            + share.amount_bones
                        )
            elif isinstance(txn, StateChannelClose):
                for summary in txn.summaries:
                    self._packets[summary.hotspot] = (
                        self._packets.get(summary.hotspot, 0)
                        + summary.num_packets
                    )
            elif isinstance(txn, TransferHotspot):
                self._transfers[txn.gateway] = (
                    self._transfers.get(txn.gateway, 0) + 1
                )
            elif isinstance(txn, PocReceipts):
                self._index_receipt(height, txn)

    def _index_receipt(self, height: int, receipt: PocReceipts) -> None:
        challengee_loc = HexCell.from_token(
            receipt.challengee_location_token
        ).center()
        for report in receipt.witnesses:
            witness_loc = HexCell.from_token(
                report.reported_location_token
            ).center()
            distance = challengee_loc.distance_km(witness_loc)
            event_out = WitnessEvent(
                block=height,
                counterparty=receipt.challengee,
                counterparty_name=hotspot_name(receipt.challengee),
                rssi_dbm=report.rssi_dbm,
                distance_km=distance,
                valid=report.is_valid,
            )
            event_in = WitnessEvent(
                block=height,
                counterparty=report.witness,
                counterparty_name=hotspot_name(report.witness),
                rssi_dbm=report.rssi_dbm,
                distance_km=distance,
                valid=report.is_valid,
            )
            self._append_recent(self._witnessing, report.witness, event_out)
            self._append_recent(self._witnessed_by, receipt.challengee, event_in)

    def _append_recent(
        self, store: Dict[Address, List[WitnessEvent]], key: Address,
        event: WitnessEvent,
    ) -> None:
        bucket = store.setdefault(key, [])
        bucket.append(event)
        if len(bucket) > self.recent_limit:
            del bucket[0]

    # -- pages ---------------------------------------------------------------

    def hotspot(self, gateway: Address) -> HotspotPage:
        """The explorer page for a hotspot address."""
        if self.store is not None:
            page = self.store.query_hotspot_page(gateway, self.recent_limit)
            if page is None:
                raise AnalysisError(f"unknown hotspot: {gateway}")
            return page
        record = self.chain.ledger.hotspots.get(gateway)
        if record is None:
            raise AnalysisError(f"unknown hotspot: {gateway}")
        location = None
        if record.location_token is not None:
            location = HexCell.from_token(record.location_token).center()
        return HotspotPage(
            gateway=gateway,
            name=record.name,
            owner=record.owner,
            location=location,
            location_token=record.location_token,
            added_block=record.added_block,
            assert_count=record.nonce,
            total_rewards_hnt=units.bones_to_hnt(self._rewards.get(gateway, 0)),
            packets_ferried=self._packets.get(gateway, 0),
            transfer_count=self._transfers.get(gateway, 0),
            recent_witnesses=list(self._witnessing.get(gateway, [])),
            recent_witnessed_by=list(self._witnessed_by.get(gateway, [])),
        )

    def hotspot_by_name(self, name: str) -> HotspotPage:
        """Look a hotspot up by its three-word name (case-insensitive)."""
        gateway = self._name_index.get(name.lower())
        if gateway is None:
            raise AnalysisError(f"no hotspot named {name!r}")
        return self.hotspot(gateway)

    def owner(self, wallet: Address) -> OwnerPage:
        """The explorer page for a wallet."""
        if self.store is not None:
            page = self.store.query_owner_page(wallet)
            if page is None:
                raise AnalysisError(f"unknown wallet: {wallet}")
            return page
        fleet = self.chain.ledger.hotspots_of(wallet)
        state = self.chain.ledger.wallets.get(wallet)
        if not fleet and state is None:
            raise AnalysisError(f"unknown wallet: {wallet}")
        total_rewards = sum(
            self._rewards.get(record.gateway, 0) for record in fleet
        )
        return OwnerPage(
            owner=wallet,
            hotspot_count=len(fleet),
            hotspots=[(r.gateway, r.name) for r in fleet],
            hnt_balance=state.hnt if state is not None else 0.0,
            dc_balance=state.dc if state is not None else 0,
            total_rewards_hnt=units.bones_to_hnt(total_rewards),
        )

    def search(self, query: str, limit: int = 10) -> List[Tuple[Address, str]]:
        """Substring search over hotspot names."""
        needle = query.lower()
        matches = [
            (gateway, hotspot_name(gateway))
            for name, gateway in self._name_index.items()
            if needle in name
        ]
        matches.sort(key=lambda pair: pair[1])
        return matches[:limit]

    def hotspots_near(
        self, center: LatLon, radius_km: float, limit: int = 50
    ) -> List[HotspotPage]:
        """Hotspots asserted within ``radius_km`` of a point (hex view)."""
        pages = []
        for gateway, token in self._located_hotspots():
            location = HexCell.from_token(token).center()
            if center.distance_km(location) <= radius_km:
                pages.append(self.hotspot(gateway))
                if len(pages) >= limit:
                    break
        return pages

    def _located_hotspots(self) -> Iterator[Tuple[Address, str]]:
        """``(gateway, location_token)`` pairs, ledger insertion order."""
        if self.store is not None:
            for gateway, _, token in self.store.hotspot_rows():
                if token is not None:
                    yield gateway, token
            return
        for gateway, record in self.chain.ledger.hotspots.items():
            if record.location_token is not None:
                yield gateway, record.location_token
