"""Peer-to-peer fabric: multiaddrs, peerbook, circuit relays, backhaul.

Section 6 of the paper studies Helium's *meta-infrastructure*: the ISPs
hotspots hang off (§6.1) and the libp2p circuit-relay graph NATed
hotspots depend on (§6.2). This package simulates both: a synthetic AS
universe with per-city ISP markets, IP/NAT assignment, and the random
relay selection the paper verified Helium uses.
"""

from repro.p2p.backhaul import AsUniverse, BackhaulAssignment, IspProfile
from repro.p2p.multiaddr import (
    format_ip4,
    format_relay,
    parse_multiaddr,
    ParsedMultiaddr,
)
from repro.p2p.peerbook import Peerbook, PeerEntry
from repro.p2p.relay import RelayFabric

__all__ = [
    "AsUniverse",
    "IspProfile",
    "BackhaulAssignment",
    "parse_multiaddr",
    "ParsedMultiaddr",
    "format_ip4",
    "format_relay",
    "Peerbook",
    "PeerEntry",
    "RelayFabric",
]
