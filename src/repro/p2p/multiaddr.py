"""libp2p multiaddr parsing for the two formats Helium peerbooks use.

"Peerbook entries are formatted in two ways:
``/p2p/relay_node_hash/p2p-circuit/p2p/peer_node_hash`` for hotspots who
rely on a relay node and ``/ip4/ipv4_address/tcp/port`` for hotspots that
have public IPs and accessible ports." (§6.2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MultiaddrError

__all__ = [
    "HELIUM_PORT",
    "ParsedMultiaddr",
    "parse_multiaddr",
    "format_ip4",
    "format_relay",
]

#: "They attempt to use a unique port, 44158" (§9.1).
HELIUM_PORT: int = 44158


@dataclass(frozen=True)
class ParsedMultiaddr:
    """A decoded peerbook listen address."""

    raw: str
    is_relayed: bool
    ip: Optional[str] = None
    port: Optional[int] = None
    relay_hash: Optional[str] = None
    peer_hash: Optional[str] = None


def format_ip4(ip: str, port: int = HELIUM_PORT) -> str:
    """Render a direct TCP listen address."""
    _validate_ip(ip)
    if not (0 < port < 65536):
        raise MultiaddrError(f"port out of range: {port}")
    return f"/ip4/{ip}/tcp/{port}"


def format_relay(relay_hash: str, peer_hash: str) -> str:
    """Render a circuit-relay listen address."""
    if not relay_hash or not peer_hash:
        raise MultiaddrError("relay and peer hashes must be non-empty")
    if "/" in relay_hash or "/" in peer_hash:
        raise MultiaddrError("hashes may not contain '/'")
    return f"/p2p/{relay_hash}/p2p-circuit/p2p/{peer_hash}"


def parse_multiaddr(raw: str) -> ParsedMultiaddr:
    """Parse either peerbook entry format.

    Raises:
        MultiaddrError: for anything that is not one of the two formats.
    """
    if not raw.startswith("/"):
        raise MultiaddrError(f"multiaddr must start with '/': {raw!r}")
    parts = raw.split("/")[1:]
    if len(parts) == 4 and parts[0] == "ip4" and parts[2] == "tcp":
        _validate_ip(parts[1])
        try:
            port = int(parts[3])
        except ValueError as exc:
            raise MultiaddrError(f"bad port in {raw!r}") from exc
        if not (0 < port < 65536):
            raise MultiaddrError(f"port out of range in {raw!r}")
        return ParsedMultiaddr(raw=raw, is_relayed=False, ip=parts[1], port=port)
    if (
        len(parts) == 5
        and parts[0] == "p2p"
        and parts[2] == "p2p-circuit"
        and parts[3] == "p2p"
    ):
        if not parts[1] or not parts[4]:
            raise MultiaddrError(f"empty hash in {raw!r}")
        return ParsedMultiaddr(
            raw=raw, is_relayed=True, relay_hash=parts[1], peer_hash=parts[4]
        )
    raise MultiaddrError(f"unrecognised multiaddr format: {raw!r}")


def _validate_ip(ip: str) -> None:
    octets = ip.split(".")
    if len(octets) != 4:
        raise MultiaddrError(f"bad IPv4 address: {ip!r}")
    for octet in octets:
        if not octet.isdigit() or not (0 <= int(octet) <= 255):
            raise MultiaddrError(f"bad IPv4 octet in {ip!r}")
